//! E16 — photonic TRNG: throughput of the conditioned stream, NIST
//! battery on the output, and health-test behaviour on a broken source.

use crate::{Rendered, Scale};
use neuropuls_metrics::nist;
use neuropuls_puf::trng::PhotonicTrng;
use std::time::Instant;

/// Outcome for assertions.
#[derive(Debug)]
pub struct Outcome {
    /// NIST pass rate on the conditioned output.
    pub nist_pass_rate: f64,
    /// Conditioned output rate, bytes per millisecond of wall time.
    pub bytes_per_ms: f64,
    /// Whether the broken source tripped the health tests.
    pub broken_source_detected: bool,
}

/// Runs the TRNG study.
pub fn run(scale: Scale) -> (Rendered, Outcome) {
    let output_bytes = scale.pick(1024, 16_384);

    let mut trng = PhotonicTrng::new(0xE16);
    let start = Instant::now();
    let bytes = trng.generate(output_bytes).expect("healthy source");
    let elapsed_ms = start.elapsed().as_secs_f64() * 1000.0;

    let bits: Vec<u8> = bytes
        .iter()
        .flat_map(|b| (0..8).map(move |i| (b >> i) & 1))
        .collect();
    let results = nist::battery(&bits);
    let nist_pass_rate = nist::pass_rate(&results);

    let broken_source_detected = PhotonicTrng::broken(0xE16).generate(64).is_err();

    let mut out = Rendered::new("E16 — photonic TRNG (shot-noise LSB harvesting)");
    out.push_volatile(format!(
        "conditioned output: {output_bytes} bytes in {elapsed_ms:.1} ms \
         ({:.1} B/ms simulated-host rate)",
        output_bytes as f64 / elapsed_ms.max(1e-9)
    ));
    out.push(format!(
        "NIST battery over {} bits: {:.0}% passed",
        bits.len(),
        nist_pass_rate * 100.0
    ));
    for r in &results {
        out.push(format!(
            "  {:<22} p = {:<8.4} {}",
            r.name,
            r.p_value,
            if r.passed { "pass" } else { "FAIL" }
        ));
    }
    out.push(format!(
        "broken-source health tests: {}",
        if broken_source_detected {
            "tripped as required (RCT/APT)"
        } else {
            "MISSED"
        }
    ));
    (
        out,
        Outcome {
            nist_pass_rate,
            bytes_per_ms: output_bytes as f64 / elapsed_ms.max(1e-9),
            broken_source_detected,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_trng() {
        let (_, o) = run(Scale::Smoke);
        assert!(o.nist_pass_rate >= 0.8, "pass rate {}", o.nist_pass_rate);
        assert!(o.broken_source_detected);
    }
}
