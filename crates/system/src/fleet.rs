//! Fleet-scale attestation scheduling on the discrete-event engine.
//!
//! §V's "holistic approach to modeling and simulating a heterogeneous
//! system" includes the verifier side: an edge deployment has one or
//! more verifiers attesting many devices on a period. This module
//! schedules a device fleet through [`crate::event::EventQueue`] and
//! measures verifier utilization, queue depth and per-device turnaround
//! — the capacity-planning numbers a deployment needs.
//!
//! Accounting contract (the E17 regression tests pin these):
//!
//! * `verifier_utilization` is busy time **clamped to the horizon**
//!   divided by `horizon × verifiers`, so it can never exceed 1.0 even
//!   when the farm is saturated and checks spill past the horizon;
//! * `attestations` counts exactly the requests whose verdict landed
//!   within the horizon (`requests − in_flight_at_horizon`);
//! * `mean_turnaround_us` averages over those same completed requests
//!   (the numerator and denominator describe the same population);
//! * `max_backlog` counts requests *waiting* for a verifier — a request
//!   being served is not backlog, and only requests that actually
//!   queued decrement the backlog when they finish.
//!
//! After the event-driven campaign every device additionally runs
//! mutual-authentication sessions (§III-A) over **one shared lossy
//! control link**: each round checks every device's enrollment record
//! out of a sharded, cache-fronted [`CrpStore`], multiplexes all of
//! the round's wire sessions through [`run_gateway`] over a
//! single [`FaultyChannel`], and commits the rotated CRPs back. The
//! report counts completions, retransmissions, previous-CRP desync
//! recoveries, gateway late frames and CRP-cache effectiveness across
//! the fleet.

use crate::crp_store::{CrpStore, CrpStoreConfig, CrpStoreStats};
use crate::event::{EventQueue, Tick};
use neuropuls_photonic::process::DieId;
use neuropuls_protocols::attestation::{AttestationVerifier, AttestingDevice, TimingModel};
use neuropuls_protocols::gateway::{run_gateway, GatewayConfig, SessionPair};
use neuropuls_protocols::mutual_auth::{
    Device as AuthDevice, Verifier as AuthVerifier, WireDevice, WireVerifier,
};
use neuropuls_protocols::transport::{FaultRates, FaultyChannel};
use neuropuls_protocols::wire::{ProtocolId, SessionConfig};
use neuropuls_puf::photonic::PhotonicPuf;
use neuropuls_rt::rngs::StdRng;
use neuropuls_rt::trace::{Registry, SpanId, Tracer};
use neuropuls_rt::{Rng, SeedableRng};

/// One device of the fleet.
struct FleetDevice {
    device: AttestingDevice,
    verifier: AttestationVerifier,
    memory_bytes: usize,
    compromised: bool,
}

/// Events in the fleet simulation.
enum FleetEvent {
    /// Device `idx` is due for attestation.
    Due(usize),
    /// A verifier finished checking device `idx`.
    Done {
        /// Device index.
        idx: usize,
        /// Verdict of the attestation.
        ok: bool,
        /// Tick at which the request was issued.
        requested_at: Tick,
        /// Whether the request waited for a busy verifier farm.
        queued: bool,
        /// Trace span opened when the check was dispatched (id 0 when
        /// tracing is disabled).
        span: SpanId,
    },
}

/// Aggregate results of a fleet campaign.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FleetReport {
    /// Devices attested.
    pub devices: usize,
    /// Verifiers in the farm.
    pub verifiers: usize,
    /// Attestation requests issued within the horizon.
    pub requests: usize,
    /// Attestations completed within the horizon.
    pub attestations: usize,
    /// Requests still being checked (or queued) when the horizon hit.
    pub in_flight_at_horizon: usize,
    /// Attestations that passed.
    pub passed: usize,
    /// Compromised devices that were caught (all of them must be).
    pub compromised_caught: usize,
    /// Compromised devices planted.
    pub compromised_planted: usize,
    /// Farm busy fraction over the campaign: horizon-clamped busy time
    /// divided by `horizon × verifiers`. Always in `[0, 1]`.
    pub verifier_utilization: f64,
    /// Maximum number of requests simultaneously waiting for a free
    /// verifier.
    pub max_backlog: usize,
    /// Mean turnaround (request → verdict) in µs over the requests that
    /// completed within the horizon.
    pub mean_turnaround_us: f64,
    /// Mutual-authentication wire sessions attempted over the lossy
    /// control link (`devices × auth_sessions`).
    pub auth_attempted: usize,
    /// Control-link sessions that completed despite frame loss.
    pub auth_completed: usize,
    /// ARQ retransmissions spent across all control-link sessions.
    pub auth_retransmits: u64,
    /// Previous-CRP desynchronization recoveries across the fleet.
    pub auth_desync_recoveries: u64,
    /// Gateway ticks spent across all control-link rounds.
    pub auth_gateway_ticks: u64,
    /// Frames that arrived for already-closed sessions on the shared
    /// link (counted by the gateway and the inter-round drain — never
    /// silently dropped).
    pub auth_late_frames: u64,
    /// CRP-store cache counters across the control-link phase.
    pub crp: CrpStoreStats,
}

/// Simulation parameters.
#[derive(Debug, Clone, Copy)]
pub struct FleetConfig {
    /// Number of devices.
    pub devices: usize,
    /// Number of verifiers sharing the request queue (a verifier farm).
    pub verifiers: usize,
    /// Attestation period per device, µs of simulated time.
    pub period_us: f64,
    /// Campaign length, µs.
    pub horizon_us: f64,
    /// Fraction of devices planted with corrupted memory.
    pub compromised_fraction: f64,
    /// RNG seed (device sizes, stagger, compromise selection).
    pub seed: u64,
    /// Mutual-authentication sessions each device runs over the lossy
    /// control link after the attestation campaign (0 disables).
    pub auth_sessions: usize,
    /// Frame-loss probability of the control link carrying those
    /// sessions.
    pub auth_loss_rate: f64,
    /// Shards of the CRP/enrollment store backing the control link.
    pub crp_shards: usize,
    /// Hot-set capacity per CRP-store shard.
    pub crp_hot_capacity: usize,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            devices: 8,
            verifiers: 1,
            period_us: 20.0,
            horizon_us: 100.0,
            compromised_fraction: 0.25,
            seed: 0xF1EE7,
            auth_sessions: 2,
            auth_loss_rate: 0.1,
            crp_shards: 4,
            crp_hot_capacity: 4,
        }
    }
}

/// Runs the fleet campaign.
///
/// Each verifier is a serial resource; a request takes the earliest
/// available verifier (ties broken by verifier index, so the schedule is
/// deterministic) and queues when all are busy. Device walk time and
/// verifier check time both follow the photonic timing model (the
/// verifier must recompute the same walk).
///
/// # Panics
///
/// Panics when `devices` or `verifiers` is zero.
pub fn run_fleet(config: &FleetConfig) -> FleetReport {
    run_fleet_traced(config, &mut Tracer::disabled(), &Registry::new())
}

/// [`run_fleet`] with observability: the scheduling loop emits
/// `attest.due` instants and `attest.check` spans into `tracer` (check
/// spans opened at dispatch, closed at verdict; checks still in flight
/// at the horizon stay open, mirroring `in_flight_at_horizon`), and the
/// control-link phase emits one compact `auth.session` instant per wire
/// session. `registry` accumulates `fleet.*` counters plus turnaround
/// and queue-depth histograms. Passing a disabled tracer and a throwaway
/// registry reproduces `run_fleet` exactly.
///
/// # Panics
///
/// Panics when `devices` or `verifiers` is zero.
pub fn run_fleet_traced(
    config: &FleetConfig,
    tracer: &mut Tracer,
    registry: &Registry,
) -> FleetReport {
    assert!(config.devices > 0, "fleet needs at least one device");
    assert!(config.verifiers > 0, "fleet needs at least one verifier");
    let mut rng = StdRng::seed_from_u64(config.seed);
    let timing = TimingModel::photonic();

    // Small secure-boot-sized regions: E17 studies *scheduling*, not
    // walk length (E5 covers the latter), so keep per-attestation work
    // light while the timing math stays exact.
    let mut fleet: Vec<FleetDevice> = (0..config.devices)
        .map(|i| {
            let bytes = match rng.gen_range(0..3) {
                0 => 256usize,
                1 => 512,
                _ => 1024,
            };
            let memory: Vec<u8> = (0..bytes).map(|b| (b * 31 % 251) as u8).collect();
            let die = DieId(0xF1_0000 + i as u64);
            let mut device =
                AttestingDevice::new(PhotonicPuf::reference(die, 1), memory.clone(), timing);
            let compromised = rng.gen::<f64>() < config.compromised_fraction;
            if compromised {
                device.corrupt_memory(bytes / 2, 0xEE);
            }
            FleetDevice {
                device,
                verifier: AttestationVerifier::new(PhotonicPuf::reference(die, 2), memory, timing),
                memory_bytes: bytes,
                compromised,
            }
        })
        .collect();

    // Ticks are nanoseconds here.
    let mut queue: EventQueue<FleetEvent> = EventQueue::new();
    for i in 0..config.devices {
        let stagger = rng.gen_range(0..(config.period_us * 1000.0) as u64);
        queue.schedule(stagger, FleetEvent::Due(i));
    }

    let horizon = (config.horizon_us * 1000.0) as Tick;
    let period = (config.period_us * 1000.0) as Tick;
    let mut free_at: Vec<Tick> = vec![0; config.verifiers];
    let mut busy_ns: u64 = 0;
    let mut backlog: usize = 0;
    let mut max_backlog = 0usize;
    let mut requests = 0usize;
    let mut attestations = 0usize;
    let mut passed = 0usize;
    let mut caught = vec![false; config.devices];
    let mut turnaround_sum_ns = 0u64;

    queue.run_until(horizon, |queue, now, event| match event {
        FleetEvent::Due(idx) => {
            tracer.instant(now, "attest.due", vec![("device", idx.into())]);
            let entry = &mut fleet[idx];
            let request = entry.verifier.begin();
            // A device that cannot even produce a report (bad challenge
            // width) counts as a failed attestation, not a sim crash.
            let ok = match entry.device.attest(&request) {
                Ok(report) => entry.verifier.verify(&request, &report).is_ok(),
                Err(_) => false,
            };
            // The chosen verifier recomputes the walk serially: busy for
            // the honest walk duration of this device.
            let chunks = entry.memory_bytes.div_ceil(64) as f64;
            let check_ns = (chunks * timing.chunk_ns()) as Tick;
            // Earliest-available verifier, ties to the lowest index.
            // `free_at` is non-empty (verifiers is asserted non-zero),
            // so the fallback index never fires; it exists to keep the
            // scheduling loop panic-free.
            let v = (0..free_at.len())
                .min_by_key(|&v| (free_at[v], v))
                .unwrap_or(0);
            let start = free_at[v].max(now);
            let queued = start > now;
            if queued {
                backlog += 1;
                max_backlog = max_backlog.max(backlog);
            }
            free_at[v] = start + check_ns;
            // Busy time clamped to the horizon: work scheduled past the
            // campaign end must not count toward utilization.
            busy_ns += free_at[v].min(horizon).saturating_sub(start.min(horizon));
            requests += 1;
            registry.counter("fleet.requests", 1);
            registry.observe("fleet.queue_depth", backlog as f64);
            let span = tracer.span_start(
                start,
                "attest.check",
                vec![
                    ("device", idx.into()),
                    ("verifier", v.into()),
                    ("queued", queued.into()),
                ],
            );
            queue.schedule(
                free_at[v],
                FleetEvent::Done {
                    idx,
                    ok,
                    requested_at: now,
                    queued,
                    span,
                },
            );
            // Next periodic attestation.
            if now + period <= horizon {
                queue.schedule(now + period, FleetEvent::Due(idx));
            }
        }
        FleetEvent::Done {
            idx,
            ok,
            requested_at,
            queued,
            span,
        } => {
            tracer.span_end(now, span, vec![("ok", ok.into())]);
            registry.counter("fleet.attestations", 1);
            registry.observe("fleet.turnaround_ns", (now - requested_at) as f64);
            // Only requests that actually waited ever entered the
            // backlog, so only they leave it.
            if queued {
                // invariant: every queued Done had a matching backlog
                // increment at request time; underflow means the
                // accounting itself broke, which must stay loud.
                backlog = backlog.checked_sub(1).expect("backlog underflow");
            }
            attestations += 1;
            // Turnaround accumulates at completion time, so the sum and
            // the `attestations` divisor cover the same requests.
            turnaround_sum_ns += now - requested_at;
            if ok {
                passed += 1;
                registry.counter("fleet.passed", 1);
            } else if fleet[idx].compromised {
                caught[idx] = true;
            }
        }
    });

    // Everything still scheduled is a `Done` past the horizon: requests
    // issued but not resolved in time.
    let in_flight = queue.len();
    debug_assert_eq!(attestations + in_flight, requests, "request conservation");

    // Control-link phase: every device opens mutual-authentication
    // sessions (§III-A), all rounds multiplexed by the gateway over
    // *one* shared lossy wire. Verifier-side enrollment lives in the
    // sharded CRP store: each round checks every record out (exclusive
    // — one live session per device), runs the round's sessions
    // concurrently, and commits the rotated CRPs back. The link seed is
    // derived independently of the scheduling RNG so the event-driven
    // results above are unchanged by this phase.
    let mut auth_attempted = 0usize;
    let mut auth_completed = 0usize;
    let mut auth_retransmits = 0u64;
    let mut auth_desync_recoveries = 0u64;
    let mut auth_gateway_ticks = 0u64;
    let mut auth_late_frames = 0u64;
    let mut crp = CrpStoreStats::default();
    if config.auth_sessions > 0 {
        let mut store: CrpStore<AuthVerifier> = CrpStore::new(CrpStoreConfig {
            shards: config.crp_shards,
            hot_capacity: config.crp_hot_capacity,
        });
        let mut devices: Vec<(usize, AuthDevice<PhotonicPuf>)> = Vec::new();
        for i in 0..config.devices {
            let die = DieId(0xF1_A000 + i as u64);
            let memory: Vec<u8> = (0..256).map(|b| (b * 17 % 249) as u8).collect();
            let Ok((device, provisioned)) =
                AuthDevice::provision(PhotonicPuf::reference(die, 1), memory, b"fleet-auth")
            else {
                // A device whose PUF cannot provision never joins the
                // fleet; it contributes no sessions.
                continue;
            };
            let verifier = AuthVerifier::new(provisioned, b"fleet-auth-verifier");
            if store.enroll(i as u64, verifier).is_ok() {
                devices.push((i, device));
            }
        }

        let link_seed = config.seed ^ 0xA117_0000_0000_0000;
        let mut link = FaultyChannel::new(FaultRates::loss(config.auth_loss_rate), link_seed);
        let gateway_cfg = GatewayConfig {
            max_active: 64,
            accept_queue: 16,
            max_ticks: 4096.max(config.devices as u64 * 64),
        };
        for round in 0..config.auth_sessions {
            // Exclusive checkout of this round's verifier records, in
            // device order (deterministic; misses are cold records the
            // hot set no longer holds).
            let mut checked: Vec<(usize, AuthVerifier)> = Vec::new();
            for &(i, _) in &devices {
                if let Ok(verifier) = store.checkout(i as u64) {
                    checked.push((i, verifier));
                }
            }
            let mut sessions: Vec<SessionPair<'_>> = Vec::new();
            for ((i, device), (_, verifier)) in devices.iter_mut().zip(checked.iter_mut()) {
                let sid = (round * config.devices + *i) as u64 + 1;
                sessions.push(SessionPair {
                    protocol: ProtocolId::MutualAuth,
                    id: sid,
                    initiator: Box::new(WireVerifier::new(verifier, sid, SessionConfig::default())),
                    responder: Box::new(WireDevice::new(device, SessionConfig::default())),
                });
            }
            let gw = run_gateway(
                &mut link,
                sessions,
                gateway_cfg,
                &mut Tracer::disabled(),
                registry,
            );
            auth_gateway_ticks += gw.ticks;
            auth_late_frames += gw.late_frames;
            // Stragglers still in flight when the round's last session
            // closed surface at the next round as routing noise; drain
            // and count them instead.
            auth_late_frames += link.drain_late() as u64;
            for (outcome, &(i, _)) in gw.outcomes.iter().zip(&devices) {
                auth_attempted += 1;
                let ok = outcome.result.is_ok();
                if ok {
                    auth_completed += 1;
                }
                auth_retransmits += u64::from(outcome.retransmits);
                // One compact instant per control-link session (the
                // frame-level story lives in the protocol tracer); the
                // tick is the horizon so the event log stays monotone
                // past the event-driven phase.
                tracer.instant(
                    horizon,
                    "auth.session",
                    vec![
                        ("device", i.into()),
                        ("session", (round as u64).into()),
                        ("ok", ok.into()),
                        ("retransmits", outcome.retransmits.into()),
                    ],
                );
                registry.counter("fleet.auth_retransmits", u64::from(outcome.retransmits));
                registry.observe(
                    "fleet.auth_session_ticks",
                    f64::from(*outcome.result.as_ref().unwrap_or(&0)),
                );
            }
            for (i, verifier) in checked {
                // Unreachable error by construction (every commit
                // follows its own checkout); ignoring it keeps the
                // phase panic-free.
                let _ = store.commit(i as u64, verifier);
            }
        }
        for &(i, _) in &devices {
            if let Some(verifier) = store.peek(i as u64) {
                auth_desync_recoveries += verifier.desync_recoveries();
            }
        }
        crp = store.stats();
        store.fold_into(registry);
    }

    let planted = fleet.iter().filter(|d| d.compromised).count();
    FleetReport {
        devices: config.devices,
        verifiers: config.verifiers,
        requests,
        attestations,
        in_flight_at_horizon: in_flight,
        passed,
        compromised_caught: caught.iter().filter(|&&c| c).count(),
        compromised_planted: planted,
        verifier_utilization: busy_ns as f64 / (horizon.max(1) as f64 * config.verifiers as f64),
        max_backlog,
        mean_turnaround_us: if attestations == 0 {
            0.0
        } else {
            turnaround_sum_ns as f64 / attestations as f64 / 1000.0
        },
        auth_attempted,
        auth_completed,
        auth_retransmits,
        auth_desync_recoveries,
        auth_gateway_ticks,
        auth_late_frames,
        crp,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neuropuls_rt::trace::EventKind;

    #[test]
    fn fleet_catches_every_compromised_device() {
        let report = run_fleet(&FleetConfig::default());
        assert!(report.attestations > 0);
        assert_eq!(
            report.compromised_caught, report.compromised_planted,
            "{report:?}"
        );
        // Honest devices pass: passes + compromised failures = total.
        assert!(report.passed > 0, "{report:?}");
    }

    #[test]
    fn utilization_grows_with_fleet_size() {
        let small = run_fleet(&FleetConfig {
            devices: 2,
            ..FleetConfig::default()
        });
        let large = run_fleet(&FleetConfig {
            devices: 12,
            ..FleetConfig::default()
        });
        assert!(
            large.verifier_utilization > small.verifier_utilization,
            "small {small:?} large {large:?}"
        );
    }

    #[test]
    fn oversubscribed_verifier_builds_backlog() {
        let report = run_fleet(&FleetConfig {
            devices: 24,
            period_us: 2.0,
            horizon_us: 20.0,
            ..FleetConfig::default()
        });
        assert!(report.max_backlog > 0, "{report:?}");
        assert!(report.verifier_utilization > 0.5, "{report:?}");
    }

    #[test]
    fn empty_compromise_fraction_passes_everything() {
        let report = run_fleet(&FleetConfig {
            compromised_fraction: 0.0,
            ..FleetConfig::default()
        });
        assert_eq!(report.compromised_planted, 0);
        assert_eq!(report.passed, report.attestations, "{report:?}");
    }

    /// Regression for the saturation accounting bugs: utilization used
    /// to exceed 1.0 (busy time counted past the horizon), turnaround
    /// mixed populations (sum at request time ÷ completions), and
    /// `max_backlog` undercounted (every completion decremented the
    /// backlog even when the request never queued).
    #[test]
    fn saturated_fleet_accounting_is_consistent() {
        for devices in [8, 32] {
            let report = run_fleet(&FleetConfig {
                devices,
                period_us: 1.0,
                horizon_us: 8.0,
                ..FleetConfig::default()
            });
            assert!(
                report.verifier_utilization <= 1.0,
                "utilization must be a fraction: {report:?}"
            );
            assert!(report.verifier_utilization > 0.0, "{report:?}");
            assert_eq!(
                report.attestations + report.in_flight_at_horizon,
                report.requests,
                "every issued request completes or is in flight: {report:?}"
            );
            assert!(report.max_backlog <= report.requests, "{report:?}");
        }
    }

    #[test]
    fn saturated_fleet_reports_nonzero_backlog_and_full_utilization() {
        let report = run_fleet(&FleetConfig {
            devices: 32,
            period_us: 1.0,
            horizon_us: 8.0,
            ..FleetConfig::default()
        });
        assert!(report.max_backlog > 0, "{report:?}");
        assert!(report.verifier_utilization > 0.95, "{report:?}");
        assert!(report.in_flight_at_horizon > 0, "{report:?}");
    }

    #[test]
    fn more_verifiers_relieve_the_backlog() {
        let saturated = FleetConfig {
            devices: 16,
            period_us: 2.0,
            horizon_us: 20.0,
            ..FleetConfig::default()
        };
        let one = run_fleet(&saturated);
        let four = run_fleet(&FleetConfig {
            verifiers: 4,
            ..saturated
        });
        assert!(four.verifier_utilization <= 1.0, "{four:?}");
        assert!(
            four.max_backlog <= one.max_backlog,
            "a farm should not queue more than one verifier: {one:?} vs {four:?}"
        );
        assert!(
            four.mean_turnaround_us <= one.mean_turnaround_us,
            "a farm should not be slower: {one:?} vs {four:?}"
        );
        assert!(
            four.attestations >= one.attestations,
            "a farm completes at least as many checks: {one:?} vs {four:?}"
        );
    }

    #[test]
    fn lossy_control_link_still_authenticates_the_fleet() {
        let report = run_fleet(&FleetConfig {
            auth_sessions: 3,
            auth_loss_rate: 0.2,
            ..FleetConfig::default()
        });
        assert_eq!(report.auth_attempted, 8 * 3);
        assert_eq!(
            report.auth_completed, report.auth_attempted,
            "ARQ should carry every session through 20% loss: {report:?}"
        );
        assert!(
            report.auth_retransmits > 0,
            "20% loss must cost retransmissions: {report:?}"
        );
    }

    #[test]
    fn disabling_auth_sessions_skips_the_control_link_phase() {
        let report = run_fleet(&FleetConfig {
            auth_sessions: 0,
            ..FleetConfig::default()
        });
        assert_eq!(report.auth_attempted, 0);
        assert_eq!(report.auth_completed, 0);
        assert_eq!(report.auth_retransmits, 0);
        assert_eq!(report.auth_gateway_ticks, 0);
        assert_eq!(report.crp, crate::crp_store::CrpStoreStats::default());
    }

    /// The control link is one shared wire: every round multiplexes all
    /// devices' sessions through the gateway, and the CRP store fronts
    /// the verifier records — first round all cold misses, later rounds
    /// hot hits (capacity permitting).
    #[test]
    fn shared_control_link_reports_gateway_and_cache_effort() {
        let config = FleetConfig {
            devices: 12,
            auth_sessions: 3,
            crp_shards: 3,
            crp_hot_capacity: 8, // 24 hot slots ≥ 12 devices: all hot after round 1
            ..FleetConfig::default()
        };
        let registry = Registry::new();
        let report = run_fleet_traced(&config, &mut Tracer::disabled(), &registry);
        assert_eq!(report.auth_attempted, 12 * 3);
        assert_eq!(report.auth_completed, report.auth_attempted, "{report:?}");
        assert!(report.auth_gateway_ticks > 0);
        assert_eq!(report.crp.misses, 12, "first touch of each record is cold");
        assert_eq!(report.crp.hits, 24, "rounds 2 and 3 are hot");
        assert_eq!(report.crp.commits, 36);
        assert!((report.crp.hit_rate() - 24.0 / 36.0).abs() < 1e-12);
        assert_eq!(registry.counter_value("crp_store.hits"), report.crp.hits);
        assert_eq!(
            registry.counter_value("gateway.completed") as usize,
            report.auth_completed
        );
    }

    /// A hot set smaller than the fleet thrashes: only the records
    /// committed last in a round are still hot when the next round's
    /// batched checkout sweeps through, so hits per round cap at the
    /// hot capacity.
    #[test]
    fn undersized_crp_cache_thrashes() {
        let report = run_fleet(&FleetConfig {
            devices: 12,
            auth_sessions: 2,
            crp_shards: 1,
            crp_hot_capacity: 2,
            ..FleetConfig::default()
        });
        assert_eq!(
            report.crp.hits, 2,
            "one round of re-touches, 2 hot: {report:?}"
        );
        assert_eq!(report.crp.misses, 22, "{report:?}");
        assert!(report.crp.evictions > 0, "{report:?}");
        assert!(report.crp.hit_rate() < 0.1, "{report:?}");
    }

    #[test]
    fn traced_fleet_matches_untraced_and_records_metrics() {
        let config = FleetConfig::default();
        let untraced = run_fleet(&config);
        let mut tracer = Tracer::new();
        let registry = Registry::new();
        let traced = run_fleet_traced(&config, &mut tracer, &registry);
        assert_eq!(traced, untraced, "tracing must not perturb the sim");
        assert_eq!(
            registry.counter_value("fleet.requests") as usize,
            traced.requests
        );
        assert_eq!(
            registry.counter_value("fleet.attestations") as usize,
            traced.attestations
        );
        let turnaround = registry
            .histogram("fleet.turnaround_ns")
            .expect("turnaround histogram recorded");
        assert_eq!(turnaround.count() as usize, traced.attestations);
        let due = tracer
            .events()
            .iter()
            .filter(|e| e.name == "attest.due")
            .count();
        assert_eq!(due, traced.requests);
        let open = tracer
            .events()
            .iter()
            .filter(|e| e.name == "attest.check" && e.kind == EventKind::SpanStart)
            .count();
        let closed = tracer
            .events()
            .iter()
            .filter(|e| e.name == "attest.check" && e.kind == EventKind::SpanEnd)
            .count();
        assert_eq!(open, traced.requests);
        assert_eq!(closed, traced.attestations, "in-flight checks stay open");
        let auth = tracer
            .events()
            .iter()
            .filter(|e| e.name == "auth.session")
            .count();
        assert_eq!(auth, traced.auth_attempted);
    }

    #[test]
    fn idle_fleet_has_no_backlog_and_low_utilization() {
        let report = run_fleet(&FleetConfig {
            devices: 1,
            period_us: 50.0,
            horizon_us: 100.0,
            ..FleetConfig::default()
        });
        assert_eq!(report.max_backlog, 0, "{report:?}");
        assert!(report.verifier_utilization < 0.1, "{report:?}");
    }
}
