//! Sharded, cache-fronted CRP/enrollment store for verifier farms.
//!
//! A single verifier keeps one device's enrollment state (rotating CRP,
//! previous CRP, memory digest) inline. A *farm* terminating hundreds
//! of concurrent gateway sessions cannot: enrollment state lives in a
//! store that must stay cheap on the hot path so the CRP lookups
//! co-exist with inference traffic on the same accelerator (the
//! NEUROPULS co-design argument). This module provides that store as a
//! deterministic in-memory model:
//!
//! * **Sharding** — records are distributed over N shards by a
//!   SplitMix64 finalizer of the device id, so a farm can partition
//!   ownership without coordination. Shard choice is pure arithmetic
//!   and reproducible everywhere.
//! * **Hot set** — each shard fronts its archive with a bounded LRU
//!   cache (`hot_capacity` records). A checkout served from the hot
//!   set is a *hit*; falling through to the archive is a *miss* and
//!   promotes the record; commits land hot and evict the
//!   least-recently-used record back to the archive when full. LRU
//!   age is a logical clock (accesses, not wall time), so eviction
//!   order is deterministic.
//! * **Exclusive checkout** — a record is checked out, mutated by a
//!   session (the CRP rotates on every §III-A authentication), and
//!   committed back. A second checkout of the same device while one is
//!   outstanding is a typed error, which is exactly the invariant a
//!   gateway needs: one live auth session per device.
//!
//! Hit / miss / eviction counters fold into a trace
//! [`Registry`] under `crp_store.*` via [`CrpStore::fold_into`].

use neuropuls_rt::trace::Registry;
use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

/// Shard count and per-shard cache size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrpStoreConfig {
    /// Number of shards (clamped to at least 1).
    pub shards: usize,
    /// Hot-set capacity per shard (clamped to at least 1).
    pub hot_capacity: usize,
}

impl Default for CrpStoreConfig {
    fn default() -> Self {
        CrpStoreConfig {
            shards: 8,
            hot_capacity: 16,
        }
    }
}

/// Typed failures of the store's checkout discipline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrpStoreError {
    /// The device id has no enrollment record.
    NotEnrolled(u64),
    /// The record is checked out by a live session.
    CheckedOut(u64),
    /// The device id is already enrolled (enrollment is once).
    AlreadyEnrolled(u64),
    /// A commit arrived for a record that was never checked out.
    NotCheckedOut(u64),
}

impl fmt::Display for CrpStoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CrpStoreError::NotEnrolled(id) => write!(f, "device {id} is not enrolled"),
            CrpStoreError::CheckedOut(id) => {
                write!(f, "device {id} is checked out by a live session")
            }
            CrpStoreError::AlreadyEnrolled(id) => write!(f, "device {id} is already enrolled"),
            CrpStoreError::NotCheckedOut(id) => {
                write!(f, "device {id} was committed without a checkout")
            }
        }
    }
}

impl Error for CrpStoreError {}

/// Cache-effectiveness counters of one store.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CrpStoreStats {
    /// Checkouts served from a shard's hot set.
    pub hits: u64,
    /// Checkouts that fell through to the shard archive.
    pub misses: u64,
    /// Hot-set records displaced to the archive.
    pub evictions: u64,
    /// Records enrolled.
    pub enrollments: u64,
    /// Records committed back after mutation.
    pub commits: u64,
}

impl CrpStoreStats {
    /// Fraction of checkouts served hot; 0 when nothing was looked up.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

struct HotEntry<R> {
    record: R,
    last_use: u64,
}

struct Shard<R> {
    hot: BTreeMap<u64, HotEntry<R>>,
    cold: BTreeMap<u64, R>,
}

impl<R> Default for Shard<R> {
    fn default() -> Self {
        Shard {
            hot: BTreeMap::new(),
            cold: BTreeMap::new(),
        }
    }
}

/// SplitMix64 finalizer: a full-avalanche mix so consecutive device ids
/// spread evenly over shards.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Sharded LRU-fronted enrollment store; `R` is the per-device record
/// (e.g. a provisioned mutual-auth verifier).
pub struct CrpStore<R> {
    shards: Vec<Shard<R>>,
    hot_capacity: usize,
    clock: u64,
    checked_out: BTreeMap<u64, usize>,
    stats: CrpStoreStats,
}

impl<R> CrpStore<R> {
    /// Creates an empty store; zero shard / capacity values clamp to 1.
    pub fn new(config: CrpStoreConfig) -> Self {
        let shards = config.shards.max(1);
        CrpStore {
            shards: (0..shards).map(|_| Shard::default()).collect(),
            hot_capacity: config.hot_capacity.max(1),
            clock: 0,
            checked_out: BTreeMap::new(),
            stats: CrpStoreStats::default(),
        }
    }

    /// Which shard owns `device_id`.
    pub fn shard_of(&self, device_id: u64) -> usize {
        // invariant: `new` clamps the shard count to at least 1, so the
        // modulus is never zero.
        (mix(device_id) % self.shards.len() as u64) as usize
    }

    /// Enrolled records (hot + cold + checked out).
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.hot.len() + s.cold.len())
            .sum::<usize>()
            + self.checked_out.len()
    }

    /// Whether nothing is enrolled.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Cache counters so far.
    pub fn stats(&self) -> CrpStoreStats {
        self.stats
    }

    /// `(hot, cold)` occupancy per shard, in shard order.
    pub fn shard_occupancy(&self) -> Vec<(usize, usize)> {
        self.shards
            .iter()
            .map(|s| (s.hot.len(), s.cold.len()))
            .collect()
    }

    /// Enrolls a new device record (lands in the shard archive: a fresh
    /// enrollment is not hot until a session touches it).
    ///
    /// # Errors
    ///
    /// [`CrpStoreError::AlreadyEnrolled`] when the id exists (enrolled
    /// or checked out).
    pub fn enroll(&mut self, device_id: u64, record: R) -> Result<(), CrpStoreError> {
        if self.contains(device_id) {
            return Err(CrpStoreError::AlreadyEnrolled(device_id));
        }
        let shard = self.shard_of(device_id);
        if let Some(s) = self.shards.get_mut(shard) {
            s.cold.insert(device_id, record);
        }
        self.stats.enrollments += 1;
        Ok(())
    }

    /// Whether `device_id` is enrolled (including checked out).
    pub fn contains(&self, device_id: u64) -> bool {
        if self.checked_out.contains_key(&device_id) {
            return true;
        }
        let shard = self.shard_of(device_id);
        self.shards
            .get(shard)
            .is_some_and(|s| s.hot.contains_key(&device_id) || s.cold.contains_key(&device_id))
    }

    /// Takes exclusive ownership of a record for one session. Hot-set
    /// hits and archive misses are counted; a miss is the cache telling
    /// the farm this device has not authenticated recently.
    ///
    /// # Errors
    ///
    /// [`CrpStoreError::NotEnrolled`] for unknown ids,
    /// [`CrpStoreError::CheckedOut`] when a session already owns it.
    pub fn checkout(&mut self, device_id: u64) -> Result<R, CrpStoreError> {
        if self.checked_out.contains_key(&device_id) {
            return Err(CrpStoreError::CheckedOut(device_id));
        }
        let shard_idx = self.shard_of(device_id);
        let Some(shard) = self.shards.get_mut(shard_idx) else {
            return Err(CrpStoreError::NotEnrolled(device_id));
        };
        let record = if let Some(entry) = shard.hot.remove(&device_id) {
            self.stats.hits += 1;
            entry.record
        } else if let Some(record) = shard.cold.remove(&device_id) {
            self.stats.misses += 1;
            record
        } else {
            return Err(CrpStoreError::NotEnrolled(device_id));
        };
        self.checked_out.insert(device_id, shard_idx);
        Ok(record)
    }

    /// Returns a (possibly rotated) record after a session. The record
    /// lands in the hot set — it was just used — evicting the shard's
    /// least-recently-used entry to the archive when the set is full.
    ///
    /// # Errors
    ///
    /// [`CrpStoreError::NotCheckedOut`] when no checkout is open for
    /// the id; the record is handed back inside the error-free path
    /// only, so the caller keeps it on failure and state stays
    /// consistent.
    pub fn commit(&mut self, device_id: u64, record: R) -> Result<(), CrpStoreError> {
        let Some(shard_idx) = self.checked_out.remove(&device_id) else {
            return Err(CrpStoreError::NotCheckedOut(device_id));
        };
        self.clock += 1;
        let clock = self.clock;
        let hot_capacity = self.hot_capacity;
        let mut evicted = 0u64;
        if let Some(shard) = self.shards.get_mut(shard_idx) {
            shard.hot.insert(
                device_id,
                HotEntry {
                    record,
                    last_use: clock,
                },
            );
            while shard.hot.len() > hot_capacity {
                // Deterministic LRU victim: smallest (last_use, id).
                let victim = shard
                    .hot
                    .iter()
                    .min_by_key(|(id, e)| (e.last_use, **id))
                    .map(|(id, _)| *id);
                let Some(victim) = victim else { break };
                if let Some(entry) = shard.hot.remove(&victim) {
                    shard.cold.insert(victim, entry.record);
                    evicted += 1;
                }
            }
        }
        self.stats.evictions += evicted;
        self.stats.commits += 1;
        Ok(())
    }

    /// Reads a record in place without affecting LRU order or counters
    /// (diagnostics; sessions use [`checkout`](CrpStore::checkout)).
    pub fn peek(&self, device_id: u64) -> Option<&R> {
        let shard = self.shards.get(self.shard_of(device_id))?;
        shard
            .hot
            .get(&device_id)
            .map(|e| &e.record)
            .or_else(|| shard.cold.get(&device_id))
    }

    /// Folds the counters into `registry` under `crp_store.*`, plus a
    /// `crp_store.shard_hot` histogram of per-shard hot occupancy.
    pub fn fold_into(&self, registry: &Registry) {
        registry.counter("crp_store.hits", self.stats.hits);
        registry.counter("crp_store.misses", self.stats.misses);
        registry.counter("crp_store.evictions", self.stats.evictions);
        registry.counter("crp_store.enrollments", self.stats.enrollments);
        registry.counter("crp_store.commits", self.stats.commits);
        for &(hot, _) in &self.shard_occupancy() {
            registry.observe("crp_store.shard_hot", hot as f64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store(shards: usize, hot: usize) -> CrpStore<u64> {
        CrpStore::new(CrpStoreConfig {
            shards,
            hot_capacity: hot,
        })
    }

    #[test]
    fn enroll_checkout_commit_roundtrip() {
        let mut s = store(4, 2);
        s.enroll(10, 100).unwrap();
        assert!(s.contains(10));
        assert_eq!(s.len(), 1);
        let r = s.checkout(10).unwrap();
        assert_eq!(r, 100);
        assert!(s.contains(10), "checked-out records are still enrolled");
        s.commit(10, r + 1).unwrap();
        assert_eq!(s.peek(10), Some(&101));
        // First touch came from the archive.
        assert_eq!(s.stats().misses, 1);
        assert_eq!(s.stats().hits, 0);
        // Second touch is hot.
        let r = s.checkout(10).unwrap();
        s.commit(10, r).unwrap();
        assert_eq!(s.stats().hits, 1);
    }

    #[test]
    fn checkout_is_exclusive() {
        let mut s = store(2, 2);
        s.enroll(7, 70).unwrap();
        let r = s.checkout(7).unwrap();
        assert_eq!(s.checkout(7), Err(CrpStoreError::CheckedOut(7)));
        s.commit(7, r).unwrap();
        assert!(s.checkout(7).is_ok());
    }

    #[test]
    fn typed_errors_cover_the_discipline() {
        let mut s = store(2, 2);
        assert_eq!(s.checkout(1), Err(CrpStoreError::NotEnrolled(1)));
        assert_eq!(s.commit(1, 0), Err(CrpStoreError::NotCheckedOut(1)));
        s.enroll(1, 10).unwrap();
        assert_eq!(s.enroll(1, 11), Err(CrpStoreError::AlreadyEnrolled(1)));
        let r = s.checkout(1).unwrap();
        assert_eq!(
            s.enroll(1, 12),
            Err(CrpStoreError::AlreadyEnrolled(1)),
            "checked-out ids stay enrolled"
        );
        s.commit(1, r).unwrap();
        for e in [
            CrpStoreError::NotEnrolled(1),
            CrpStoreError::CheckedOut(2),
            CrpStoreError::AlreadyEnrolled(3),
            CrpStoreError::NotCheckedOut(4),
        ] {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn lru_eviction_is_deterministic_and_counted() {
        // One shard so every id collides; capacity 2.
        let mut s = store(1, 2);
        for id in 0..3u64 {
            s.enroll(id, id * 10).unwrap();
        }
        // Touch 0 then 1 then 2: committing 2 overflows the hot set and
        // evicts 0, the least recently used.
        for id in 0..3u64 {
            let r = s.checkout(id).unwrap();
            s.commit(id, r).unwrap();
        }
        assert_eq!(s.stats().evictions, 1);
        assert_eq!(s.shard_occupancy(), vec![(2, 1)]);
        // Re-touching 0 misses (it was evicted) and its commit evicts
        // 1, now the oldest hot entry; 2 stays hot throughout.
        let r = s.checkout(0).unwrap();
        s.commit(0, r).unwrap();
        assert_eq!(s.stats().misses, 4, "3 first touches + re-touch of 0");
        assert_eq!(s.stats().evictions, 2);
        let r = s.checkout(2).unwrap();
        s.commit(2, r).unwrap();
        assert_eq!(s.stats().hits, 1);
        let r = s.checkout(1).unwrap();
        s.commit(1, r).unwrap();
        assert_eq!(s.stats().misses, 5, "1 was displaced by 0's return");
    }

    #[test]
    fn records_spread_over_shards() {
        let mut s = store(8, 4);
        for id in 0..64u64 {
            s.enroll(id, id).unwrap();
        }
        let occupied = s
            .shard_occupancy()
            .iter()
            .filter(|&&(h, c)| h + c > 0)
            .count();
        assert!(
            occupied >= 6,
            "SplitMix64 should hit most of 8 shards: {occupied}"
        );
        // Shard choice is stable.
        for id in 0..64u64 {
            assert_eq!(s.shard_of(id), s.shard_of(id));
        }
    }

    #[test]
    fn zero_config_clamps_instead_of_panicking() {
        let mut s = store(0, 0);
        s.enroll(1, 1).unwrap();
        let r = s.checkout(1).unwrap();
        s.commit(1, r).unwrap();
        assert_eq!(s.shard_occupancy().len(), 1);
    }

    #[test]
    fn hit_rate_and_registry_fold() {
        let mut s = store(2, 4);
        for id in 0..4u64 {
            s.enroll(id, id).unwrap();
        }
        for _ in 0..3 {
            for id in 0..4u64 {
                let r = s.checkout(id).unwrap();
                s.commit(id, r).unwrap();
            }
        }
        let stats = s.stats();
        assert_eq!(stats.misses, 4);
        assert_eq!(stats.hits, 8);
        assert!((stats.hit_rate() - 8.0 / 12.0).abs() < 1e-12);
        let registry = Registry::new();
        s.fold_into(&registry);
        assert_eq!(registry.counter_value("crp_store.hits"), 8);
        assert_eq!(registry.counter_value("crp_store.misses"), 4);
        assert_eq!(registry.counter_value("crp_store.enrollments"), 4);
    }

    #[test]
    fn empty_store_reports_cleanly() {
        let s: CrpStore<u64> = CrpStore::new(CrpStoreConfig::default());
        assert!(s.is_empty());
        assert_eq!(s.stats().hit_rate(), 0.0);
        assert_eq!(s.peek(9), None);
    }
}
