//! Regenerates every experiment, fanning the independent experiments
//! out on `neuropuls_rt::pool` and printing them in canonical order.
//!
//! stdout carries only the experiment tables — byte-identical at any
//! `NEUROPULS_THREADS` value (CI diffs 1 thread against N). Timing
//! chatter goes to stderr, and the harness wall clock is recorded in
//! `BENCH_exp_all.json` (`harness_wall_clock/threads=N` entries).
//!
//! Flags: `--smoke` for the CI-sized configuration, `--baseline` to
//! also run a forced 1-thread pass, assert its output is byte-identical
//! and record the serial-vs-parallel speedup.

use neuropuls_bench::{experiments, Rendered, Scale};
use neuropuls_rt::pool;
use std::time::Instant;

/// One experiment: its id and a uniform `Scale -> Rendered` entry
/// point.
type Runner = (&'static str, fn(Scale) -> Rendered);

/// Every experiment in report order.
fn runners() -> Vec<Runner> {
    vec![
        ("E1", |s| experiments::fig3::run_ro(s).0),
        ("E1b", |s| experiments::fig3::run_photonic(s).0),
        ("E2", |s| experiments::puf_quality::run(s).0),
        ("E3", |s| experiments::table1::run(s).0),
        ("E4", |s| experiments::auth::run(s).0),
        ("E5", |s| experiments::attestation::run(s).0),
        ("E6", |s| experiments::ml_attack::run(s).0),
        ("E7", |s| experiments::side_channel::run(s).0),
        ("E8", |s| experiments::remanence::run(s).0),
        ("E9", |s| experiments::system::run(s).0),
        ("E10", |s| experiments::keygen::run(s).0),
        ("E11", |s| experiments::environment::run(s).0),
        ("E12", |s| experiments::eke::run(s).0),
        ("E13", |s| experiments::tamper::run(s).0),
        ("E14", |s| experiments::analog::run(s).0),
        ("E15", |s| experiments::aging::run(s).0),
        ("E16", |s| experiments::trng::run(s).0),
        ("E17", |s| experiments::fleet::run(s).0),
        ("E18", |s| experiments::protocol_robustness::run(s).0),
        ("E19", |s| {
            let (rendered, outcome) = experiments::trace_overhead::run(s);
            // The traced fleet event log is the cross-thread-count
            // determinism artifact; CI diffs it at 1 vs 8 threads.
            match std::fs::write("TRACE_exp_fleet.jsonl", &outcome.trace_jsonl) {
                Ok(()) => eprintln!("wrote TRACE_exp_fleet.jsonl ({} events)", outcome.events),
                Err(e) => eprintln!("could not write TRACE_exp_fleet.jsonl: {e}"),
            }
            rendered
        }),
        ("E20", |s| experiments::gateway::run(s).0),
        // E21 pins the pool width internally for its 1-vs-8 identity
        // check; `with_threads` is a thread-local override, so running
        // it inside this par_map fan-out is safe.
        ("E21", |s| experiments::accel_throughput::run(s).0),
        ("E22", |s| experiments::sched_scaling::run(s).0),
        ("E23", |s| experiments::fleet_longrun::run(s).0),
        ("E24", |s| experiments::admission::run(s).0),
    ]
}

/// Runs every experiment at the pool's current width and returns the
/// deterministic rendered outputs in report order (host-measured
/// volatile lines go straight to stderr).
fn run_all(scale: Scale) -> Vec<String> {
    pool::par_map(runners(), |(_, run)| {
        let rendered = run(scale);
        for line in rendered.volatile_lines() {
            eprintln!("[host timing] {}: {line}", rendered.title);
        }
        rendered.stable_string()
    })
}

fn write_wall_clock_report(entries: &[(usize, f64)]) {
    let mut json = String::new();
    json.push_str("{\n  \"schema\": \"neuropuls-bench-v1\",\n");
    json.push_str("  \"target\": \"exp_all\",\n");
    json.push_str("  \"benchmarks\": [\n");
    for (i, (threads, ns)) in entries.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"harness_wall_clock/threads={threads}\", \"samples\": 1, \
             \"iters_per_sample\": 1, \"mean_ns\": {ns:.1}, \"p50_ns\": {ns:.1}, \
             \"p99_ns\": {ns:.1}, \"throughput_bytes\": null, \
             \"throughput_elements\": null}}{}\n",
            if i + 1 == entries.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");
    match std::fs::write("BENCH_exp_all.json", &json) {
        Ok(()) => eprintln!("wrote BENCH_exp_all.json"),
        Err(e) => eprintln!("could not write BENCH_exp_all.json: {e}"),
    }
}

fn main() {
    let scale = Scale::from_args();
    let baseline = std::env::args().any(|a| a == "--baseline");
    let threads = pool::current_threads();

    let t0 = Instant::now();
    let outputs = run_all(scale);
    let elapsed = t0.elapsed().as_secs_f64();
    for o in &outputs {
        print!("{o}");
    }
    eprintln!("harness wall clock: {elapsed:.2} s at {threads} threads");

    let mut entries = vec![(threads, elapsed * 1e9)];
    if baseline && threads > 1 {
        let t1 = Instant::now();
        let serial = pool::with_threads(1, || run_all(scale));
        let serial_elapsed = t1.elapsed().as_secs_f64();
        assert_eq!(
            serial, outputs,
            "parallel output must be byte-identical to serial"
        );
        eprintln!(
            "serial baseline: {serial_elapsed:.2} s — speedup {:.2}x, output byte-identical",
            serial_elapsed / elapsed
        );
        entries.push((1, serial_elapsed * 1e9));
    }
    write_wall_clock_report(&entries);
}
