//! # neuropuls-rt — the in-repo runtime that keeps the workspace hermetic
//!
//! Every other crate in the workspace depends only on `std` and this
//! crate, so `cargo build --release --offline` succeeds from an empty
//! registry cache. Deterministic, seedable randomness is not just a
//! build convenience: the PUF reliability/uniqueness methodology the
//! repository reproduces (Vinagrero et al.'s CRP filtering, the HSC-IoT
//! mutual-authentication protocol) requires that every experiment be
//! replayable bit-for-bit from a recorded seed.
//!
//! Four services live here:
//!
//! * [`mod@rng`] — a `rand`-compatible surface ([`Rng`], [`RngCore`],
//!   [`SeedableRng`], [`rngs::StdRng`], [`rngs::SmallRng`]) backed by an
//!   in-tree ChaCha20 keystream and a splitmix64/xoshiro256++ fast path;
//! * [`mod@prop`] — a miniature property-testing harness with the
//!   [`proptest!`] macro, strategy combinators and seeded shrinking;
//! * [`mod@criterion`] — a tiny bench timer (warmup + iters +
//!   mean/p50/p99) that writes machine-readable `BENCH_*.json` reports;
//! * [`mod@codec`] — a no-derive serialization helper
//!   ([`codec::ToBytes`] / [`codec::FromBytes`]) with a versioned header;
//! * [`mod@pool`] — a std-only scoped thread pool (`par_map` /
//!   `par_chunks`, `NEUROPULS_THREADS` sizing) whose parallel output is
//!   byte-identical to serial execution;
//! * [`mod@sched`] — deterministic discrete-event scheduling
//!   ([`sched::TimerWheel`] hierarchical timer wheel,
//!   [`sched::ReadyQueue`] duplicate-suppressing FIFO) driven by an
//!   explicit simulated tick counter;
//! * [`mod@trace`] — structured tracing and metrics ([`trace::Tracer`]
//!   spans/instants with simulated-tick timestamps, [`trace::Registry`]
//!   counters/histograms, JSONL export) whose merged output is
//!   deterministic under the pool.

#![warn(missing_docs)]

pub mod codec;
pub mod criterion;
pub mod pool;
pub mod prop;
pub mod rng;
pub mod sched;
pub mod trace;

pub use rng::{Error, Rng, RngCore, SeedableRng};

/// Named RNG implementations, mirroring `rand::rngs`.
pub mod rngs {
    pub use crate::rng::{SmallRng, StdRng};
}

/// Everything the property tests need: strategies, config, and the
/// assertion/`proptest!` macros.
pub mod prelude {
    pub use crate::prop::{self, any, ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}
