//! Enrollment: collecting golden CRPs at manufacturing time.
//!
//! Two enrollment styles appear in the paper:
//!
//! * the classic **CRP database** (Suh & Devadas \[16\]) that the mutual
//!   authentication section argues is too heavy — kept here as the
//!   baseline for experiment E4's storage comparison;
//! * the **single shared CRP** of HSC-IoT \[19\], which the database type
//!   also seeds.

use crate::bits::{Challenge, Response};
use crate::traits::{Puf, PufError};
use neuropuls_rt::codec::{CodecError, FromBytes, Reader, ToBytes, Writer};
use neuropuls_rt::Rng;

/// One enrolled challenge–response pair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Crp {
    /// The challenge.
    pub challenge: Challenge,
    /// The golden (majority-voted) response.
    pub response: Response,
}

impl ToBytes for Crp {
    fn write_into(&self, out: &mut Writer) {
        self.challenge.write_into(out);
        self.response.write_into(out);
    }
}

impl FromBytes for Crp {
    fn read_from(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(Crp {
            challenge: Challenge::read_from(r)?,
            response: Response::read_from(r)?,
        })
    }
}

/// A verifier-side database of enrolled CRPs for one device.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CrpDatabase {
    entries: Vec<Crp>,
}

impl ToBytes for CrpDatabase {
    fn write_into(&self, out: &mut Writer) {
        out.u64(self.entries.len() as u64);
        for crp in &self.entries {
            crp.write_into(out);
        }
    }
}

impl FromBytes for CrpDatabase {
    fn read_from(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let count = r.u64()? as usize;
        // Each CRP needs at least two bit-length words on the wire;
        // bound the preallocation by what the input could really hold.
        let mut entries = Vec::with_capacity(count.min(r.remaining() / 16 + 1));
        for _ in 0..count {
            entries.push(Crp::read_from(r)?);
        }
        Ok(CrpDatabase { entries })
    }
}

impl CrpDatabase {
    /// An empty database.
    pub fn new() -> Self {
        CrpDatabase::default()
    }

    /// Enrolls `count` random challenges against `puf`, majority-voting
    /// each response over `reads` evaluations.
    ///
    /// # Errors
    ///
    /// Propagates PUF evaluation errors.
    pub fn enroll<P: Puf, R: Rng + ?Sized>(
        puf: &mut P,
        count: usize,
        reads: usize,
        rng: &mut R,
    ) -> Result<Self, PufError> {
        let mut entries = Vec::with_capacity(count);
        for _ in 0..count {
            let challenge = Challenge::random(puf.challenge_bits(), rng);
            let response = puf.respond_golden(&challenge, reads)?;
            entries.push(Crp {
                challenge,
                response,
            });
        }
        Ok(CrpDatabase { entries })
    }

    /// Adds one CRP.
    pub fn push(&mut self, crp: Crp) {
        self.entries.push(crp);
    }

    /// Number of stored CRPs.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no CRPs are stored.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over the stored CRPs.
    pub fn iter(&self) -> std::slice::Iter<'_, Crp> {
        self.entries.iter()
    }

    /// Pops a fresh CRP for one authentication round (database-style
    /// protocols burn one CRP per round — the scalability problem §III-A
    /// avoids).
    pub fn pop(&mut self) -> Option<Crp> {
        self.entries.pop()
    }

    /// Looks up the golden response for a challenge.
    pub fn response_for(&self, challenge: &Challenge) -> Option<&Response> {
        self.entries
            .iter()
            .find(|crp| &crp.challenge == challenge)
            .map(|crp| &crp.response)
    }

    /// Storage footprint in bytes when packed (challenge + response bits
    /// per entry) — the quantity compared in experiment E4.
    pub fn storage_bytes(&self) -> usize {
        self.entries
            .iter()
            .map(|crp| crp.challenge.len().div_ceil(8) + crp.response.len().div_ceil(8))
            .sum()
    }
}

impl FromIterator<Crp> for CrpDatabase {
    fn from_iter<I: IntoIterator<Item = Crp>>(iter: I) -> Self {
        CrpDatabase {
            entries: iter.into_iter().collect(),
        }
    }
}

impl Extend<Crp> for CrpDatabase {
    fn extend<I: IntoIterator<Item = Crp>>(&mut self, iter: I) {
        self.entries.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arbiter::ArbiterPuf;
    use crate::traits::Puf;
    use neuropuls_photonic::process::DieId;
    use neuropuls_rt::rngs::StdRng;
    use neuropuls_rt::SeedableRng;

    fn puf() -> ArbiterPuf {
        ArbiterPuf::fabricate(DieId(1), 64, 3)
    }

    #[test]
    fn enroll_collects_requested_count() {
        let mut p = puf();
        let mut rng = StdRng::seed_from_u64(1);
        let db = CrpDatabase::enroll(&mut p, 25, 5, &mut rng).unwrap();
        assert_eq!(db.len(), 25);
        assert!(!db.is_empty());
    }

    #[test]
    fn golden_responses_verify_against_device() {
        let mut p = puf();
        let mut rng = StdRng::seed_from_u64(2);
        let db = CrpDatabase::enroll(&mut p, 10, 9, &mut rng).unwrap();
        let mut agreements = 0usize;
        for crp in db.iter() {
            let fresh = p.respond_golden(&crp.challenge, 9).unwrap();
            if fresh == crp.response {
                agreements += 1;
            }
        }
        assert!(agreements >= 8, "only {agreements}/10 CRPs verify");
    }

    #[test]
    fn lookup_and_pop() {
        let mut db = CrpDatabase::new();
        let crp = Crp {
            challenge: Challenge::from_u64(5, 8),
            response: Response::from_u64(3, 4),
        };
        db.push(crp.clone());
        assert_eq!(db.response_for(&crp.challenge), Some(&crp.response));
        assert_eq!(db.response_for(&Challenge::from_u64(6, 8)), None);
        assert_eq!(db.pop(), Some(crp));
        assert_eq!(db.pop(), None);
    }

    #[test]
    fn storage_accounting() {
        let db: CrpDatabase = (0..100)
            .map(|i| Crp {
                challenge: Challenge::from_u64(i, 64),
                response: Response::from_u64(i, 64),
            })
            .collect();
        assert_eq!(db.storage_bytes(), 100 * 16);
    }

    #[test]
    fn crp_roundtrips_through_codec() {
        let crp = Crp {
            challenge: Challenge::from_u64(0xA5A5, 17),
            response: Response::from_u64(0x3C, 7),
        };
        let bytes = crp.to_bytes();
        assert_eq!(Crp::from_bytes(&bytes).unwrap(), crp);
    }

    #[test]
    fn enrolled_database_roundtrips_through_codec() {
        let mut p = puf();
        let mut rng = StdRng::seed_from_u64(3);
        let db = CrpDatabase::enroll(&mut p, 12, 5, &mut rng).unwrap();
        let bytes = db.to_bytes();
        let back = CrpDatabase::from_bytes(&bytes).unwrap();
        assert_eq!(back, db);
        assert_eq!(back.storage_bytes(), db.storage_bytes());
    }

    #[test]
    fn database_codec_rejects_corruption() {
        let db: CrpDatabase = (0..4)
            .map(|i| Crp {
                challenge: Challenge::from_u64(i, 16),
                response: Response::from_u64(i, 8),
            })
            .collect();
        let bytes = db.to_bytes();
        // Truncation must error, not panic or return a partial database.
        assert!(CrpDatabase::from_bytes(&bytes[..bytes.len() - 3]).is_err());
        // A corrupted (huge) count must not cause a giant preallocation.
        let mut huge = bytes.clone();
        huge[6..14].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(CrpDatabase::from_bytes(&huge).is_err());
    }

    #[test]
    fn extend_appends() {
        let mut db = CrpDatabase::new();
        db.extend((0..3).map(|i| Crp {
            challenge: Challenge::from_u64(i, 8),
            response: Response::from_u64(i, 8),
        }));
        assert_eq!(db.len(), 3);
    }
}
