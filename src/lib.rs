//! # neuropuls — security layers for a neuromorphic photonic accelerator
//!
//! A research-grade reproduction of *"Security layers and related
//! services within the Horizon Europe NEUROPULS project"* (DATE 2024):
//! photonic physical unclonable functions simulated at the
//! transfer-function level, the security services built on them (mutual
//! authentication, software attestation, encrypted NN load/execute,
//! EKE-based key agreement), the attack models of §IV, and a gem5-like
//! system simulator per §V.
//!
//! The workspace crates are re-exported here; [`manufacture`] bundles
//! the full manufacturing flow (fabricate the dies, bind the chips,
//! enroll keys and provisioning records) into one call so examples and
//! downstream users start from a single line.
//!
//! ```
//! use neuropuls::manufacture::{manufacture, ManufactureConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let lot = manufacture(&ManufactureConfig::default())?;
//! assert_eq!(lot.device.die().0, ManufactureConfig::default().die_id);
//! # Ok(())
//! # }
//! ```

pub use neuropuls_accel as accel;
pub use neuropuls_attacks as attacks;
pub use neuropuls_crypto as crypto;
pub use neuropuls_filtering as filtering;
pub use neuropuls_metrics as metrics;
pub use neuropuls_photonic as photonic;
pub use neuropuls_protocols as protocols;
pub use neuropuls_puf as puf;
pub use neuropuls_system as system;

pub mod manufacture {
    //! One-call manufacturing flow: fabricate, bind, enroll, provision.

    use neuropuls_photonic::process::DieId;
    use neuropuls_protocols::error::ProtocolError;
    use neuropuls_protocols::keys::{enroll_key, EnrolledKey};
    use neuropuls_puf::photonic::PhotonicPuf;
    use neuropuls_puf::sram::SramPuf;
    use neuropuls_puf::weak::WeakPuf;

    /// Parameters of the manufacturing run.
    #[derive(Debug, Clone)]
    pub struct ManufactureConfig {
        /// Die identifier for the PIC.
        pub die_id: u64,
        /// Measurement-noise seed for this device instance.
        pub noise_seed: u64,
        /// Number of fixed weak-PUF challenges (key material width =
        /// 64 × this).
        pub weak_challenges: usize,
        /// ECC repetition factor for key enrollment.
        pub repetition: usize,
        /// Majority-vote reads during enrollment.
        pub enrollment_reads: usize,
    }

    impl Default for ManufactureConfig {
        fn default() -> Self {
            ManufactureConfig {
                die_id: 1,
                noise_seed: 0xA11CE,
                weak_challenges: 7,
                repetition: 3,
                enrollment_reads: 9,
            }
        }
    }

    /// Everything a freshly manufactured device ships with.
    #[derive(Debug)]
    pub struct ManufacturedLot {
        /// The strong pPUF used for authentication and attestation.
        pub device: PhotonicPuf,
        /// The weak-PUF view used to reproduce the device key in the
        /// field.
        pub weak: WeakPuf<PhotonicPuf>,
        /// The ASIC-side SRAM PUF bound to the PIC.
        pub asic: SramPuf,
        /// The enrolled device key + public provisioning record.
        pub enrolled_key: EnrolledKey,
    }

    /// Runs the manufacturing flow.
    ///
    /// # Errors
    ///
    /// Propagates PUF and enrollment failures.
    pub fn manufacture(config: &ManufactureConfig) -> Result<ManufacturedLot, ProtocolError> {
        let die = DieId(config.die_id);
        let device = PhotonicPuf::reference(die, config.noise_seed);
        let mut weak = WeakPuf::with_derived_challenges(
            PhotonicPuf::reference(die, config.noise_seed ^ 0x57EA_D00D),
            config.weak_challenges,
            0xFEED,
        );
        let asic = SramPuf::reference(DieId(config.die_id ^ 0xA51C), config.noise_seed);
        let enrolled_key = enroll_key(
            &mut weak,
            config.repetition,
            config.enrollment_reads,
            b"neuropuls/manufacture",
        )?;
        Ok(ManufacturedLot {
            device,
            weak,
            asic,
            enrolled_key,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::manufacture::{manufacture, ManufactureConfig};
    use neuropuls_protocols::keys::reproduce_key;

    #[test]
    fn manufacture_produces_reproducible_key() {
        let config = ManufactureConfig::default();
        let mut lot = manufacture(&config).unwrap();
        let key = reproduce_key(&mut lot.weak, &lot.enrolled_key.record).unwrap();
        assert_eq!(key, lot.enrolled_key.key);
    }

    #[test]
    fn different_dies_different_keys() {
        let a = manufacture(&ManufactureConfig::default()).unwrap();
        let b = manufacture(&ManufactureConfig {
            die_id: 2,
            ..ManufactureConfig::default()
        })
        .unwrap();
        assert_ne!(a.enrolled_key.key, b.enrolled_key.key);
    }
}
