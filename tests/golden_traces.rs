//! Golden-transcript tests: the structured trace of one full wire
//! session per §III protocol — plus a 3-device fleet attestation round —
//! is pinned byte-for-byte against fixtures in `tests/golden/*.trace`.
//!
//! Each fixture is the JSONL event log (`Tracer::to_jsonl`) of a fixed
//! seed, fixed configuration run through a lossy `FaultyChannel`, so the
//! fixtures pin the frame schedule, the ARQ retransmission pattern and
//! the span structure all at once. Any behavioral change to the wire
//! layer, the protocols, the fault model or the tracer shows up here as
//! a readable diff.
//!
//! Regenerating after an intentional change:
//!
//! ```text
//! NEUROPULS_BLESS=1 cargo test --test golden_traces
//! ```
//!
//! then review the fixture diff like any other code change.

use neuropuls_accel::config::NetworkConfig;
use neuropuls_accel::engine::PhotonicEngine;
use neuropuls_photonic::process::DieId;
use neuropuls_protocols::attestation::{
    run_wire_attestation, AttestationVerifier, AttestingDevice, TimingModel,
};
use neuropuls_protocols::attestation::{WireAttestationVerifier, WireAttestingDevice};
use neuropuls_protocols::eke::{run_wire_exchange, EkeParty, WireEkeInitiator, WireEkeResponder};
use neuropuls_protocols::gateway::{
    run_gateway, ClassId, DeficitWeightedRoundRobin, GatewayConfig, SessionPair,
};
use neuropuls_protocols::mutual_auth::{
    run_wire_session, Device, Verifier, WireDevice, WireVerifier,
};
use neuropuls_protocols::secure_nn::{
    run_wire_inference, NetworkOwner, SecureAccelerator, WireNnClient, WireNnServer,
};
use neuropuls_protocols::transport::{FaultRates, FaultyChannel};
use neuropuls_protocols::wire::{ProtocolId, SessionConfig};
use neuropuls_puf::bits::Response;
use neuropuls_puf::photonic::PhotonicPuf;
use neuropuls_rt::trace::{Registry, Tracer};
use neuropuls_system::fleet::{
    run_fleet, run_fleet_persistent, FleetConfig, PersistentFleetConfig,
};
use std::path::PathBuf;

/// Compares `jsonl` against `tests/golden/{name}.trace`, or rewrites the
/// fixture when `NEUROPULS_BLESS=1` is set.
fn check_golden(name: &str, jsonl: &str) {
    let path: PathBuf = [
        env!("CARGO_MANIFEST_DIR"),
        "tests",
        "golden",
        &format!("{name}.trace"),
    ]
    .iter()
    .collect();
    if std::env::var("NEUROPULS_BLESS").as_deref() == Ok("1") {
        std::fs::write(&path, jsonl).unwrap_or_else(|e| panic!("blessing {}: {e}", path.display()));
        eprintln!("blessed {}", path.display());
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing fixture {}: {e}\nrun `NEUROPULS_BLESS=1 cargo test --test golden_traces` to create it",
            path.display()
        )
    });
    assert!(
        jsonl == expected,
        "trace diverged from {} — if the change is intentional, regenerate with \
         `NEUROPULS_BLESS=1 cargo test --test golden_traces` and review the diff.\n\
         --- expected ---\n{expected}\n--- actual ---\n{jsonl}",
        path.display()
    );
}

/// The lossy link every protocol fixture runs over: ~10% frame loss so
/// the fixture pins the retransmission schedule, not just the happy
/// path.
fn lossy(seed: u64) -> FaultyChannel {
    FaultyChannel::new(FaultRates::loss(0.1), seed)
}

#[test]
fn golden_mutual_auth_session() {
    let puf = PhotonicPuf::reference(DieId(31), 1);
    let (mut device, provisioned) =
        Device::provision(puf, vec![0xA5; 1024], b"golden-provision").expect("provisions");
    let mut verifier = Verifier::new(provisioned, b"golden-verifier");
    let mut channel = lossy(0x601D_0001);
    let mut tracer = Tracer::new();
    let report = run_wire_session(
        &mut channel,
        &mut device,
        &mut verifier,
        1,
        SessionConfig::default(),
        &mut tracer,
    );
    assert!(report.succeeded(), "{:?}", report.result);
    check_golden("mutual_auth", &tracer.to_jsonl());
}

#[test]
fn golden_attestation_session() {
    let memory: Vec<u8> = (0..2048).map(|i| (i * 31 % 251) as u8).collect();
    let timing = TimingModel::photonic();
    let mut device =
        AttestingDevice::new(PhotonicPuf::reference(DieId(32), 1), memory.clone(), timing);
    let mut verifier =
        AttestationVerifier::new(PhotonicPuf::reference(DieId(32), 2), memory, timing);
    let mut channel = lossy(0x601D_0002);
    let mut tracer = Tracer::new();
    let report = run_wire_attestation(
        &mut channel,
        &mut device,
        &mut verifier,
        1,
        SessionConfig::default(),
        &mut tracer,
    );
    assert!(report.succeeded(), "{:?}", report.result);
    check_golden("attestation", &tracer.to_jsonl());
}

#[test]
fn golden_eke_session() {
    let crp = Response::from_u64(0x601D, 63);
    let mut initiator = EkeParty::new(&crp, b"golden-eke-init");
    let mut responder = EkeParty::new(&crp, b"golden-eke-resp");
    let mut channel = lossy(0x601D_0003);
    let mut tracer = Tracer::new();
    let report = run_wire_exchange(
        &mut channel,
        &mut initiator,
        &mut responder,
        1,
        SessionConfig::default(),
        &mut tracer,
    );
    assert!(report.succeeded(), "{:?}", report.result);
    assert_eq!(initiator.session(), responder.session());
    check_golden("eke", &tracer.to_jsonl());
}

#[test]
fn golden_secure_nn_session() {
    let key = [0x5A; 32];
    let mut owner = NetworkOwner::new(key, b"golden-owner");
    let mut accel = SecureAccelerator::new(PhotonicEngine::reference(1), key);
    let config = NetworkConfig::mlp(&[4, 4], |_, o, i| if o == i { 1.0 } else { 0.0 });
    let network_blob = owner.cipher_network(&config);
    let input_blob = owner.cipher_input(&[1.0, 0.5, -0.25, 0.0]);
    let mut channel = lossy(0x601D_0004);
    let mut tracer = Tracer::new();
    let (report, output) = run_wire_inference(
        &mut channel,
        &mut accel,
        network_blob,
        input_blob,
        1,
        SessionConfig::default(),
        &mut tracer,
    );
    assert!(report.succeeded(), "{:?}", report.result);
    assert!(output.is_some());
    check_golden("secure_nn", &tracer.to_jsonl());
}

#[test]
fn golden_fleet_attestation_round() {
    let config = FleetConfig {
        devices: 3,
        verifiers: 1,
        period_us: 20.0,
        horizon_us: 60.0,
        compromised_fraction: 0.34,
        seed: 0x601D_F1EE,
        auth_sessions: 1,
        auth_loss_rate: 0.1,
        crp_shards: 2,
        crp_hot_capacity: 2,
    };
    let mut tracer = Tracer::new();
    let registry = Registry::new();
    let report = run_fleet(&config, &mut tracer, &registry);
    assert!(report.attestations > 0, "{report:?}");
    check_golden("fleet_round", &tracer.to_jsonl());
}

/// A small keep-alive fleet across two re-attestation epochs with one
/// tampered device: the fixture pins the persistent gateway's timer
/// schedule (jittered fires, idle fast-forwards), the per-epoch session
/// traces and the consecutive-failure eviction of the tampered slot.
#[test]
fn golden_persistent_fleet_sessions() {
    let config = PersistentFleetConfig {
        devices: 3,
        reattest_period: 200,
        jitter: 16,
        epochs_per_device: 2,
        epoch_budget: 64,
        max_consecutive_failures: 2,
        corrupted_devices: 1,
        loss_rate: 0.1,
        seed: 0x0006_01DF_1EE7,
        crp_shards: 2,
        crp_hot_capacity: 2,
        horizon: 2048,
        ..PersistentFleetConfig::default()
    };
    let mut tracer = Tracer::new();
    let registry = Registry::new();
    let report = run_fleet_persistent(&config, &mut tracer, &registry);
    assert_eq!(report.evicted, 1, "{report:?}");
    assert_eq!(report.left, 2, "{report:?}");
    assert!(report.epochs_completed >= 4, "{report:?}");
    check_golden("fleet_persistent", &tracer.to_jsonl());
}

/// One session of every §III protocol multiplexed over a single lossy
/// link: the fixture pins the gateway's admission order, the demux
/// schedule and each session's ARQ pattern under shared-wire contention.
#[test]
fn golden_gateway_mixed_session() {
    let cfg = SessionConfig::default();

    let (mut auth_device, provisioned) = Device::provision(
        PhotonicPuf::reference(DieId(33), 1),
        vec![0xC3; 1024],
        b"golden-gateway-provision",
    )
    .expect("provisions");
    let mut auth_verifier = Verifier::new(provisioned, b"golden-gateway-verifier");

    let memory: Vec<u8> = (0..1024).map(|i| (i * 37 % 239) as u8).collect();
    let timing = TimingModel::photonic();
    let mut att_device =
        AttestingDevice::new(PhotonicPuf::reference(DieId(34), 1), memory.clone(), timing);
    let mut att_verifier =
        AttestationVerifier::new(PhotonicPuf::reference(DieId(34), 2), memory, timing);

    let crp = Response::from_u64(0x601D_6A7E, 63);
    let mut eke_initiator = EkeParty::new(&crp, b"golden-gateway-eke-init");
    let mut eke_responder = EkeParty::new(&crp, b"golden-gateway-eke-resp");

    let key = [0x3C; 32];
    let mut owner = NetworkOwner::new(key, b"golden-gateway-owner");
    let mut accel = SecureAccelerator::new(PhotonicEngine::reference(1), key);
    let net = NetworkConfig::mlp(&[4, 4], |_, o, i| if o == i { 1.0 } else { 0.0 });
    let network_blob = owner.cipher_network(&net);
    let input_blob = owner.cipher_input(&[0.75, -0.5, 0.25, 1.0]);

    let sessions = vec![
        SessionPair::new(
            ProtocolId::MutualAuth,
            1,
            Box::new(WireVerifier::new(&mut auth_verifier, 1, cfg)),
            Box::new(WireDevice::new(&mut auth_device, cfg)),
        ),
        SessionPair::new(
            ProtocolId::Attestation,
            2,
            Box::new(WireAttestationVerifier::new(&mut att_verifier, 2, cfg)),
            Box::new(WireAttestingDevice::new(&mut att_device, cfg)),
        ),
        SessionPair::new(
            ProtocolId::Eke,
            3,
            Box::new(WireEkeInitiator::new(&mut eke_initiator, 3, cfg)),
            Box::new(WireEkeResponder::new(&mut eke_responder, cfg)),
        ),
        SessionPair::new(
            ProtocolId::SecureNn,
            4,
            Box::new(WireNnClient::new(4, network_blob, input_blob, cfg)),
            Box::new(WireNnServer::new(&mut accel, cfg)),
        ),
    ];

    let mut channel = lossy(0x601D_0005);
    let mut tracer = Tracer::new();
    let registry = Registry::new();
    let report = run_gateway(
        &mut channel,
        sessions,
        GatewayConfig::default(),
        &mut tracer,
        &registry,
    );
    assert!(report.all_completed(), "{report:?}");
    check_golden("gateway", &tracer.to_jsonl());
}

/// The same four-protocol mix under a *class-aware* admission policy:
/// two active slots force a live backlog, the authentication session is
/// tagged control-plane and the inference session bulk, and deficit
/// weighted round-robin interleaves the classes instead of draining the
/// backlog in submission order. The fixture pins the weighted admission
/// schedule — the policy seam's non-FIFO side — byte for byte.
#[test]
fn golden_gateway_wfq() {
    let cfg = SessionConfig::default();

    let (mut auth_device, provisioned) = Device::provision(
        PhotonicPuf::reference(DieId(35), 1),
        vec![0x96; 1024],
        b"golden-wfq-provision",
    )
    .expect("provisions");
    let mut auth_verifier = Verifier::new(provisioned, b"golden-wfq-verifier");

    let memory: Vec<u8> = (0..1024).map(|i| (i * 43 % 233) as u8).collect();
    let timing = TimingModel::photonic();
    let mut att_device =
        AttestingDevice::new(PhotonicPuf::reference(DieId(36), 1), memory.clone(), timing);
    let mut att_verifier =
        AttestationVerifier::new(PhotonicPuf::reference(DieId(36), 2), memory, timing);

    let crp = Response::from_u64(0x601D_0F6A, 63);
    let mut eke_initiator = EkeParty::new(&crp, b"golden-wfq-eke-init");
    let mut eke_responder = EkeParty::new(&crp, b"golden-wfq-eke-resp");

    let key = [0x69; 32];
    let mut owner = NetworkOwner::new(key, b"golden-wfq-owner");
    let mut accel = SecureAccelerator::new(PhotonicEngine::reference(1), key);
    let net = NetworkConfig::mlp(&[4, 4], |_, o, i| if o == i { 1.0 } else { 0.0 });
    let network_blob = owner.cipher_network(&net);
    let input_blob = owner.cipher_input(&[0.5, 1.0, -0.75, 0.25]);

    let sessions = vec![
        SessionPair::new(
            ProtocolId::MutualAuth,
            1,
            Box::new(WireVerifier::new(&mut auth_verifier, 1, cfg)),
            Box::new(WireDevice::new(&mut auth_device, cfg)),
        )
        .with_class(ClassId::CONTROL_AUTH),
        SessionPair::new(
            ProtocolId::Attestation,
            2,
            Box::new(WireAttestationVerifier::new(&mut att_verifier, 2, cfg)),
            Box::new(WireAttestingDevice::new(&mut att_device, cfg)),
        )
        .with_class(ClassId::CONTROL_AUTH),
        SessionPair::new(
            ProtocolId::Eke,
            3,
            Box::new(WireEkeInitiator::new(&mut eke_initiator, 3, cfg)),
            Box::new(WireEkeResponder::new(&mut eke_responder, cfg)),
        )
        .with_class(ClassId::INFERENCE),
        SessionPair::new(
            ProtocolId::SecureNn,
            4,
            Box::new(WireNnClient::new(4, network_blob, input_blob, cfg)),
            Box::new(WireNnServer::new(&mut accel, cfg)),
        )
        .with_class(ClassId::INFERENCE),
    ];

    let mut channel = lossy(0x601D_0006);
    let mut tracer = Tracer::new();
    let registry = Registry::new();
    let report = run_gateway(
        &mut channel,
        sessions,
        GatewayConfig {
            max_active: 2,
            accept_queue: 2,
            policy: Box::new(DeficitWeightedRoundRobin::new()),
            ..GatewayConfig::default()
        },
        &mut tracer,
        &registry,
    );
    assert!(report.all_completed(), "{report:?}");
    assert_eq!(report.policy, "dwrr", "{report:?}");
    check_golden("gateway_wfq", &tracer.to_jsonl());
}
