//! E7 — §IV: power-analysis side channel. Electronic delay PUFs leak
//! their responses onto the power rail; photonic waveguides do not.

use crate::{Rendered, Scale};
use neuropuls_attacks::side_channel::{power_analysis_attack, LeakageModel, SideChannelOutcome};
use neuropuls_photonic::process::DieId;
use neuropuls_puf::arbiter::ArbiterPuf;
use neuropuls_puf::photonic::PhotonicPuf;

/// Sweep rows: (traces, electronic outcome, photonic outcome).
pub type Row = (usize, SideChannelOutcome, SideChannelOutcome);

/// Runs the trace-count sweep.
pub fn run(scale: Scale) -> (Rendered, Vec<Row>) {
    let trace_counts: Vec<usize> = scale.pick(vec![100, 400], vec![100, 500, 2000, 8000]);
    let mut rows = Vec::new();
    for &traces in &trace_counts {
        let mut electronic = ArbiterPuf::fabricate(DieId(0xE7), 64, 1);
        let e = power_analysis_attack(&mut electronic, LeakageModel::electronic(), traces, 3)
            .expect("electronic attack");
        let mut photonic = PhotonicPuf::reference(DieId(0xE7 + 1), 1);
        let p = power_analysis_attack(&mut photonic, LeakageModel::photonic(), traces, 3)
            .expect("photonic attack");
        rows.push((traces, e, p));
    }

    let mut out = Rendered::new("E7 (§IV) — power-analysis side channel");
    out.push(format!(
        "{:>8} | {:>14} {:>12} | {:>14} {:>12}",
        "traces", "elec recovery", "elec model", "phot recovery", "phot model"
    ));
    for (traces, e, p) in &rows {
        out.push(format!(
            "{:>8} | {:>13.1}% {:>11.1}% | {:>13.1}% {:>11.1}%",
            traces,
            e.response_recovery * 100.0,
            e.model_accuracy * 100.0,
            p.response_recovery * 100.0,
            p.model_accuracy * 100.0
        ));
    }
    out.push(
        "electronic: trace thresholding recovers responses, enabling covert modeling;".to_string(),
    );
    out.push("photonic: no RF leakage from waveguides — recovery stays at chance.".to_string());
    (out, rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_side_channel_separation() {
        let (_, rows) = run(Scale::Smoke);
        let (_, e, p) = rows.last().unwrap();
        assert!(e.response_recovery > 0.85, "electronic leak too weak");
        assert!(p.response_recovery < 0.65, "photonic leaked");
    }
}
