//! Attack models for the NEUROPULS security layers (§IV of the paper).
//!
//! Each module implements one attack class the paper discusses, so the
//! defenses can be *measured* instead of asserted:
//!
//! * [`ml`] — CRP-harvesting + logistic-regression modeling attacks
//!   (break arbiter PUFs, stay near chance on the photonic PUF);
//! * [`side_channel`] — power-analysis on simulated traces (electronic
//!   PUFs leak, photonic waveguides do not couple to the power rail);
//! * [`remanence`] — SRAM remanence-decay readout vs. the photonic
//!   <100 ns response window;
//! * [`protocol_attacks`] — replay / MITM-tamper / blind-forgery
//!   campaigns against the mutual-authentication service;
//! * [`tamper`] — chip-substitution attacks against the PIC+ASIC
//!   composite binding.
//!
//! # Example
//!
//! ```
//! use neuropuls_attacks::ml::{model_attack, parity_features};
//! use neuropuls_photonic::process::DieId;
//! use neuropuls_puf::arbiter::ArbiterPuf;
//!
//! # fn main() -> Result<(), neuropuls_puf::PufError> {
//! let mut target = ArbiterPuf::fabricate(DieId(1), 64, 9);
//! let outcome = model_attack(&mut target, parity_features, 500, 100, 0, 10, 1)?;
//! assert!(outcome.accuracy > 0.5);
//! # Ok(())
//! # }
//! ```

pub mod ml;
pub mod protocol_attacks;
pub mod remanence;
pub mod side_channel;
pub mod tamper;
