//! Regenerates the key-generation ablation (E10).
use neuropuls_bench::{experiments, Scale};

fn main() {
    let scale = Scale::from_args();
    let (out, _, _, _) = experiments::keygen::run(scale);
    print!("{out}");
}
