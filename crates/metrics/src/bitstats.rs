//! Bit-level distance statistics.
//!
//! All response-quality metrics of §II reduce to Hamming statistics over
//! bit strings. Bits are represented one-per-byte (`0`/`1`), matching the
//! rest of the workspace.

/// Hamming distance between two equal-length bit slices.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn hamming_distance(a: &[u8], b: &[u8]) -> usize {
    assert_eq!(a.len(), b.len(), "hamming distance requires equal lengths");
    a.iter()
        .zip(b.iter())
        .filter(|(&x, &y)| (x ^ y) & 1 == 1)
        .count()
}

/// Fractional Hamming distance in `[0, 1]`.
///
/// # Panics
///
/// Panics if the slices differ in length or are empty.
pub fn fractional_hamming_distance(a: &[u8], b: &[u8]) -> f64 {
    assert!(!a.is_empty(), "empty bit strings have no distance");
    hamming_distance(a, b) as f64 / a.len() as f64
}

/// Hamming weight (number of ones).
pub fn hamming_weight(bits: &[u8]) -> usize {
    bits.iter().filter(|&&b| b & 1 == 1).count()
}

/// Mean and sample standard deviation of a series.
pub fn mean_std(values: &[f64]) -> (f64, f64) {
    if values.is_empty() {
        return (f64::NAN, f64::NAN);
    }
    let n = values.len() as f64;
    let mean = values.iter().sum::<f64>() / n;
    if values.len() < 2 {
        return (mean, 0.0);
    }
    let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / (n - 1.0);
    (mean, var.sqrt())
}

/// All pairwise fractional Hamming distances among a set of responses
/// (the raw material of the *uniqueness* metric).
///
/// # Panics
///
/// Panics if responses have differing lengths.
pub fn pairwise_fhd(responses: &[Vec<u8>]) -> Vec<f64> {
    let mut out = Vec::with_capacity(responses.len() * (responses.len().saturating_sub(1)) / 2);
    for i in 0..responses.len() {
        for j in (i + 1)..responses.len() {
            out.push(fractional_hamming_distance(&responses[i], &responses[j]));
        }
    }
    out
}

/// Packs one-bit-per-byte into a compact byte string (8 bits per byte,
/// LSB first) — the wire format used by the protocols.
pub fn pack_bits(bits: &[u8]) -> Vec<u8> {
    let mut out = vec![0u8; bits.len().div_ceil(8)];
    for (i, &bit) in bits.iter().enumerate() {
        out[i / 8] |= (bit & 1) << (i % 8);
    }
    out
}

/// Inverse of [`pack_bits`]; `count` selects how many bits to take.
pub fn unpack_bits(bytes: &[u8], count: usize) -> Vec<u8> {
    (0..count.min(bytes.len() * 8))
        .map(|i| (bytes[i / 8] >> (i % 8)) & 1)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hamming_basics() {
        assert_eq!(hamming_distance(&[0, 1, 1, 0], &[0, 1, 1, 0]), 0);
        assert_eq!(hamming_distance(&[0, 1, 1, 0], &[1, 0, 0, 1]), 4);
        assert_eq!(hamming_distance(&[0, 0, 1], &[0, 1, 1]), 1);
    }

    #[test]
    fn fhd_normalizes() {
        assert_eq!(fractional_hamming_distance(&[0; 10], &[1; 10]), 1.0);
        assert_eq!(fractional_hamming_distance(&[0; 10], &[0; 10]), 0.0);
        assert!((fractional_hamming_distance(&[0, 1], &[1, 1]) - 0.5).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "equal lengths")]
    fn hamming_rejects_length_mismatch() {
        let _ = hamming_distance(&[0], &[0, 1]);
    }

    #[test]
    fn weight() {
        assert_eq!(hamming_weight(&[1, 0, 1, 1, 0]), 3);
        assert_eq!(hamming_weight(&[]), 0);
    }

    #[test]
    fn mean_std_basics() {
        let (m, s) = mean_std(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((m - 5.0).abs() < 1e-12);
        assert!((s - 2.138089935).abs() < 1e-6);
        let (m1, s1) = mean_std(&[3.0]);
        assert_eq!((m1, s1), (3.0, 0.0));
        assert!(mean_std(&[]).0.is_nan());
    }

    #[test]
    fn pairwise_count() {
        let responses = vec![vec![0, 1], vec![1, 1], vec![0, 0]];
        let distances = pairwise_fhd(&responses);
        assert_eq!(distances.len(), 3);
    }

    #[test]
    fn pack_unpack_roundtrip() {
        let bits: Vec<u8> = (0..29).map(|i| (i % 3 == 0) as u8).collect();
        let packed = pack_bits(&bits);
        assert_eq!(packed.len(), 4);
        assert_eq!(unpack_bits(&packed, 29), bits);
    }

    #[test]
    fn pack_is_lsb_first() {
        assert_eq!(pack_bits(&[1, 0, 0, 0, 0, 0, 0, 0]), vec![1]);
        assert_eq!(pack_bits(&[0, 0, 0, 0, 0, 0, 0, 1]), vec![128]);
    }
}
