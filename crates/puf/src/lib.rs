//! Physical-unclonable-function models for the NEUROPULS security
//! layers.
//!
//! The crate provides the [`Puf`] trait plus every primitive the paper
//! mentions:
//!
//! * [`photonic::PhotonicPuf`] — the strong pPUF of Fig. 2 (modulated
//!   burst → passive scrambler mesh → photodiode array → ADC
//!   comparisons), built on the `neuropuls-photonic` simulator;
//! * [`weak::WeakPuf`] — a fixed-challenge-set weak view for key
//!   generation;
//! * [`sram::SramPuf`] — the ASIC-side SRAM PUF (with remanence decay);
//! * [`ro::RoPuf`] — the ring-oscillator PUF of the Fig. 3 filtering
//!   study;
//! * [`arbiter::ArbiterPuf`] / [`arbiter::XorArbiterPuf`] — the
//!   ML-attackable electronic baselines of §IV;
//! * [`composite::CompositePuf`] — the PIC+ASIC chip-binding composite;
//! * [`challenge_encryption::ChallengeEncryptedPuf`] — the weak+strong
//!   hardening of \[30\].
//!
//! # Example
//!
//! ```
//! use neuropuls_puf::bits::Challenge;
//! use neuropuls_puf::photonic::PhotonicPuf;
//! use neuropuls_puf::traits::Puf;
//! use neuropuls_photonic::process::DieId;
//!
//! # fn main() -> Result<(), neuropuls_puf::traits::PufError> {
//! let mut ppuf = PhotonicPuf::reference(DieId(1), 42);
//! let challenge = Challenge::from_u64(0xDEAD_BEEF, 64);
//! let response = ppuf.respond(&challenge)?;
//! assert_eq!(response.len(), 64);
//! # Ok(())
//! # }
//! ```

pub mod arbiter;
pub mod bits;
pub mod challenge_encryption;
pub mod composite;
pub mod enrollment;
pub mod photonic;
pub mod ro;
pub mod sram;
pub mod traits;
pub mod trng;
pub mod weak;

pub use bits::{Challenge, Response};
pub use traits::{Puf, PufError, PufKind};
