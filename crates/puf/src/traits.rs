//! The PUF abstraction used by every protocol and experiment.

use crate::bits::{Challenge, Response};
use neuropuls_photonic::Environment;
use std::error::Error;
use std::fmt;

/// Weak vs. strong primitive (Fig. 1: "Weak and strong PUFs target
/// different security services").
///
/// * A **weak** PUF supports few challenges and is used for key
///   generation (with a fuzzy extractor).
/// * A **strong** PUF has an exponential challenge space and is used for
///   authentication and attestation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PufKind {
    /// Few CRPs; key-generation primitive.
    Weak,
    /// Exponentially many CRPs; authentication primitive.
    Strong,
}

impl fmt::Display for PufKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PufKind::Weak => write!(f, "weak"),
            PufKind::Strong => write!(f, "strong"),
        }
    }
}

/// Errors raised by PUF evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PufError {
    /// The challenge length does not match the primitive.
    ChallengeLength {
        /// Bits the primitive expects.
        expected: usize,
        /// Bits supplied.
        actual: usize,
    },
    /// The challenge addresses a resource outside the primitive (e.g. an
    /// RO index or SRAM word beyond the array).
    ChallengeOutOfRange(String),
}

impl fmt::Display for PufError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PufError::ChallengeLength { expected, actual } => {
                write!(
                    f,
                    "challenge length mismatch: expected {expected} bits, got {actual}"
                )
            }
            PufError::ChallengeOutOfRange(what) => write!(f, "challenge out of range: {what}"),
        }
    }
}

impl Error for PufError {}

/// A physical unclonable function.
///
/// Implementations are *stateful* only in their noise source and
/// environment; the underlying physical secret is fixed at construction
/// (fabrication).
pub trait Puf {
    /// Challenge width in bits.
    fn challenge_bits(&self) -> usize;

    /// Response width in bits.
    fn response_bits(&self) -> usize;

    /// Weak or strong.
    fn kind(&self) -> PufKind;

    /// Evaluates the PUF on `challenge` under the current environment,
    /// including measurement noise (each call may differ slightly).
    ///
    /// # Errors
    ///
    /// Returns [`PufError`] when the challenge does not fit the
    /// primitive.
    fn respond(&mut self, challenge: &Challenge) -> Result<Response, PufError>;

    /// Sets the operating environment for subsequent evaluations.
    fn set_environment(&mut self, env: Environment);

    /// The current operating environment.
    fn environment(&self) -> Environment;

    /// Enrollment helper: majority vote over `reads` noisy evaluations.
    ///
    /// # Errors
    ///
    /// Propagates the first evaluation error.
    fn respond_golden(
        &mut self,
        challenge: &Challenge,
        reads: usize,
    ) -> Result<Response, PufError> {
        assert!(reads > 0, "golden response needs at least one read");
        let readings: Result<Vec<Response>, PufError> =
            (0..reads).map(|_| self.respond(challenge)).collect();
        Ok(Response::majority(&readings?))
    }

    /// Nominal response latency in nanoseconds for one evaluation
    /// (drives the attestation temporal constraints of §III-B).
    fn latency_ns(&self) -> f64;

    /// Response generation throughput in Gbit/s (§III-B: "the inherent
    /// speed of the pPUF (at least 5 Gb/s)").
    fn throughput_gbps(&self) -> f64 {
        self.response_bits() as f64 / self.latency_ns().max(f64::MIN_POSITIVE)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_display() {
        assert_eq!(PufKind::Weak.to_string(), "weak");
        assert_eq!(PufKind::Strong.to_string(), "strong");
    }

    #[test]
    fn error_display() {
        let e = PufError::ChallengeLength {
            expected: 64,
            actual: 32,
        };
        assert!(e.to_string().contains("64"));
        let e2 = PufError::ChallengeOutOfRange("ro pair 900".into());
        assert!(e2.to_string().contains("900"));
    }
}
