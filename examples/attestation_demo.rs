//! Software attestation demo (§III-B): an honest device passes, a
//! compromised device fails the digest, and a hide-and-seek adversary
//! fails the temporal constraint — but only because the pPUF is fast
//! enough to keep the bound tight (the slow-PUF ablation admits the
//! attack).
//!
//! ```sh
//! cargo run --example attestation_demo --release
//! ```

use neuropuls::photonic::process::DieId;
use neuropuls::protocols::attestation::{AttestationVerifier, AttestingDevice, TimingModel};
use neuropuls::protocols::error::ProtocolError;
use neuropuls::puf::photonic::PhotonicPuf;

const MEMORY: usize = 64 * 1024;

fn firmware_image() -> Vec<u8> {
    (0..MEMORY).map(|i| ((i * 131 + 7) % 251) as u8).collect()
}

fn verdict(result: &Result<(), ProtocolError>) -> String {
    match result {
        Ok(()) => "ACCEPTED".into(),
        Err(e) => format!("REJECTED ({e})"),
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let die = DieId(42);
    let timing = TimingModel::photonic();
    let memory = firmware_image();

    let mut verifier = AttestationVerifier::new(
        PhotonicPuf::reference(die, 2), // the verifier's model of the same die
        memory.clone(),
        timing,
    );

    println!("attesting {} KiB of device memory", MEMORY / 1024);
    println!(
        "temporal bound: {:.1} µs (pPUF keeps the walk hash-bound)",
        verifier.allowed_ns(MEMORY) / 1000.0
    );

    // Scenario 1: honest device.
    let mut honest = AttestingDevice::new(PhotonicPuf::reference(die, 1), memory.clone(), timing);
    let request = verifier.begin();
    let report = honest.attest(&request)?;
    println!(
        "honest device      : {:9.1} µs -> {}",
        report.elapsed_ns / 1000.0,
        verdict(&verifier.verify(&request, &report))
    );

    // Scenario 2: compromised memory (one flipped byte).
    let mut compromised =
        AttestingDevice::new(PhotonicPuf::reference(die, 1), memory.clone(), timing);
    compromised.corrupt_memory(4096, 0xFF);
    let request = verifier.begin();
    let report = compromised.attest(&request)?;
    println!(
        "compromised memory : {:9.1} µs -> {}",
        report.elapsed_ns / 1000.0,
        verdict(&verifier.verify(&request, &report))
    );

    // Scenario 3: hide-and-seek adversary — correct hash, but pays remap
    // time per chunk.
    let mut hiding = AttestingDevice::new(PhotonicPuf::reference(die, 1), memory.clone(), timing);
    hiding.adversary_overhead_ns = timing.chunk_ns();
    let request = verifier.begin();
    let report = hiding.attest(&request)?;
    println!(
        "hide-and-seek      : {:9.1} µs -> {}",
        report.elapsed_ns / 1000.0,
        verdict(&verifier.verify(&request, &report))
    );

    // Ablation: same adversary against a slow electronic PUF.
    let slow = TimingModel::slow_electronic();
    let mut slow_verifier =
        AttestationVerifier::new(PhotonicPuf::reference(die, 2), memory.clone(), slow);
    let mut slow_hiding = AttestingDevice::new(PhotonicPuf::reference(die, 1), memory, slow);
    slow_hiding.adversary_overhead_ns = timing.chunk_ns();
    let request = slow_verifier.begin();
    let report = slow_hiding.attest(&request)?;
    println!(
        "\nslow-PUF ablation: bound balloons to {:.1} ms;",
        slow_verifier.allowed_ns(MEMORY) / 1e6
    );
    println!(
        "same hide-and-seek adversary -> {} (the attack FITS inside the loose bound)",
        verdict(&slow_verifier.verify(&request, &report))
    );
    Ok(())
}
