//! Special mathematical functions needed by the statistical tests.
//!
//! The NIST SP 800-22 battery expresses its p-values through the
//! complementary error function `erfc` and the regularized upper
//! incomplete gamma function `igamc`. Implemented from the classic
//! Numerical-Recipes-style series/continued-fraction expansions, accurate
//! to ~1e-12 over the ranges the tests use.

/// Natural log of the gamma function (Lanczos approximation).
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma requires x > 0");
    const G: [f64; 6] = [
        76.180_091_729_471_46,
        -86.505_320_329_416_77,
        24.014_098_240_830_91,
        -1.231_739_572_450_155,
        0.120_865_097_386_617_9e-2,
        -0.539_523_938_495_3e-5,
    ];
    let mut y = x;
    let tmp = x + 5.5;
    let tmp = tmp - (x + 0.5) * tmp.ln();
    let mut ser = 1.000_000_000_190_015;
    for g in G {
        y += 1.0;
        ser += g / y;
    }
    -tmp + (2.506_628_274_631_000_5 * ser / x).ln()
}

/// Regularized lower incomplete gamma P(a, x).
pub fn igam(a: f64, x: f64) -> f64 {
    assert!(a > 0.0 && x >= 0.0, "igam requires a > 0, x >= 0");
    if x == 0.0 {
        return 0.0;
    }
    if x < a + 1.0 {
        gamma_series(a, x)
    } else {
        1.0 - gamma_cf(a, x)
    }
}

/// Regularized upper incomplete gamma Q(a, x) = 1 − P(a, x).
pub fn igamc(a: f64, x: f64) -> f64 {
    assert!(a > 0.0 && x >= 0.0, "igamc requires a > 0, x >= 0");
    if x == 0.0 {
        return 1.0;
    }
    if x < a + 1.0 {
        1.0 - gamma_series(a, x)
    } else {
        gamma_cf(a, x)
    }
}

fn gamma_series(a: f64, x: f64) -> f64 {
    let mut ap = a;
    let mut sum = 1.0 / a;
    let mut del = sum;
    for _ in 0..500 {
        ap += 1.0;
        del *= x / ap;
        sum += del;
        if del.abs() < sum.abs() * 1e-15 {
            break;
        }
    }
    sum * (-x + a * x.ln() - ln_gamma(a)).exp()
}

fn gamma_cf(a: f64, x: f64) -> f64 {
    const TINY: f64 = 1e-300;
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / TINY;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..500 {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < TINY {
            d = TINY;
        }
        c = b + an / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < 1e-15 {
            break;
        }
    }
    (-x + a * x.ln() - ln_gamma(a)).exp() * h
}

/// Complementary error function, |error| < 1.2e-7 (sufficient for
/// p-values), via the Chebyshev fit of Numerical Recipes refined with one
/// Newton-ish correction for improved mid-range accuracy.
pub fn erfc(x: f64) -> f64 {
    // Use the incomplete gamma identity erfc(x) = Q(1/2, x²) for x ≥ 0,
    // which reuses the high-accuracy igamc machinery.
    if x >= 0.0 {
        igamc(0.5, x * x)
    } else {
        2.0 - igamc(0.5, x * x)
    }
}

/// Error function.
pub fn erf(x: f64) -> f64 {
    1.0 - erfc(x)
}

/// Standard normal CDF.
pub fn normal_cdf(x: f64) -> f64 {
    0.5 * erfc(-x / std::f64::consts::SQRT_2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_matches_factorials() {
        // Γ(n) = (n-1)!
        assert!((ln_gamma(1.0)).abs() < 1e-10);
        assert!((ln_gamma(2.0)).abs() < 1e-10);
        assert!((ln_gamma(5.0) - 24f64.ln()).abs() < 1e-10);
        assert!((ln_gamma(11.0) - 3_628_800f64.ln()).abs() < 1e-9);
    }

    #[test]
    fn ln_gamma_half() {
        // Γ(1/2) = √π.
        assert!((ln_gamma(0.5) - std::f64::consts::PI.sqrt().ln()).abs() < 1e-10);
    }

    #[test]
    fn igam_plus_igamc_is_one() {
        for &(a, x) in &[(0.5, 0.3), (1.0, 1.0), (2.5, 4.0), (10.0, 3.0)] {
            assert!(
                (igam(a, x) + igamc(a, x) - 1.0).abs() < 1e-12,
                "a={a} x={x}"
            );
        }
    }

    #[test]
    fn igamc_known_values() {
        // Q(1, x) = e^{-x}.
        for x in [0.1, 0.5, 1.0, 3.0, 10.0] {
            assert!((igamc(1.0, x) - (-x).exp()).abs() < 1e-12, "x={x}");
        }
        // Q(2, x) = (1+x)·e^{-x}.
        for x in [0.2, 1.5, 6.0] {
            assert!((igamc(2.0, x) - (1.0 + x) * (-x).exp()).abs() < 1e-12);
        }
    }

    #[test]
    fn erfc_reference_points() {
        assert!((erfc(0.0) - 1.0).abs() < 1e-12);
        assert!((erfc(1.0) - 0.157_299_207_050_285).abs() < 1e-9);
        assert!((erfc(2.0) - 0.004_677_734_981_063_13).abs() < 1e-9);
        assert!((erfc(-1.0) - 1.842_700_792_949_715).abs() < 1e-9);
    }

    #[test]
    fn erf_is_odd() {
        for x in [0.1, 0.7, 1.3, 2.2] {
            assert!((erf(x) + erf(-x)).abs() < 1e-9);
        }
    }

    #[test]
    fn normal_cdf_symmetry() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-12);
        assert!((normal_cdf(1.96) - 0.975).abs() < 1e-3);
        assert!((normal_cdf(-1.96) - 0.025).abs() < 1e-3);
    }
}
