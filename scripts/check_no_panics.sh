#!/usr/bin/env bash
# No-panic gate for the protocol, system and accelerator layers: a frame
# off the wire, a firmware register poke or a hostile network blob must
# never be able to bring the process down, so production paths in
# crates/protocols, crates/system and crates/accel return
# ProtocolError / BusFault / EngineError instead of panicking.
#
# The gate scans every non-test line (each file is truncated at its
# `#[cfg(test)]` marker) for `.unwrap()`, `.expect(`, `panic!(` and
# `unreachable!(`. A site is allowed only when a justification appears at
# most MAX_DISTANCE lines above it:
#   - a `// invariant:` comment proving the failure is statically
#     impossible, or
#   - a `# Panics` doc section (rustdoc's contract for deliberate panics
#     on caller misuse, e.g. constructor config validation).
# Anything else fails the gate: either convert the site to a Result or
# document the invariant that makes it infallible.
#
# On top of the per-site justification rule, the gate holds a hard
# budget: the total number of non-test panic sites across both crates
# must not exceed MAX_PANIC_SITES. Justified sites still count — the
# budget is a ratchet, so new code has to earn panics by removing old
# ones. Lower the constant when sites are converted; never raise it
# without a review of every remaining site.
#
# This static gate is paired with a dynamic one:
# crates/protocols/tests/decoder_robustness.rs drives every wire
# decoder (Envelope framing plus each §III message and message-enum
# FromBytes impl) with truncated, bit-flipped, tag-swept and seeded
# random inputs, demonstrating at runtime that the decoding paths reach
# none of the budgeted sites — hostile bytes come back as typed
# CodecErrors. Decoder changes must keep both gates green.
#
# Usage: scripts/check_no_panics.sh

set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
cd "$REPO_ROOT"

MAX_DISTANCE=10
# Audited 2026-08: 17 sites, each behind an `// invariant:` proof or a
# `# Panics` doc contract (mutex poisoning, fixed-size HKDF outputs,
# peek-then-pop, static memory-map ordering, backlog accounting).
# crates/accel joined the gate with zero sites — the batched inference
# path ships typed EngineErrors end to end — so the budget holds.
MAX_PANIC_SITES=17
status=0
site_count=0

for f in crates/protocols/src/*.rs crates/protocols/src/gateway/*.rs crates/system/src/*.rs crates/accel/src/*.rs; do
    # Test-only modules are gated by `#[cfg(test)] mod tests;` in their
    # parent, so the in-file truncation never fires for them.
    [[ "$(basename "$f")" == "tests.rs" ]] && continue
    hits=$(awk -v max="$MAX_DISTANCE" '
        /#\[cfg\(test\)\]/ { exit }
        /invariant:|# Panics/ { guard = NR }
        /\.unwrap\(\)|\.expect\(|panic!\(|unreachable!\(/ {
            if (NR - guard > max) print FILENAME ":" NR ": " $0
        }' "$f")
    if [[ -n "$hits" ]]; then
        echo "$hits"
        status=1
    fi
    n=$(awk '
        /#\[cfg\(test\)\]/ { exit }
        /\.unwrap\(\)|\.expect\(|panic!\(|unreachable!\(/ { c++ }
        END { print c + 0 }' "$f")
    site_count=$((site_count + n))
done

if [[ "$status" -ne 0 ]]; then
    echo "check_no_panics: FAIL: unjustified panic sites in non-test protocol/system code" >&2
    echo "check_no_panics: convert to ProtocolError/BusFault, or precede with an '// invariant:' comment or '# Panics' doc section" >&2
    exit 1
fi

if [[ "$site_count" -gt "$MAX_PANIC_SITES" ]]; then
    echo "check_no_panics: FAIL: $site_count non-test panic sites exceed the budget of $MAX_PANIC_SITES" >&2
    echo "check_no_panics: convert a site to a typed error instead of adding one, or re-audit every site before raising MAX_PANIC_SITES" >&2
    exit 1
fi

echo "check_no_panics: OK: no unjustified panic sites; $site_count/$MAX_PANIC_SITES budget used in crates/protocols, crates/system and crates/accel"
