//! Error type shared by all primitives in this crate.

use std::error::Error;
use std::fmt;

/// Error returned by fallible cryptographic operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CryptoError {
    /// A MAC or tag comparison failed.
    MacMismatch,
    /// An input had an invalid length for the primitive.
    InvalidLength {
        /// What the primitive expected.
        expected: usize,
        /// What the caller supplied.
        actual: usize,
    },
    /// A decoded codeword contained more errors than the code can correct.
    UncorrectableCodeword,
    /// Fuzzy-extractor reproduction failed (helper data inconsistent or the
    /// noisy response was too far from the enrolled one).
    ReproductionFailed,
    /// An X25519 public key was the all-zero point (low order input).
    LowOrderPoint,
    /// Key material was exhausted or malformed.
    InvalidKey(String),
}

impl fmt::Display for CryptoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CryptoError::MacMismatch => write!(f, "message authentication code mismatch"),
            CryptoError::InvalidLength { expected, actual } => {
                write!(f, "invalid input length: expected {expected}, got {actual}")
            }
            CryptoError::UncorrectableCodeword => {
                write!(f, "codeword contains more errors than the code can correct")
            }
            CryptoError::ReproductionFailed => {
                write!(f, "fuzzy extractor could not reproduce the enrolled key")
            }
            CryptoError::LowOrderPoint => write!(f, "x25519 input point has low order"),
            CryptoError::InvalidKey(reason) => write!(f, "invalid key material: {reason}"),
        }
    }
}

impl Error for CryptoError {}
