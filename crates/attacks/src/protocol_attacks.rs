//! Active protocol attacks against the mutual-authentication service —
//! the adversary models the HSC-IoT design claims to resist (§III-A).

use neuropuls_protocols::error::ProtocolError;
use neuropuls_protocols::mutual_auth::{AuthRequest, Device, DeviceAuth, Verifier};
use neuropuls_puf::traits::Puf;
use neuropuls_rt::rngs::StdRng;
use neuropuls_rt::{Rng, SeedableRng};

/// Result of one adversarial campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CampaignOutcome {
    /// Attack attempts made.
    pub attempts: usize,
    /// Attempts the verifier (wrongly) accepted.
    pub successes: usize,
}

impl CampaignOutcome {
    /// Attack success rate.
    pub fn rate(&self) -> f64 {
        if self.attempts == 0 {
            0.0
        } else {
            self.successes as f64 / self.attempts as f64
        }
    }
}

/// Replay campaign: capture one genuine device message, replay it
/// `attempts` times in fresh sessions.
///
/// # Errors
///
/// Fails only if the *genuine* session cannot run.
pub fn replay_campaign<P: Puf>(
    device: &mut Device<P>,
    verifier: &mut Verifier,
    attempts: usize,
) -> Result<CampaignOutcome, ProtocolError> {
    let request = verifier.begin_session();
    let genuine = device.respond_to_request(&request)?;
    let confirm = verifier.process_device_auth(&request, &genuine)?;
    device.process_confirmation(&confirm)?;

    let mut successes = 0;
    for _ in 0..attempts {
        let fresh_request = verifier.begin_session();
        if verifier.process_device_auth(&fresh_request, &genuine).is_ok() {
            successes += 1;
        }
    }
    Ok(CampaignOutcome {
        attempts,
        successes,
    })
}

/// Man-in-the-middle bit-flip campaign: relay genuine sessions but flip
/// one random bit of the device message each time.
///
/// # Errors
///
/// Fails only on infrastructure errors (the genuine device refusing to
/// answer).
pub fn mitm_tamper_campaign<P: Puf>(
    device: &mut Device<P>,
    verifier: &mut Verifier,
    attempts: usize,
    seed: u64,
) -> Result<CampaignOutcome, ProtocolError> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut successes = 0;
    for _ in 0..attempts {
        let request = verifier.begin_session();
        let mut msg: DeviceAuth = device.respond_to_request(&request)?;
        // Flip one random bit somewhere in the masked response.
        let byte = rng.gen_range(0..msg.masked_response.len());
        let bit = rng.gen_range(0u8..8);
        msg.masked_response[byte] ^= 1u8 << bit;
        if verifier.process_device_auth(&request, &msg).is_ok() {
            successes += 1;
        }
        // The device aborts its half-open session (no confirmation
        // arrived).
        device.abort_session();
    }
    Ok(CampaignOutcome {
        attempts,
        successes,
    })
}

/// Blind forgery campaign: the attacker fabricates device messages with
/// random MACs (it knows the message format but not the secret).
pub fn forgery_campaign(verifier: &mut Verifier, attempts: usize, seed: u64) -> CampaignOutcome {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut successes = 0;
    for _ in 0..attempts {
        let request: AuthRequest = verifier.begin_session();
        let mut masked = vec![0u8; 8];
        rng.fill(masked.as_mut_slice());
        let msg = DeviceAuth {
            masked_response: masked,
            memory_hash: rng.gen(),
            clock_count: rng.gen_range(0..2000),
            device_nonce: rng.gen(),
            mac: rng.gen(),
        };
        if verifier.process_device_auth(&request, &msg).is_ok() {
            successes += 1;
        }
    }
    CampaignOutcome {
        attempts,
        successes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neuropuls_photonic::process::DieId;
    use neuropuls_puf::photonic::PhotonicPuf;

    fn pair(die: u64) -> (Device<PhotonicPuf>, Verifier) {
        let puf = PhotonicPuf::reference(DieId(die), die + 3);
        let (device, provisioned) =
            Device::provision(puf, vec![0x11; 512], b"attack-seed").unwrap();
        (device, Verifier::new(provisioned, b"attack-verifier"))
    }

    #[test]
    fn replays_never_succeed() {
        let (mut device, mut verifier) = pair(1);
        let outcome = replay_campaign(&mut device, &mut verifier, 20).unwrap();
        assert_eq!(outcome.successes, 0);
        assert_eq!(outcome.attempts, 20);
    }

    #[test]
    fn mitm_bit_flips_never_succeed() {
        let (mut device, mut verifier) = pair(2);
        let outcome = mitm_tamper_campaign(&mut device, &mut verifier, 15, 77).unwrap();
        assert_eq!(outcome.successes, 0);
    }

    #[test]
    fn blind_forgeries_never_succeed() {
        let (_, mut verifier) = pair(3);
        let outcome = forgery_campaign(&mut verifier, 200, 78);
        assert_eq!(outcome.successes, 0);
        assert!((outcome.rate() - 0.0).abs() < f64::EPSILON);
    }

    #[test]
    fn genuine_sessions_still_work_after_attacks() {
        let (mut device, mut verifier) = pair(4);
        let _ = replay_campaign(&mut device, &mut verifier, 5).unwrap();
        let _ = mitm_tamper_campaign(&mut device, &mut verifier, 5, 79).unwrap();
        neuropuls_protocols::mutual_auth::run_session(&mut device, &mut verifier).unwrap();
    }
}
