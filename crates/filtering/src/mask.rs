//! Enrollment-time selection masks.
//!
//! The filtering method produces, per device, the set of CRP positions
//! that survived the threshold window. The mask is *public* helper data:
//! it reveals which positions are used, not their values (the same model
//! as fuzzy-extractor helper data).

/// A boolean keep/drop mask over CRP positions.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SelectionMask {
    keep: Vec<bool>,
}

impl SelectionMask {
    /// Builds from an iterator of keep flags.
    pub fn from_flags(flags: impl IntoIterator<Item = bool>) -> Self {
        SelectionMask {
            keep: flags.into_iter().collect(),
        }
    }

    /// Builds a mask keeping every one of `len` positions.
    pub fn keep_all(len: usize) -> Self {
        SelectionMask {
            keep: vec![true; len],
        }
    }

    /// Number of positions covered.
    pub fn len(&self) -> usize {
        self.keep.len()
    }

    /// True when the mask covers no positions.
    pub fn is_empty(&self) -> bool {
        self.keep.is_empty()
    }

    /// Number of kept positions.
    pub fn kept(&self) -> usize {
        self.keep.iter().filter(|&&k| k).count()
    }

    /// Indices of kept positions.
    pub fn kept_indices(&self) -> Vec<usize> {
        self.keep
            .iter()
            .enumerate()
            .filter_map(|(i, &k)| k.then_some(i))
            .collect()
    }

    /// Whether position `i` is kept (positions beyond the mask are
    /// dropped).
    pub fn is_kept(&self, i: usize) -> bool {
        self.keep.get(i).copied().unwrap_or(false)
    }

    /// Applies the mask to a bit slice, returning only kept bits.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is shorter than the mask.
    pub fn apply(&self, bits: &[u8]) -> Vec<u8> {
        assert!(
            bits.len() >= self.keep.len(),
            "bit string shorter than mask"
        );
        self.keep
            .iter()
            .zip(bits.iter())
            .filter_map(|(&k, &b)| k.then_some(b))
            .collect()
    }

    /// Intersects with another mask (a CRP must survive on both the
    /// enrollment and a revalidation pass).
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    pub fn intersect(&self, other: &SelectionMask) -> SelectionMask {
        assert_eq!(self.len(), other.len(), "mask length mismatch");
        SelectionMask {
            keep: self
                .keep
                .iter()
                .zip(other.keep.iter())
                .map(|(&a, &b)| a && b)
                .collect(),
        }
    }
}

impl FromIterator<bool> for SelectionMask {
    fn from_iter<I: IntoIterator<Item = bool>>(iter: I) -> Self {
        Self::from_flags(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn apply_selects_kept_bits() {
        let mask = SelectionMask::from_flags([true, false, true, true]);
        assert_eq!(mask.apply(&[1, 0, 1, 0]), vec![1, 1, 0]);
        assert_eq!(mask.kept(), 3);
        assert_eq!(mask.kept_indices(), vec![0, 2, 3]);
    }

    #[test]
    fn keep_all_is_identity() {
        let mask = SelectionMask::keep_all(4);
        assert_eq!(mask.apply(&[1, 0, 1, 1]), vec![1, 0, 1, 1]);
    }

    #[test]
    fn intersect_ands_flags() {
        let a = SelectionMask::from_flags([true, true, false]);
        let b = SelectionMask::from_flags([true, false, false]);
        assert_eq!(
            a.intersect(&b),
            SelectionMask::from_flags([true, false, false])
        );
    }

    #[test]
    fn out_of_range_is_dropped() {
        let mask = SelectionMask::from_flags([true]);
        assert!(mask.is_kept(0));
        assert!(!mask.is_kept(5));
    }

    #[test]
    #[should_panic(expected = "shorter than mask")]
    fn apply_rejects_short_input() {
        let mask = SelectionMask::from_flags([true, true]);
        let _ = mask.apply(&[1]);
    }
}
