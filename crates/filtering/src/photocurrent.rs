//! Photocurrent-amplitude filtering for the photonic PUF.
//!
//! §II-B: "In NEUROPULS, we will use a similar approach, where instead of
//! considering a counting threshold, we will consider a threshold
//! dependent on the amplitude of the photocurrent read at the PD."
//!
//! The photonic PUF's response bits are photocurrent comparisons; the
//! comparison *margin* (ADC-code difference) plays the role of the RO
//! count difference. Bits with small |margin| flip under shot/thermal
//! noise, bits with extreme |margin| tend to be fixed by the public
//! comparison plan's geometry rather than by process variation.

use crate::mask::SelectionMask;
use crate::ro_filter::ThresholdPoint;
use neuropuls_metrics::quality::binary_entropy;
use neuropuls_photonic::process::DieId;
use neuropuls_puf::bits::Challenge;
use neuropuls_puf::photonic::PhotonicPuf;

/// Margin characterization of a photonic PUF population on a fixed
/// challenge set.
#[derive(Debug, Clone)]
pub struct PhotocurrentStudy {
    /// `mean_margin[d][k]` — enrollment mean margin of response bit `k`
    /// (flattened over challenges) on device `d`.
    mean_margin: Vec<Vec<f64>>,
    /// `bits[d][k][r]` — bit value at re-read `r`.
    bits: Vec<Vec<Vec<u8>>>,
}

impl PhotocurrentStudy {
    /// Characterizes `devices` photonic PUFs over `challenges` random
    /// challenges with `reads` re-reads each.
    ///
    /// Devices fan out in parallel on [`neuropuls_rt::pool`]; every die
    /// derives its identity and noise stream from `seed` and its own
    /// index, so the characterization is byte-identical to a serial run.
    ///
    /// # Panics
    ///
    /// Panics on empty parameters.
    pub fn generate(devices: usize, challenges: usize, reads: usize, seed: u64) -> Self {
        assert!(devices > 0 && challenges > 0 && reads > 0, "empty study");
        use neuropuls_rt::rngs::StdRng;
        use neuropuls_rt::SeedableRng;
        let mut rng = StdRng::seed_from_u64(seed);
        let challenge_set: Vec<Challenge> = (0..challenges)
            .map(|_| Challenge::random(64, &mut rng))
            .collect();

        let per_device = neuropuls_rt::pool::par_map((0..devices).collect(), |d| {
            let mut puf = PhotonicPuf::reference(
                DieId(seed.wrapping_add(1000 + d as u64)),
                seed ^ ((d as u64) << 21),
            );
            let mut device_margins: Vec<f64> = Vec::new();
            let mut device_bits: Vec<Vec<u8>> = Vec::new();
            for challenge in &challenge_set {
                let width = puf.config().response_bits;
                let mut sums = vec![0.0; width];
                let mut reads_bits = vec![Vec::with_capacity(reads); width];
                for _ in 0..reads {
                    let (response, margins) = puf
                        .respond_with_margins(challenge)
                        .expect("challenge width fixed at 64");
                    for (k, (&bit, &margin)) in
                        response.bits().iter().zip(margins.iter()).enumerate()
                    {
                        sums[k] += margin;
                        reads_bits[k].push(bit);
                    }
                }
                device_margins.extend(sums.into_iter().map(|s| s / reads as f64));
                device_bits.extend(reads_bits);
            }
            (device_margins, device_bits)
        });
        let mut mean_margin = Vec::with_capacity(devices);
        let mut bits = Vec::with_capacity(devices);
        for (margins, device_bits) in per_device {
            mean_margin.push(margins);
            bits.push(device_bits);
        }
        PhotocurrentStudy { mean_margin, bits }
    }

    /// Number of devices.
    pub fn devices(&self) -> usize {
        self.mean_margin.len()
    }

    /// Number of response-bit positions characterized per device.
    pub fn positions(&self) -> usize {
        self.mean_margin[0].len()
    }

    /// Evaluates the photocurrent threshold filter at one threshold
    /// (ADC-code units).
    pub fn evaluate(&self, threshold: f64) -> ThresholdPoint {
        let devices = self.devices();
        let positions = self.positions();

        let kept: Vec<Vec<bool>> = (0..devices)
            .map(|d| {
                (0..positions)
                    .map(|k| self.mean_margin[d][k].abs() >= threshold)
                    .collect()
            })
            .collect();

        let mut survivors = 0usize;
        let mut reliability_sum = 0.0;
        let mut reliability_count = 0usize;
        for d in 0..devices {
            for k in 0..positions {
                if !kept[d][k] {
                    continue;
                }
                survivors += 1;
                let reads = &self.bits[d][k];
                let ones: usize = reads.iter().map(|&b| b as usize).sum();
                let majority = u8::from(ones * 2 > reads.len());
                let flips = reads.iter().filter(|&&b| b != majority).count();
                reliability_sum += 1.0 - flips as f64 / reads.len() as f64;
                reliability_count += 1;
            }
        }

        // Aliasing entropy across the devices that kept each position
        // (same estimator as the RO study — see `ro_filter`).
        let mut entropy_sum = 0.0;
        let mut entropy_count = 0usize;
        for k in 0..positions {
            let keepers: Vec<usize> = (0..devices).filter(|&d| kept[d][k]).collect();
            if keepers.len() < 2 {
                continue;
            }
            let ones: usize = keepers
                .iter()
                .map(|&d| {
                    let reads = &self.bits[d][k];
                    let one_count: usize = reads.iter().map(|&b| b as usize).sum();
                    usize::from(one_count * 2 > reads.len())
                })
                .sum();
            entropy_sum += binary_entropy(ones as f64 / keepers.len() as f64);
            entropy_count += 1;
        }

        ThresholdPoint {
            threshold,
            reliability: if reliability_count == 0 {
                f64::NAN
            } else {
                reliability_sum / reliability_count as f64
            },
            aliasing_entropy: if entropy_count == 0 {
                f64::NAN
            } else {
                entropy_sum / entropy_count as f64
            },
            surviving_fraction: survivors as f64 / (devices * positions) as f64,
            surviving_crps: survivors,
        }
    }

    /// Full threshold sweep (the pPUF analogue of Fig. 3). Points are
    /// evaluated in parallel; [`Self::evaluate`] is pure, so the curve
    /// is identical at any thread count.
    pub fn threshold_sweep(&self, thresholds: &[f64]) -> Vec<ThresholdPoint> {
        neuropuls_rt::pool::par_map(thresholds.to_vec(), |t| self.evaluate(t))
    }

    /// Enrollment mask of device `d` at a threshold.
    ///
    /// # Panics
    ///
    /// Panics if `device` is out of range.
    pub fn mask_for(&self, device: usize, threshold: f64) -> SelectionMask {
        SelectionMask::from_flags(
            self.mean_margin[device]
                .iter()
                .map(|m| m.abs() >= threshold),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn study() -> PhotocurrentStudy {
        // Small but meaningful: 4 devices × 2 challenges × 64 bits.
        PhotocurrentStudy::generate(4, 2, 7, 2024)
    }

    #[test]
    fn zero_threshold_keeps_all_positions() {
        let s = study();
        let p = s.evaluate(0.0);
        assert_eq!(p.surviving_fraction, 1.0);
        assert_eq!(s.positions(), 128);
    }

    #[test]
    fn filtering_improves_reliability() {
        let s = study();
        let raw = s.evaluate(0.0);
        let filtered = s.evaluate(15.0);
        assert!(
            filtered.reliability >= raw.reliability,
            "raw {} filtered {}",
            raw.reliability,
            filtered.reliability
        );
    }

    #[test]
    fn survivors_shrink_with_threshold() {
        let s = study();
        let sweep = s.threshold_sweep(&[0.0, 5.0, 20.0, 60.0]);
        for pair in sweep.windows(2) {
            assert!(pair[1].surviving_crps <= pair[0].surviving_crps);
        }
    }

    #[test]
    fn mask_is_device_specific() {
        let s = study();
        let a = s.mask_for(0, 10.0);
        let b = s.mask_for(1, 10.0);
        assert_eq!(a.len(), b.len());
        // Different dies have different margins, so the masks should
        // differ somewhere.
        assert_ne!(a, b);
    }
}
