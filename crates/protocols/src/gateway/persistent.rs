//! The persistent driver: long-lived resident slots firing periodic
//! re-attestation epochs, with idle fast-forward between them.

use super::admission::{AdmissionPolicy, AdmissionRequest, ClassId, Fifo};
use super::protocol_label;
use super::report::PersistentReport;
use super::slot::{step_side_core, WakeState};
use crate::error::ProtocolError;
use crate::transport::{Side, Transport};
use crate::wire::{Envelope, ProtocolId, Session};
use neuropuls_rt::codec::FromBytes;
use neuropuls_rt::sched::{TimerId, TimerWheel};
use neuropuls_rt::trace::{Registry, Tracer, Value};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// One epoch's session pair, built by a [`KeepAlive`] controller when a
/// slot's re-attestation timer fires.
pub struct EpochSession<I, R> {
    /// Service discriminator the epoch's envelopes are routed on.
    pub protocol: ProtocolId,
    /// Envelope session id. Must be unique across the whole run: a
    /// stale frame from an earlier epoch must never key-match a live
    /// session, only ever land in the late-frame bin.
    pub id: u64,
    /// The [`Side::A`] endpoint.
    pub initiator: I,
    /// The [`Side::B`] endpoint.
    pub responder: R,
}

/// Terminal state of one keep-alive epoch, handed back to the
/// controller together with its endpoints.
#[derive(Debug)]
pub struct EpochOutcome {
    /// Active ticks to completion, or the failure that ended the epoch.
    pub result: Result<u32, ProtocolError>,
    /// Frames retransmitted across both endpoints this epoch.
    pub retransmits: u32,
    /// Whether the epoch-budget deadline (or the run horizon) forced
    /// this close before the protocol finished.
    pub missed_deadline: bool,
}

impl EpochOutcome {
    /// Whether the epoch's protocol run completed successfully.
    pub fn succeeded(&self) -> bool {
        self.result.is_ok()
    }
}

/// The controller's verdict on a slot after one of its epochs closed.
pub enum SlotVerdict {
    /// Keep the slot resident and fire its next epoch at tick `at`
    /// (clamped into the future by the timer wheel).
    Rearm {
        /// Absolute tick of the next epoch fire.
        at: u64,
    },
    /// Evict the device: the slot never fires again and its residency
    /// ends at the closing tick.
    Evict,
}

/// Lifecycle policy for the resident slots of one persistent gateway
/// run. The controller owns everything long-lived (device identities,
/// CRP checkouts, eviction counters); the gateway owns everything
/// per-epoch (timers, inboxes, wire scheduling). Associated endpoint
/// types let the controller recover its concrete session objects at
/// epoch close — e.g. a `WireVerifier<Verifier>` checked out of a CRP
/// store at fire time and committed back at close.
pub trait KeepAlive {
    /// The [`Side::A`] endpoint type for this controller's epochs.
    type Initiator: Session;
    /// The [`Side::B`] endpoint type for this controller's epochs.
    type Responder: Session;

    /// A slot's re-attestation timer fired at `now`: build the epoch's
    /// session pair, or return `None` to leave the fleet voluntarily
    /// (the slot departs and never fires again).
    fn on_fire(
        &mut self,
        slot: usize,
        epoch: u32,
        now: u64,
    ) -> Option<EpochSession<Self::Initiator, Self::Responder>>;

    /// An epoch closed at `now` (protocol finished, a side failed, the
    /// epoch budget expired, or the run horizon cut it off). The
    /// endpoints are handed back; decide whether the slot re-arms or is
    /// evicted. A `Rearm` verdict after the horizon cutoff is ignored.
    fn on_close(
        &mut self,
        slot: usize,
        epoch: u32,
        now: u64,
        outcome: &EpochOutcome,
        initiator: Self::Initiator,
        responder: Self::Responder,
    ) -> SlotVerdict;

    /// Traffic class of `slot`'s epochs. The admission policy orders
    /// *same-tick* epoch fires by class before they are admitted; the
    /// default leaves every slot in [`ClassId::default`], under which
    /// the stock [`Fifo`] policy admits in slot order exactly like the
    /// pre-policy gateway.
    fn class(&self, slot: usize) -> ClassId {
        let _ = slot;
        ClassId::default()
    }
}

/// Knobs for [`run_persistent_gateway`].
#[derive(Debug, Clone)]
pub struct PersistentConfig {
    /// Last tick processed (the run covers ticks `1..=horizon`). Any
    /// epoch still live at the horizon closes as missed.
    pub horizon: u64,
    /// Ticks an epoch may stay live before its deadline timer
    /// force-closes it as missed (`0` = unbounded).
    pub epoch_budget: u64,
    /// Ordering discipline for same-tick epoch fires. The default
    /// [`Fifo`] admits in ascending slot order, reproducing the
    /// pre-policy gateway byte for byte.
    pub policy: Box<dyn AdmissionPolicy>,
}

impl Default for PersistentConfig {
    fn default() -> Self {
        Self {
            horizon: 4096,
            epoch_budget: 0,
            policy: Box::new(Fifo::new()),
        }
    }
}

/// One live epoch riding a resident slot.
struct LiveEpoch<I, R> {
    protocol: ProtocolId,
    id: u64,
    epoch: u32,
    initiator: I,
    responder: R,
    inbox_a: VecDeque<Vec<u8>>,
    inbox_b: VecDeque<Vec<u8>>,
    wake_a: WakeState,
    wake_b: WakeState,
    started_at: u64,
    deadline: Option<TimerId>,
    /// Set by a failing `Session::step`; success is computed at close.
    result: Option<Result<u32, ProtocolError>>,
}

/// One resident device slot: alive from its first fire until it leaves
/// or is evicted, holding at most one live epoch at a time.
struct KeepSlot<I, R> {
    live: Option<LiveEpoch<I, R>>,
    next_epoch: u32,
    fire: Option<TimerId>,
    joined_at: Option<u64>,
    departed_at: Option<u64>,
}

/// Timer-token kinds for persistent slots: `token = slot * 4 + kind`.
const KIND_WAKE_A: u64 = 0;
const KIND_WAKE_B: u64 = 1;
const KIND_FIRE: u64 = 2;
const KIND_DEADLINE: u64 = 3;

fn keep_token(idx: usize, kind: u64) -> u64 {
    ((idx as u64) << 2) | kind
}

/// Frame-classification counters shared by both route directions.
#[derive(Default)]
struct FrameCounters {
    late: u64,
    unroutable: u64,
    undecodable: u64,
}

/// [`runnable_order`] for persistent slots: a candidate is runnable
/// while its slot holds a live epoch.
///
/// [`runnable_order`]: super::slot::runnable_order
fn keep_runnable_order<I, R>(
    cand: &mut Vec<usize>,
    slots: &[KeepSlot<I, R>],
    position: &[usize],
    len: usize,
    rotation: usize,
) -> Vec<usize> {
    if len == 0 {
        cand.clear();
        return Vec::new();
    }
    let mut keyed: Vec<(usize, usize)> = cand
        .drain(..)
        .filter(|&idx| {
            slots.get(idx).is_some_and(|s| s.live.is_some())
                && position.get(idx).is_some_and(|&p| p != usize::MAX)
        })
        .map(|idx| ((position[idx] + len - rotation) % len, idx))
        .collect();
    keyed.sort_unstable();
    keyed.dedup();
    keyed.into_iter().map(|(_, idx)| idx).collect()
}

/// Drains one transport direction into live-epoch inboxes, classifying
/// everything else: closed-epoch keys are late, never-seen keys are
/// unroutable, undecodable bytes are counted and dropped.
#[expect(
    clippy::too_many_arguments,
    reason = "all per-tick scheduler state is threaded explicitly"
)]
fn route_keepalive<T: Transport, I, R>(
    transport: &mut T,
    side: Side,
    slots: &mut [KeepSlot<I, R>],
    routes: &BTreeMap<(ProtocolId, u64), usize>,
    closed_keys: &BTreeSet<(ProtocolId, u64)>,
    tracer: &mut Tracer,
    tick: u64,
    pending: &mut Vec<usize>,
    counters: &mut FrameCounters,
) {
    while let Some(frame) = transport.recv(side) {
        let Ok(env) = Envelope::from_bytes(&frame) else {
            counters.undecodable += 1;
            continue;
        };
        let key = (env.protocol, env.session);
        match routes.get(&key) {
            Some(&idx) => {
                let Some(live) = slots.get_mut(idx).and_then(|s| s.live.as_mut()) else {
                    counters.unroutable += 1;
                    continue;
                };
                if side == Side::A {
                    live.inbox_a.push_back(frame);
                } else {
                    live.inbox_b.push_back(frame);
                }
                pending.push(idx);
            }
            None if closed_keys.contains(&key) => {
                counters.late += 1;
                if tracer.is_enabled() {
                    tracer.instant(
                        tick,
                        "keepalive.late_frame",
                        vec![
                            ("protocol", Value::from(protocol_label(env.protocol))),
                            ("session", Value::from(env.session)),
                        ],
                    );
                }
            }
            None => {
                counters.unroutable += 1;
                if tracer.is_enabled() {
                    tracer.instant(
                        tick,
                        "keepalive.unroutable",
                        vec![
                            ("protocol", Value::from(protocol_label(env.protocol))),
                            ("session", Value::from(env.session)),
                        ],
                    );
                }
            }
        }
    }
}

/// [`step_wake`] for persistent slots: steps one runnable side of one
/// live epoch through [`step_side_core`], records a step failure on the
/// epoch and carries the side when frames stay queued.
///
/// [`step_wake`]: super::slot::step_wake
#[expect(
    clippy::too_many_arguments,
    reason = "all per-tick scheduler state is threaded explicitly"
)]
fn step_keepalive<T: Transport, I: Session, R: Session>(
    transport: &mut T,
    slots: &mut [KeepSlot<I, R>],
    wheel: &mut TimerWheel,
    idx: usize,
    side: Side,
    tick: u64,
    session_steps: &mut u64,
    carry: &mut Vec<usize>,
    touched: &mut Vec<usize>,
) {
    let Some(slot) = slots.get_mut(idx) else {
        return;
    };
    let Some(live) = slot.live.as_mut() else {
        return;
    };
    if live.result.is_some() {
        return;
    }
    let frame = match side {
        Side::A => live.inbox_a.pop_front(),
        Side::B => live.inbox_b.pop_front(),
    };
    let queued_after = match side {
        Side::A => !live.inbox_a.is_empty(),
        Side::B => !live.inbox_b.is_empty(),
    };
    let kind = match side {
        Side::A => KIND_WAKE_A,
        Side::B => KIND_WAKE_B,
    };
    let (session, wake): (&mut dyn Session, &mut WakeState) = match side {
        Side::A => (&mut live.initiator, &mut live.wake_a),
        Side::B => (&mut live.responder, &mut live.wake_b),
    };
    let out = step_side_core(
        transport,
        session,
        wake,
        frame,
        wheel,
        keep_token(idx, kind),
        side,
        tick,
        session_steps,
    );
    if !out.stepped {
        return;
    }
    touched.push(idx);
    if let Some(e) = out.error {
        live.result = Some(Err(e));
    }
    if live.result.is_none() && queued_after {
        carry.push(idx);
    }
}

/// Drives a fleet of long-lived keep-alive slots over one shared
/// transport. Each slot stays resident across its whole lifetime;
/// periodic re-attestation epochs are armed as timers on the runtime
/// timer wheel and the loop fast-forwards over the idle gaps between
/// epochs (no live session and no carried frames ⇒ jump straight to
/// the next armed deadline). Within an epoch the per-tick cadence is
/// exactly [`run_gateway`]'s: route A → step runnable initiators →
/// route B → step runnable responders → close, with the same
/// tick-rotated fairness (rotation restarts whenever the live set goes
/// from empty to non-empty, so a lone cohort of epochs replays the
/// dense loop's `tick % len` rotation from zero).
///
/// `first_fire[i]` arms slot `i`'s first epoch; ticks start at 1 (a
/// `first_fire` of 0 fires at tick 1). Same-tick fires are ordered by
/// the configured admission policy over the controller's slot classes;
/// the default [`Fifo`] over default classes admits in slot order, so
/// a zero-jitter cohort builds its sessions in exactly the device
/// order a round-by-round sweep would.
///
/// [`run_gateway`]: super::run_gateway
pub fn run_persistent_gateway<T: Transport, K: KeepAlive>(
    transport: &mut T,
    first_fire: &[u64],
    controller: &mut K,
    config: PersistentConfig,
    tracer: &mut Tracer,
    registry: &Registry,
) -> PersistentReport {
    let n = first_fire.len();
    let PersistentConfig {
        horizon,
        epoch_budget,
        mut policy,
    } = config;
    let mut slots: Vec<KeepSlot<K::Initiator, K::Responder>> = (0..n)
        .map(|_| KeepSlot {
            live: None,
            next_epoch: 0,
            fire: None,
            joined_at: None,
            departed_at: None,
        })
        .collect();
    let mut wheel = TimerWheel::new();
    for (i, &at) in first_fire.iter().enumerate() {
        slots[i].fire = Some(wheel.schedule_at(at, keep_token(i, KIND_FIRE)));
    }
    registry.counter("keepalive.slots", n as u64);

    let mut routes: BTreeMap<(ProtocolId, u64), usize> = BTreeMap::new();
    let mut closed_keys: BTreeSet<(ProtocolId, u64)> = BTreeSet::new();
    let mut live_order: Vec<usize> = Vec::new();
    let mut position: Vec<usize> = vec![usize::MAX; n];
    // Rotation epoch base: reset whenever the live set goes from empty
    // to non-empty so an isolated cohort rotates exactly like a dense
    // run started at its fire tick.
    let mut busy_base = 0u64;

    let mut counters = FrameCounters::default();
    let mut fired: Vec<(u64, u64)> = Vec::new();
    let mut carry_a: Vec<usize> = Vec::new();
    let mut carry_b: Vec<usize> = Vec::new();
    let mut touched: Vec<usize> = Vec::new();
    let mut fires: Vec<usize> = Vec::new();
    let mut expired: Vec<usize> = Vec::new();

    let mut joined = 0usize;
    let mut left = 0usize;
    let mut evicted = 0usize;
    let mut epochs_fired = 0u64;
    let mut epochs_completed = 0u64;
    let mut epochs_failed = 0u64;
    let mut epochs_missed = 0u64;
    let mut retransmits = 0u64;
    let mut peak_live = 0usize;
    let mut session_steps = 0u64;
    let mut dense_equiv_steps = 0u64;

    let mut tick = 0u64;
    loop {
        // Pick the next tick anything can happen on. With no live
        // epoch and no carried frames, jump straight to the next armed
        // timer — the idle fast-forward between attestation epochs.
        let idle = live_order.is_empty() && carry_a.is_empty() && carry_b.is_empty();
        let next = if idle {
            match wheel.next_deadline() {
                Some(d) => d,
                // No slot will ever fire again: the fleet has fully
                // departed.
                None => break,
            }
        } else {
            tick + 1
        };
        if next > horizon {
            break;
        }
        tick = next;

        let mut now_a: Vec<usize> = std::mem::take(&mut carry_a);
        let mut now_b: Vec<usize> = std::mem::take(&mut carry_b);

        // Phase 1 — timers: wake fires feed the runnable sets, epoch
        // fires admit new sessions, deadline fires force-close.
        fired.clear();
        wheel.advance_to(tick, &mut fired);
        fires.clear();
        expired.clear();
        for &(_, token) in &fired {
            let idx = (token >> 2) as usize;
            match token & 3 {
                KIND_WAKE_A => now_a.push(idx),
                KIND_WAKE_B => now_b.push(idx),
                KIND_FIRE => fires.push(idx),
                _ => expired.push(idx),
            }
        }
        // The wheel yields same-deadline timers in schedule order —
        // i.e. the close order of the previous epochs. Slot order is
        // the canonical pre-policy baseline, so sort first, then let
        // the admission policy order the same-tick cohort by class
        // (Fifo over default classes reproduces slot order exactly).
        fires.sort_unstable();
        expired.sort_unstable();
        if fires.len() > 1 {
            for &i in &fires {
                policy.push(AdmissionRequest {
                    idx: i,
                    class: controller.class(i),
                    submitted: tick,
                    deadline: None,
                });
            }
            fires.clear();
            while let Some(i) = policy.pop() {
                fires.push(i);
            }
        }

        // Phase 2 — epoch-budget expiries close their epochs as missed
        // before anything steps this tick.
        let mut any_expired = false;
        for &i in &expired {
            let (epoch, outcome, initiator, responder) = {
                let Some(slot) = slots.get_mut(i) else {
                    continue;
                };
                let Some(mut live) = slot.live.take() else {
                    continue;
                };
                live.deadline = None;
                for wake in [&mut live.wake_a, &mut live.wake_b] {
                    if let Some(id) = wake.timer.take() {
                        wheel.cancel(id);
                    }
                }
                routes.remove(&(live.protocol, live.id));
                closed_keys.insert((live.protocol, live.id));
                let r = live.initiator.retransmits() + live.responder.retransmits();
                retransmits += u64::from(r);
                let outcome = EpochOutcome {
                    result: Err(ProtocolError::Timeout { retries: r }),
                    retransmits: r,
                    missed_deadline: true,
                };
                (live.epoch, outcome, live.initiator, live.responder)
            };
            epochs_missed += 1;
            if tracer.is_enabled() {
                tracer.instant(
                    tick,
                    "keepalive.close",
                    vec![
                        ("slot", Value::from(i as u64)),
                        ("epoch", Value::from(u64::from(epoch))),
                        ("ok", Value::from(false)),
                        ("missed", Value::from(true)),
                        ("retransmits", Value::from(outcome.retransmits)),
                    ],
                );
            }
            let verdict = controller.on_close(i, epoch, tick, &outcome, initiator, responder);
            apply_verdict(
                &mut slots[i],
                i,
                verdict,
                tick,
                &mut wheel,
                &mut evicted,
                &mut dense_equiv_steps,
                tracer,
            );
            any_expired = true;
        }
        if any_expired {
            reindex_live(&mut live_order, &slots, &mut position);
        }

        // Phase 3 — epoch fires admit new sessions, mirroring
        // `run_gateway`'s admission: both sides' first wakes derive
        // from `next_wake` at the fire tick itself.
        for &i in &fires {
            let Some(slot) = slots.get(i) else {
                continue;
            };
            if slot.live.is_some() || slot.departed_at.is_some() {
                // A stale fire for a slot that was force-closed and
                // re-armed the same tick cannot happen (re-arms clamp
                // into the future); be safe anyway.
                continue;
            }
            let epoch = slots[i].next_epoch;
            slots[i].next_epoch += 1;
            slots[i].fire = None;
            match controller.on_fire(i, epoch, tick) {
                None => {
                    // Voluntary departure.
                    if slots[i].joined_at.is_none() {
                        slots[i].joined_at = Some(tick);
                        joined += 1;
                    }
                    slots[i].departed_at = Some(tick);
                    left += 1;
                    dense_equiv_steps += resident_dense_steps(&slots[i], tick);
                    if tracer.is_enabled() {
                        tracer.instant(
                            tick,
                            "keepalive.leave",
                            vec![("slot", Value::from(i as u64))],
                        );
                    }
                }
                Some(es) => {
                    if slots[i].joined_at.is_none() {
                        slots[i].joined_at = Some(tick);
                        joined += 1;
                    }
                    epochs_fired += 1;
                    let key = (es.protocol, es.id);
                    if tracer.is_enabled() {
                        tracer.instant(
                            tick,
                            "keepalive.fire",
                            vec![
                                ("slot", Value::from(i as u64)),
                                ("epoch", Value::from(u64::from(epoch))),
                                ("protocol", Value::from(protocol_label(es.protocol))),
                                ("session", Value::from(es.id)),
                            ],
                        );
                    }
                    if routes.contains_key(&key) {
                        // Session-id collision with a live epoch: the
                        // epoch fails instantly instead of hijacking an
                        // open route.
                        epochs_failed += 1;
                        let outcome = EpochOutcome {
                            result: Err(ProtocolError::OutOfOrder(format!(
                                "duplicate keepalive session key {}/{}",
                                protocol_label(key.0),
                                key.1
                            ))),
                            retransmits: 0,
                            missed_deadline: false,
                        };
                        let verdict = controller.on_close(
                            i,
                            epoch,
                            tick,
                            &outcome,
                            es.initiator,
                            es.responder,
                        );
                        apply_verdict(
                            &mut slots[i],
                            i,
                            verdict,
                            tick,
                            &mut wheel,
                            &mut evicted,
                            &mut dense_equiv_steps,
                            tracer,
                        );
                        continue;
                    }
                    routes.insert(key, i);
                    closed_keys.remove(&key);
                    let mut live = LiveEpoch {
                        protocol: es.protocol,
                        id: es.id,
                        epoch,
                        initiator: es.initiator,
                        responder: es.responder,
                        inbox_a: VecDeque::new(),
                        inbox_b: VecDeque::new(),
                        wake_a: WakeState {
                            next_dense_step: tick,
                            ..WakeState::default()
                        },
                        wake_b: WakeState {
                            next_dense_step: tick,
                            ..WakeState::default()
                        },
                        started_at: tick,
                        deadline: None,
                        result: None,
                    };
                    if epoch_budget > 0 {
                        live.deadline = Some(
                            wheel.schedule_at(tick + epoch_budget, keep_token(i, KIND_DEADLINE)),
                        );
                    }
                    for side in [Side::A, Side::B] {
                        let session: &dyn Session = match side {
                            Side::A => &live.initiator,
                            Side::B => &live.responder,
                        };
                        let deadline = session.next_wake().admission_deadline(tick);
                        let kind = match side {
                            Side::A => KIND_WAKE_A,
                            Side::B => KIND_WAKE_B,
                        };
                        let wake = match side {
                            Side::A => &mut live.wake_a,
                            Side::B => &mut live.wake_b,
                        };
                        if deadline == Some(tick) {
                            match side {
                                Side::A => now_a.push(i),
                                Side::B => now_b.push(i),
                            }
                        } else if let Some(d) = deadline {
                            wake.timer = Some(wheel.schedule_at(d, keep_token(i, kind)));
                        }
                    }
                    if live_order.is_empty() {
                        busy_base = tick;
                    }
                    slots[i].live = Some(live);
                    position[i] = live_order.len();
                    live_order.push(i);
                }
            }
        }
        peak_live = peak_live.max(live_order.len());

        // Phases 4/5 — exactly `run_gateway`'s per-tick cadence on the
        // live set, with rotation measured from the cohort's busy base.
        let len = live_order.len();
        let rotation = if len == 0 {
            0
        } else {
            ((tick - busy_base) as usize) % len
        };

        route_keepalive(
            transport,
            Side::A,
            &mut slots,
            &routes,
            &closed_keys,
            tracer,
            tick,
            &mut now_a,
            &mut counters,
        );
        let run_a = keep_runnable_order(&mut now_a, &slots, &position, len, rotation);
        for &idx in &run_a {
            step_keepalive(
                transport,
                &mut slots,
                &mut wheel,
                idx,
                Side::A,
                tick,
                &mut session_steps,
                &mut carry_a,
                &mut touched,
            );
        }

        route_keepalive(
            transport,
            Side::B,
            &mut slots,
            &routes,
            &closed_keys,
            tracer,
            tick,
            &mut now_b,
            &mut counters,
        );
        let run_b = keep_runnable_order(&mut now_b, &slots, &position, len, rotation);
        for &idx in &run_b {
            step_keepalive(
                transport,
                &mut slots,
                &mut wheel,
                idx,
                Side::B,
                tick,
                &mut session_steps,
                &mut carry_b,
                &mut touched,
            );
        }

        // Phase 6 — close finished and failed epochs in rotation order,
        // mirroring the dense loop's close emission order.
        touched.sort_unstable_by_key(|&idx| (position[idx] + len - rotation) % len);
        touched.dedup();
        let mut any_closed = false;
        for &i in &touched {
            let closing = {
                let Some(live) = slots.get(i).and_then(|s| s.live.as_ref()) else {
                    continue;
                };
                live.result.is_some() || (live.initiator.done() && live.responder.done())
            };
            if !closing {
                continue;
            }
            let (epoch, outcome, initiator, responder) = {
                let slot = &mut slots[i];
                let Some(mut live) = slot.live.take() else {
                    continue;
                };
                for wake in [&mut live.wake_a, &mut live.wake_b] {
                    if let Some(id) = wake.timer.take() {
                        wheel.cancel(id);
                    }
                }
                if let Some(id) = live.deadline.take() {
                    wheel.cancel(id);
                }
                routes.remove(&(live.protocol, live.id));
                closed_keys.insert((live.protocol, live.id));
                let r = live.initiator.retransmits() + live.responder.retransmits();
                retransmits += u64::from(r);
                let result = match live.result.take() {
                    Some(res) => res,
                    None => Ok((tick - live.started_at + 1) as u32),
                };
                let outcome = EpochOutcome {
                    result,
                    retransmits: r,
                    missed_deadline: false,
                };
                (live.epoch, outcome, live.initiator, live.responder)
            };
            match &outcome.result {
                Ok(t) => {
                    epochs_completed += 1;
                    registry.observe("keepalive.epoch_ticks", f64::from(*t));
                }
                Err(_) => epochs_failed += 1,
            }
            if tracer.is_enabled() {
                tracer.instant(
                    tick,
                    "keepalive.close",
                    vec![
                        ("slot", Value::from(i as u64)),
                        ("epoch", Value::from(u64::from(epoch))),
                        ("ok", Value::from(outcome.succeeded())),
                        ("missed", Value::from(false)),
                        ("retransmits", Value::from(outcome.retransmits)),
                    ],
                );
            }
            let verdict = controller.on_close(i, epoch, tick, &outcome, initiator, responder);
            apply_verdict(
                &mut slots[i],
                i,
                verdict,
                tick,
                &mut wheel,
                &mut evicted,
                &mut dense_equiv_steps,
                tracer,
            );
            any_closed = true;
        }
        touched.clear();
        if any_closed {
            reindex_live(&mut live_order, &slots, &mut position);
        }
    }

    // Horizon cutoff: epochs still live close as missed so the
    // controller always gets its endpoints back (e.g. to commit CRP
    // checkouts). Rearm verdicts are moot — the run is over.
    for (i, slot) in slots.iter_mut().enumerate() {
        let Some(live) = slot.live.take() else {
            continue;
        };
        let r = live.initiator.retransmits() + live.responder.retransmits();
        retransmits += u64::from(r);
        routes.remove(&(live.protocol, live.id));
        closed_keys.insert((live.protocol, live.id));
        epochs_missed += 1;
        let outcome = EpochOutcome {
            result: Err(ProtocolError::Timeout { retries: r }),
            retransmits: r,
            missed_deadline: true,
        };
        if tracer.is_enabled() {
            tracer.instant(
                tick,
                "keepalive.close",
                vec![
                    ("slot", Value::from(i as u64)),
                    ("epoch", Value::from(u64::from(live.epoch))),
                    ("ok", Value::from(false)),
                    ("missed", Value::from(true)),
                    ("retransmits", Value::from(outcome.retransmits)),
                ],
            );
        }
        let verdict = controller.on_close(
            i,
            live.epoch,
            tick,
            &outcome,
            live.initiator,
            live.responder,
        );
        if matches!(verdict, SlotVerdict::Evict) {
            slot.departed_at = Some(tick);
            evicted += 1;
        }
    }
    // Residency accounting for every slot still resident at the end.
    for slot in &slots {
        if slot.departed_at.is_none() {
            dense_equiv_steps += resident_dense_steps(slot, tick);
        }
    }

    registry.counter("keepalive.epochs_fired", epochs_fired);
    registry.counter("keepalive.epochs_completed", epochs_completed);
    registry.counter("keepalive.epochs_failed", epochs_failed);
    registry.counter("keepalive.epochs_missed", epochs_missed);
    registry.counter("keepalive.left", left as u64);
    registry.counter("keepalive.evicted", evicted as u64);
    registry.counter("keepalive.retransmits", retransmits);
    registry.counter("keepalive.late_frames", counters.late);
    registry.counter("keepalive.unroutable_frames", counters.unroutable);
    registry.counter("keepalive.undecodable_frames", counters.undecodable);
    registry.counter("keepalive.session_steps", session_steps);
    registry.counter("keepalive.dense_equiv_steps", dense_equiv_steps);

    let report = PersistentReport {
        slots: n,
        joined,
        left,
        evicted,
        ticks: tick,
        epochs_fired,
        epochs_completed,
        epochs_failed,
        epochs_missed,
        retransmits,
        late_frames: counters.late,
        unroutable_frames: counters.unroutable,
        undecodable_frames: counters.undecodable,
        peak_live,
        session_steps,
        dense_equiv_steps,
    };
    if tracer.is_enabled() {
        tracer.instant(
            tick,
            "keepalive.result",
            vec![
                ("slots", Value::from(report.slots)),
                ("joined", Value::from(report.joined)),
                ("left", Value::from(report.left)),
                ("evicted", Value::from(report.evicted)),
                ("epochs_fired", Value::from(report.epochs_fired)),
                ("epochs_completed", Value::from(report.epochs_completed)),
                ("epochs_missed", Value::from(report.epochs_missed)),
                ("session_steps", Value::from(report.session_steps)),
            ],
        );
    }
    report
}

/// Applies a controller verdict to a slot whose epoch just closed.
#[expect(
    clippy::too_many_arguments,
    reason = "verdict application touches scheduler, accounting, and trace state"
)]
fn apply_verdict<I, R>(
    slot: &mut KeepSlot<I, R>,
    idx: usize,
    verdict: SlotVerdict,
    tick: u64,
    wheel: &mut TimerWheel,
    evicted: &mut usize,
    dense_equiv_steps: &mut u64,
    tracer: &mut Tracer,
) {
    match verdict {
        SlotVerdict::Rearm { at } => {
            slot.fire = Some(wheel.schedule_at(at, keep_token(idx, KIND_FIRE)));
        }
        SlotVerdict::Evict => {
            slot.departed_at = Some(tick);
            *evicted += 1;
            *dense_equiv_steps += resident_dense_steps(slot, tick);
            if tracer.is_enabled() {
                tracer.instant(
                    tick,
                    "keepalive.evict",
                    vec![("slot", Value::from(idx as u64))],
                );
            }
        }
    }
}

/// Steps the dense no-timer counterfactual would have spent keeping
/// this slot resident: two polls (one per side) on every tick from the
/// slot's join to `end`, inclusive.
fn resident_dense_steps<I, R>(slot: &KeepSlot<I, R>, end: u64) -> u64 {
    match slot.joined_at {
        Some(j) => 2 * (end.saturating_sub(j) + 1),
        None => 0,
    }
}

/// Rebuilds the live-order vector and position index after closes
/// removed slots from the live set.
fn reindex_live<I, R>(
    live_order: &mut Vec<usize>,
    slots: &[KeepSlot<I, R>],
    position: &mut [usize],
) {
    live_order.retain(|&idx| {
        let keep = slots.get(idx).is_some_and(|s| s.live.is_some());
        if !keep {
            position[idx] = usize::MAX;
        }
        keep
    });
    for (pos, &idx) in live_order.iter().enumerate() {
        position[idx] = pos;
    }
}
