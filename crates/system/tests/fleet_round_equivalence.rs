//! Differential oracle for the persistent fleet (ISSUE 9 tentpole):
//! a zero-jitter persistent run's per-epoch attestation outcomes must
//! be **byte-identical** to an equivalent sequence of round-by-round
//! gateway sweeps over the same seeded lossy link — at any
//! `NEUROPULS_THREADS`.
//!
//! The reference sweep reimplements `run_fleet`'s control-link recipe
//! verbatim (die ids, memory pattern, provision seeds, session-id
//! schedule, link-seed derivation, inter-round drain) on top of the
//! plain [`run_gateway`] driver, so the two drivers share *no*
//! scheduling code: the dense round loop and the timer-wheel keep-alive
//! loop arrive at the same frames, the same retransmit spend, and the
//! same per-epoch verdicts independently.

use neuropuls_photonic::process::DieId;
use neuropuls_protocols::gateway::{run_gateway, GatewayConfig, SessionPair};
use neuropuls_protocols::mutual_auth::{Device, Verifier, WireDevice, WireVerifier};
use neuropuls_protocols::transport::{FaultRates, FaultyChannel};
use neuropuls_protocols::wire::{ProtocolId, SessionConfig};
use neuropuls_puf::photonic::PhotonicPuf;
use neuropuls_rt::pool::with_threads;
use neuropuls_rt::prelude::*;
use neuropuls_rt::trace::{Registry, Tracer};
use neuropuls_system::fleet::{
    run_fleet, run_fleet_persistent, EpochRecord, FleetConfig, PersistentFleetConfig,
};

/// The persistent-fleet configuration the oracle compares: zero jitter
/// (aligned cohorts), unbounded epoch budget, no eviction — the shape
/// in which "persistent sessions" and "a sweep per round" describe the
/// same protocol work.
fn oracle_config(devices: usize, epochs: u32, loss: f64, seed: u64) -> PersistentFleetConfig {
    let period = 512u64;
    PersistentFleetConfig {
        devices,
        reattest_period: period,
        jitter: 0,
        epochs_per_device: epochs,
        epoch_budget: 0,
        max_consecutive_failures: 0,
        corrupted_devices: 0,
        loss_rate: loss,
        seed,
        crp_shards: 4,
        crp_hot_capacity: 4,
        horizon: period * (u64::from(epochs) + 2) + 4096,
        // max_retries must match the round-by-round sweep's
        // SessionConfig::default() for byte-identity.
        ..PersistentFleetConfig::default()
    }
}

/// Round-by-round reference: provisions the fleet exactly like
/// `run_fleet`'s control-link phase and runs one dense [`run_gateway`]
/// sweep per epoch over one shared link, draining stragglers between
/// rounds. Returns per-epoch records shaped like
/// [`PersistentFleetReport::records`].
fn round_by_round_records(devices: usize, epochs: u32, loss: f64, seed: u64) -> Vec<EpochRecord> {
    let cfg = SessionConfig::default();
    let mut devs: Vec<Device<PhotonicPuf>> = Vec::new();
    let mut vers: Vec<Verifier> = Vec::new();
    for i in 0..devices {
        let die = DieId(0xF1_A000 + i as u64);
        let memory: Vec<u8> = (0..256).map(|b| (b * 17 % 249) as u8).collect();
        let (device, provisioned) =
            Device::provision(PhotonicPuf::reference(die, 1), memory, b"fleet-auth")
                .expect("reference PUF provisions");
        devs.push(device);
        vers.push(Verifier::new(provisioned, b"fleet-auth-verifier"));
    }
    let mut link = FaultyChannel::new(FaultRates::loss(loss), seed ^ 0xA117_0000_0000_0000);
    let gateway_cfg = GatewayConfig {
        max_active: 64,
        accept_queue: 16,
        max_ticks: 4096.max(devices as u64 * 64),
        ..GatewayConfig::default()
    };
    let mut records = Vec::new();
    for round in 0..epochs {
        let mut sessions: Vec<SessionPair<'_>> = Vec::new();
        for (i, (device, verifier)) in devs.iter_mut().zip(vers.iter_mut()).enumerate() {
            let sid = u64::from(round) * devices as u64 + i as u64 + 1;
            sessions.push(SessionPair::new(
                ProtocolId::MutualAuth,
                sid,
                Box::new(WireVerifier::new(&mut *verifier, sid, cfg)),
                Box::new(WireDevice::new(&mut *device, cfg)),
            ));
        }
        let gw = run_gateway(
            &mut link,
            sessions,
            gateway_cfg.clone(),
            &mut Tracer::disabled(),
            &Registry::new(),
        );
        link.drain_late();
        for (i, out) in gw.outcomes.iter().enumerate() {
            records.push(EpochRecord {
                device: i,
                epoch: round,
                ok: out.result.is_ok(),
                ticks: *out.result.as_ref().unwrap_or(&0),
                retransmits: out.retransmits,
                missed: false,
                error: out.result.as_ref().err().map(|e| format!("{e:?}")),
            });
        }
    }
    records.sort_unstable_by_key(|r| (r.device, r.epoch));
    records
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]
    /// The tentpole property: persistent per-epoch outcomes ==
    /// round-by-round sweep outcomes, byte for byte, at 1 and at 8
    /// worker threads.
    #[test]
    fn persistent_epochs_match_round_by_round_sweeps_at_any_thread_count(
        devices in 1usize..10,
        epochs in 1u32..4,
        loss_step in 0u32..3,
        seed in 0u64..0x0010_0000_0000,
    ) {
        let loss = f64::from(loss_step) * 0.1;
        let expected = round_by_round_records(devices, epochs, loss, seed);
        for threads in [1usize, 8] {
            let report = with_threads(threads, || {
                run_fleet_persistent(
                    &oracle_config(devices, epochs, loss, seed),
                    &mut Tracer::disabled(),
                    &Registry::new(),
                )
            });
            prop_assert_eq!(report.epochs_fired, devices as u64 * u64::from(epochs));
            prop_assert!(report.epochs_conserved(), "lost epochs: {report:?}");
            prop_assert!(
                report.records == expected,
                "threads={threads}: {:?} != {:?}",
                report.records,
                expected
            );
        }
    }
}

/// A pinned non-property instance of the oracle, kept cheap enough for
/// every CI run even if the property above is ever scaled down.
#[test]
fn pinned_oracle_case_is_byte_identical_at_1_and_8_threads() {
    let (devices, epochs, loss, seed) = (7usize, 3u32, 0.1, 0x0E0C_AB1E_u64);
    let expected = round_by_round_records(devices, epochs, loss, seed);
    assert!(
        expected.iter().filter(|r| r.ok).count() > 0,
        "oracle case must exercise successful epochs"
    );
    let one = with_threads(1, || {
        run_fleet_persistent(
            &oracle_config(devices, epochs, loss, seed),
            &mut Tracer::disabled(),
            &Registry::new(),
        )
    });
    let eight = with_threads(8, || {
        run_fleet_persistent(
            &oracle_config(devices, epochs, loss, seed),
            &mut Tracer::disabled(),
            &Registry::new(),
        )
    });
    assert_eq!(one.records, expected);
    assert_eq!(eight.records, expected);
    assert_eq!(one.retransmits, eight.retransmits);
    assert_eq!(one.session_steps, eight.session_steps);
}

/// The aggregates of the persistent run agree with the *real*
/// round-by-round driver (`run_fleet`'s control-link phase), guarding
/// the reference reimplementation above against drift from the real
/// recipe.
#[test]
fn persistent_aggregates_match_real_run_fleet_at_both_thread_counts() {
    let seed = 0x005E_ED0F_1EE7_u64;
    let fleet_config = FleetConfig {
        devices: 6,
        auth_sessions: 2,
        auth_loss_rate: 0.1,
        seed,
        ..FleetConfig::default()
    };
    let rounds = run_fleet(&fleet_config, &mut Tracer::disabled(), &Registry::new());
    for threads in [1usize, 8] {
        let persistent = with_threads(threads, || {
            run_fleet_persistent(
                &oracle_config(6, 2, 0.1, seed),
                &mut Tracer::disabled(),
                &Registry::new(),
            )
        });
        assert_eq!(persistent.epochs_fired as usize, rounds.auth_attempted);
        assert_eq!(persistent.epochs_completed as usize, rounds.auth_completed);
        assert_eq!(persistent.retransmits, rounds.auth_retransmits);
        assert_eq!(persistent.desync_recoveries, rounds.auth_desync_recoveries);
    }
}
