//! Regenerates the §V system-level stats (E9).
use neuropuls_bench::{experiments, Scale};

fn main() {
    let scale = Scale::from_args();
    let (out, _) = experiments::system::run(scale);
    print!("{out}");
}
