//! E22 — event-driven scheduler idle-scaling: hundreds to thousands of
//! mutual-authentication sessions multiplexed through the wake-based
//! gateway, each spending most of its lifetime silent on a long ARQ
//! timer. The gateway reports both the [`Session::step`] calls it
//! actually made (`session_steps`) and the calls the old dense
//! every-session-every-tick loop would have made for the same run
//! (`dense_equiv_steps`); their ratio is the scheduler's work saving,
//! and the acceptance cell asserts it is >= 5x at 1024 mostly-idle
//! sessions. Every cell is an independent seeded run, so the sweep
//! fans out on the pool with byte-identical output at any thread
//! count.
//!
//! [`Session::step`]: neuropuls_protocols::wire::Session::step

use crate::{Rendered, Scale};
use neuropuls_photonic::process::DieId;
use neuropuls_protocols::gateway::{run_gateway, GatewayConfig, SessionPair};
use neuropuls_protocols::mutual_auth::{
    Device as AuthDevice, Verifier as AuthVerifier, WireDevice, WireVerifier,
};
use neuropuls_protocols::transport::{FaultRates, FaultyChannel};
use neuropuls_protocols::wire::{ProtocolId, SessionConfig};
use neuropuls_puf::photonic::PhotonicPuf;
use neuropuls_rt::trace::{Registry, Tracer};

/// The mostly-idle regime: the gateway's route-step-route-step tick
/// gives a healthy session a full round trip per tick, so the only
/// silence in its lifetime is the ARQ timeout window after a dropped
/// frame — during which *both* sides sit idle while staying active.
/// A long timeout makes that window dominate the session's lifetime.
/// The dense loop pays one step per side per silent tick; the wake
/// loop pays none.
const IDLE_TIMEOUT_TICKS: u32 = 32;

/// The acceptance cell's session count (ISSUE gate: >= 5x fewer step
/// calls at 1024 mostly-idle sessions).
const ACCEPTANCE_SESSIONS: usize = 1024;

/// The acceptance cell's frame-drop rate.
const ACCEPTANCE_LOSS: f64 = 0.25;

/// One sweep cell: a concurrent-session count and a link quality.
#[derive(Debug, Clone, Copy)]
struct Cell {
    /// Sessions multiplexed through the gateway, all active at once.
    sessions: usize,
    /// Frame-drop probability of the shared link.
    loss: f64,
}

/// Deterministic outcome of one cell.
#[derive(Debug, Clone, Copy)]
struct CellResult {
    cell: Cell,
    completed: usize,
    failed: usize,
    ticks: u64,
    retransmits: u64,
    /// `Session::step` calls the wake-based scheduler made.
    session_steps: u64,
    /// `Session::step` calls the dense loop would have made.
    dense_equiv_steps: u64,
}

impl CellResult {
    /// Dense-loop step calls per wake-scheduler step call.
    fn saving(&self) -> f64 {
        self.dense_equiv_steps as f64 / (self.session_steps.max(1)) as f64
    }
}

/// Runs `cell`: provisions one device+verifier pair per session, puts
/// every pair on the gateway at once (admission and concurrency caps
/// sized to the fleet) over one shared lossy link, and reads the step
/// accounting off the report.
fn run_cell(cell: Cell) -> CellResult {
    let idle_cfg = SessionConfig {
        timeout_ticks: IDLE_TIMEOUT_TICKS,
        max_retries: 10,
    };
    let mut parties: Vec<(AuthDevice<PhotonicPuf>, AuthVerifier)> = Vec::new();
    for i in 0..cell.sessions as u64 {
        let die = DieId(0xE22_0000 + i);
        let memory: Vec<u8> = (0..128).map(|b| (b * 31 % 239) as u8).collect();
        let Ok((device, provisioned)) = AuthDevice::provision(
            PhotonicPuf::reference(die, 1),
            memory,
            format!("e22-prov-{i}").as_bytes(),
        ) else {
            continue;
        };
        let verifier = AuthVerifier::new(provisioned, format!("e22-verif-{i}").as_bytes());
        parties.push((device, verifier));
    }

    let mut sessions: Vec<SessionPair<'_>> = Vec::new();
    for (i, (device, verifier)) in parties.iter_mut().enumerate() {
        let sid = i as u64 + 1;
        sessions.push(SessionPair::new(
            ProtocolId::MutualAuth,
            sid,
            Box::new(WireVerifier::new(verifier, sid, idle_cfg)),
            Box::new(WireDevice::new(device, idle_cfg)),
        ));
    }

    let seed = 0xE22_u64 ^ ((cell.sessions as u64) << 24) ^ (cell.loss * 1000.0) as u64;
    let mut link = FaultyChannel::new(FaultRates::loss(cell.loss), seed);
    // The point of the sweep is idle *concurrency*: every session is
    // admitted and active simultaneously, so the dense loop would step
    // the whole fleet every tick.
    let gateway_cfg = GatewayConfig {
        max_active: cell.sessions,
        accept_queue: cell.sessions.max(1),
        max_ticks: 16_384,
        ..GatewayConfig::default()
    };
    let report = run_gateway(
        &mut link,
        sessions,
        gateway_cfg,
        &mut Tracer::disabled(),
        &Registry::new(),
    );
    CellResult {
        cell,
        completed: report.completed,
        failed: report.failed + report.unfinished,
        ticks: report.ticks,
        retransmits: report.retransmits,
        session_steps: report.session_steps,
        dense_equiv_steps: report.dense_equiv_steps,
    }
}

fn render_table(out: &mut Rendered, results: &[CellResult]) {
    out.push(format!(
        "{:>9} {:>6} {:>11} {:>7} {:>11} {:>11} {:>12} {:>8}",
        "sessions",
        "loss",
        "completed",
        "ticks",
        "retransmits",
        "wake steps",
        "dense steps",
        "saving"
    ));
    for r in results {
        out.push(format!(
            "{:>9} {:>5.0}% {:>5}/{:<5} {:>7} {:>11} {:>11} {:>12} {:>7.1}x",
            r.cell.sessions,
            r.cell.loss * 100.0,
            r.completed,
            r.completed + r.failed,
            r.ticks,
            r.retransmits,
            r.session_steps,
            r.dense_equiv_steps,
            r.saving(),
        ));
    }
}

/// Per-cell summary row for the smoke assertions and the bench
/// report: `(sessions, loss, session_steps, dense_equiv_steps,
/// completed, attempted)`.
pub type CellSummary = (usize, f64, u64, u64, usize, usize);

/// Step-saving ratio of the acceptance cell (1024 sessions at the
/// acceptance loss rate), if the sweep carried it.
pub fn acceptance_saving(summary: &[CellSummary]) -> Option<f64> {
    summary
        .iter()
        .find(|&&(sessions, loss, ..)| {
            sessions == ACCEPTANCE_SESSIONS && (loss - ACCEPTANCE_LOSS).abs() < 1e-9
        })
        .map(|&(_, _, steps, dense, _, _)| dense as f64 / steps.max(1) as f64)
}

/// Runs the session-count x loss sweep and renders one table per loss
/// rate. Both scales carry the 1024-session acceptance cell.
pub fn run(scale: Scale) -> (Rendered, Vec<CellSummary>) {
    let session_sweep: Vec<usize> = scale.pick(
        vec![256, ACCEPTANCE_SESSIONS],
        vec![256, 512, ACCEPTANCE_SESSIONS, 2048],
    );
    let loss_sweep: Vec<f64> = vec![0.0, 0.10, ACCEPTANCE_LOSS];

    let mut cells: Vec<Cell> = Vec::new();
    for &loss in &loss_sweep {
        for &sessions in &session_sweep {
            cells.push(Cell { sessions, loss });
        }
    }

    let results: Vec<CellResult> = neuropuls_rt::pool::par_map(cells, run_cell);

    let mut out = Rendered::new("E22 — event-driven scheduler idle-scaling");
    out.push(format!(
        "session-count sweep, timeout {IDLE_TIMEOUT_TICKS} ticks (mostly-idle ARQ regime), \
         whole fleet active at once:"
    ));
    for (li, &loss) in loss_sweep.iter().enumerate() {
        out.push(String::new());
        out.push(format!("frame-drop rate {:.0}%:", loss * 100.0));
        let part = &results[li * session_sweep.len()..(li + 1) * session_sweep.len()];
        render_table(&mut out, part);
    }
    out.push(String::new());
    out.push(
        "the dense loop steps every active session every tick; the wake scheduler \
         steps only slots with a frame in the inbox or an expired retransmit timer, \
         so the saving grows with the silent fraction of each session's lifetime"
            .to_string(),
    );

    let summary = results
        .iter()
        .map(|r| {
            (
                r.cell.sessions,
                r.cell.loss,
                r.session_steps,
                r.dense_equiv_steps,
                r.completed,
                r.completed + r.failed,
            )
        })
        .collect();
    (out, summary)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_sched_scaling_sweep() {
        let (rendered, summary) = run(Scale::Smoke);
        assert!(!summary.is_empty());
        for &(sessions, loss, steps, dense, completed, attempted) in &summary {
            assert_eq!(attempted, sessions, "every pair reaches the gateway");
            assert!(steps > 0, "sessions actually ran");
            if loss == 0.0 {
                // A healthy session gets a full round trip per tick, so
                // a lossless run has no silence for the wake loop to
                // skip: the two accountings must agree exactly.
                assert_eq!(steps, dense, "no silence to skip without loss");
                assert_eq!(completed, attempted, "lossless runs all complete");
            } else {
                assert!(dense > steps, "ARQ timeout windows must save work");
            }
        }
        let saving = acceptance_saving(&summary).expect("sweep carries the 1024-session cell");
        assert!(
            saving >= 5.0,
            "acceptance gate: >= 5x fewer step calls at {ACCEPTANCE_SESSIONS} mostly-idle \
             sessions, measured {saving:.2}x"
        );
        // The output is deterministic: a second run renders identically.
        let (again, _) = run(Scale::Smoke);
        assert_eq!(rendered.stable_string(), again.stable_string());
    }
}
