//! Regenerates the §III-B attestation sweep (E5).
use neuropuls_bench::{experiments, Scale};

fn main() {
    let scale = Scale::from_args();
    let (out, _, _) = experiments::attestation::run(scale);
    print!("{out}");
}
