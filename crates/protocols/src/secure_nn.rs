//! Secure neural-network configuration and data encryption — Table I of
//! the paper (§III-C).
//!
//! Two hardware functions are exposed to software:
//!
//! | function          | parameters         | results           |
//! |-------------------|--------------------|-------------------|
//! | `load_network`    | `ciphered_network` |                   |
//! | `execute_network` | `ciphered_input`   | `ciphered_output` |
//!
//! "Data are never exposed in plaintext to the software": decryption
//! happens inside [`SecureAccelerator`] (the hardware boundary), plaintext
//! lives only in its private fields for the duration of the call, and
//! every value crossing the API is a ciphertext. The device key comes
//! from the weak PUF (see [`crate::keys`]) and is likewise never visible
//! to software.
//!
//! Wire format of every encrypted blob (encrypt-then-MAC):
//! `nonce (12 B) ‖ ciphertext ‖ HMAC-SHA-256 tag (32 B)`, with the MAC
//! keyed by a key derived from the device key and a direction label.

use crate::error::ProtocolError;
use neuropuls_accel::config::NetworkConfig;
use neuropuls_accel::engine::{EngineStats, PhotonicEngine};
use neuropuls_crypto::chacha20::{ChaCha20, NONCE_LEN};
use neuropuls_crypto::hkdf;
use neuropuls_crypto::hmac::{HmacSha256, TAG_LEN};
use neuropuls_crypto::prng::CsPrng;
use neuropuls_rt::RngCore;

fn subkeys(device_key: &[u8; 32], label: &[u8]) -> ([u8; 32], [u8; 32]) {
    let mut enc = [0u8; 32];
    let mut mac = [0u8; 32];
    hkdf::derive(b"neuropuls/secure-nn", device_key, &[label, b"/enc"].concat(), &mut enc)
        .expect("32-byte HKDF output is valid");
    hkdf::derive(b"neuropuls/secure-nn", device_key, &[label, b"/mac"].concat(), &mut mac)
        .expect("32-byte HKDF output is valid");
    (enc, mac)
}

/// Seals `plaintext` under `device_key` with a direction `label`.
fn seal(device_key: &[u8; 32], label: &[u8], plaintext: &[u8], rng: &mut CsPrng) -> Vec<u8> {
    let (enc_key, mac_key) = subkeys(device_key, label);
    let mut nonce = [0u8; NONCE_LEN];
    rng.fill_bytes(&mut nonce);
    let mut body = plaintext.to_vec();
    ChaCha20::new(&enc_key, &nonce).apply(&mut body);
    let mut out = Vec::with_capacity(NONCE_LEN + body.len() + TAG_LEN);
    out.extend_from_slice(&nonce);
    out.extend_from_slice(&body);
    let tag = HmacSha256::mac(&mac_key, &out);
    out.extend_from_slice(&tag);
    out
}

/// Opens a sealed blob.
fn open(device_key: &[u8; 32], label: &[u8], blob: &[u8]) -> Result<Vec<u8>, ProtocolError> {
    if blob.len() < NONCE_LEN + TAG_LEN {
        return Err(ProtocolError::MalformedCiphertext(format!(
            "blob of {} bytes is shorter than nonce+tag",
            blob.len()
        )));
    }
    let (enc_key, mac_key) = subkeys(device_key, label);
    let (body, tag) = blob.split_at(blob.len() - TAG_LEN);
    HmacSha256::verify(&mac_key, body, tag)
        .map_err(|_| ProtocolError::AuthenticationFailed("ciphertext tag invalid".into()))?;
    let nonce: [u8; NONCE_LEN] = body[..NONCE_LEN].try_into().expect("length checked");
    let mut plaintext = body[NONCE_LEN..].to_vec();
    ChaCha20::new(&enc_key, &nonce).apply(&mut plaintext);
    Ok(plaintext)
}

fn encode_values(values: &[f64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + values.len() * 4);
    out.extend_from_slice(&(values.len() as u32).to_le_bytes());
    for &v in values {
        out.extend_from_slice(&(v as f32).to_le_bytes());
    }
    out
}

fn decode_values(bytes: &[u8]) -> Result<Vec<f64>, ProtocolError> {
    if bytes.len() < 4 {
        return Err(ProtocolError::MalformedCiphertext("tensor header missing".into()));
    }
    let count = u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]) as usize;
    if bytes.len() != 4 + count * 4 {
        return Err(ProtocolError::MalformedCiphertext(format!(
            "tensor of {count} values does not match {} payload bytes",
            bytes.len() - 4
        )));
    }
    Ok(bytes[4..]
        .chunks_exact(4)
        .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]) as f64)
        .collect())
}

const LABEL_NETWORK: &[u8] = b"network";
const LABEL_INPUT: &[u8] = b"input";
const LABEL_OUTPUT: &[u8] = b"output";

/// The external party (NN owner) that prepares ciphered payloads and
/// reads ciphered outputs. Shares the device key through the enrollment
/// channel.
#[derive(Debug)]
pub struct NetworkOwner {
    key: [u8; 32],
    rng: CsPrng,
}

impl NetworkOwner {
    /// Creates the owner-side endpoint.
    pub fn new(device_key: [u8; 32], rng_seed: &[u8]) -> Self {
        NetworkOwner {
            key: device_key,
            rng: CsPrng::from_seed_bytes(rng_seed),
        }
    }

    /// Encrypts a network configuration for `load_network`.
    pub fn cipher_network(&mut self, config: &NetworkConfig) -> Vec<u8> {
        seal(&self.key, LABEL_NETWORK, &config.to_bytes(), &mut self.rng)
    }

    /// Encrypts an input tensor for `execute_network`.
    pub fn cipher_input(&mut self, input: &[f64]) -> Vec<u8> {
        seal(&self.key, LABEL_INPUT, &encode_values(input), &mut self.rng)
    }

    /// Decrypts a ciphered output.
    ///
    /// # Errors
    ///
    /// Fails on tampered or malformed blobs.
    pub fn decipher_output(&self, ciphered: &[u8]) -> Result<Vec<f64>, ProtocolError> {
        decode_values(&open(&self.key, LABEL_OUTPUT, ciphered)?)
    }
}

/// The hardware boundary: accelerator plus the PUF-derived key. The two
/// public methods are exactly Table I.
#[derive(Debug)]
pub struct SecureAccelerator {
    engine: PhotonicEngine,
    key: [u8; 32],
    rng: CsPrng,
}

impl SecureAccelerator {
    /// Builds the secure accelerator around an engine and the device key
    /// reproduced from the weak PUF.
    pub fn new(engine: PhotonicEngine, device_key: [u8; 32]) -> Self {
        let rng = CsPrng::from_seed_bytes(&device_key);
        SecureAccelerator {
            engine,
            key: device_key,
            rng,
        }
    }

    /// `load_network(ciphered_network)` — decrypts in hardware and
    /// programs the accelerator. No plaintext result is returned.
    ///
    /// # Errors
    ///
    /// Authentication/parse failures, or engine load errors.
    pub fn load_network(&mut self, ciphered_network: &[u8]) -> Result<(), ProtocolError> {
        let plaintext = open(&self.key, LABEL_NETWORK, ciphered_network)?;
        let config = NetworkConfig::from_bytes(&plaintext)
            .map_err(|e| ProtocolError::MalformedCiphertext(e.to_string()))?;
        self.engine
            .load(config)
            .map_err(|e| ProtocolError::MalformedCiphertext(e.to_string()))
        // `plaintext` drops here: the decrypted configuration never
        // leaves the hardware boundary.
    }

    /// `execute_network(ciphered_input) -> ciphered_output` — decrypts
    /// the input, runs inference, re-encrypts the result.
    ///
    /// # Errors
    ///
    /// Authentication/parse failures, or engine inference errors.
    pub fn execute_network(&mut self, ciphered_input: &[u8]) -> Result<Vec<u8>, ProtocolError> {
        let plaintext = open(&self.key, LABEL_INPUT, ciphered_input)?;
        let input = decode_values(&plaintext)?;
        let output = self
            .engine
            .infer(&input)
            .map_err(|e| ProtocolError::MalformedCiphertext(e.to_string()))?;
        Ok(seal(&self.key, LABEL_OUTPUT, &encode_values(&output), &mut self.rng))
    }

    /// Engine statistics (performance accounting; not confidential).
    pub fn stats(&self) -> EngineStats {
        self.engine.stats()
    }

    /// Whether a network is loaded.
    pub fn is_loaded(&self) -> bool {
        self.engine.is_loaded()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neuropuls_accel::config::NetworkConfig;

    fn identity(width: usize) -> NetworkConfig {
        NetworkConfig::mlp(&[width, width], |_, o, i| if o == i { 1.0 } else { 0.0 })
    }

    fn setup() -> (NetworkOwner, SecureAccelerator) {
        let key = [0x5A; 32];
        (
            NetworkOwner::new(key, b"owner-rng"),
            SecureAccelerator::new(PhotonicEngine::reference(1), key),
        )
    }

    #[test]
    fn end_to_end_inference() {
        let (mut owner, mut accel) = setup();
        accel.load_network(&owner.cipher_network(&identity(4))).unwrap();
        let ciphered_out = accel
            .execute_network(&owner.cipher_input(&[1.0, 0.5, -0.25, 0.0]))
            .unwrap();
        let output = owner.decipher_output(&ciphered_out).unwrap();
        assert_eq!(output.len(), 4);
        assert!((output[0] - 1.0).abs() < 0.05);
    }

    #[test]
    fn no_plaintext_on_the_wire() {
        // The network weights and inputs must not appear in any API-level
        // byte string.
        let (mut owner, mut accel) = setup();
        let config = identity(4);
        let config_bytes = config.to_bytes();
        let ciphered = owner.cipher_network(&config);
        // Look for any 16-byte window of the plaintext in the ciphertext.
        for window in config_bytes.windows(16) {
            assert!(
                !ciphered.windows(16).any(|w| w == window),
                "plaintext fragment leaked into ciphertext"
            );
        }
        accel.load_network(&ciphered).unwrap();
        let input = [0.125f64, 0.25, 0.5, 1.0];
        let ciphered_in = owner.cipher_input(&input);
        let encoded = encode_values(&input);
        for window in encoded.windows(8) {
            assert!(!ciphered_in.windows(8).any(|w| w == window));
        }
    }

    #[test]
    fn tampered_network_is_rejected() {
        let (mut owner, mut accel) = setup();
        let mut blob = owner.cipher_network(&identity(4));
        let mid = blob.len() / 2;
        blob[mid] ^= 0x80;
        assert!(matches!(
            accel.load_network(&blob),
            Err(ProtocolError::AuthenticationFailed(_))
        ));
        assert!(!accel.is_loaded());
    }

    #[test]
    fn wrong_key_cannot_load() {
        let (mut owner, _) = setup();
        let blob = owner.cipher_network(&identity(4));
        let mut wrong = SecureAccelerator::new(PhotonicEngine::reference(2), [0x00; 32]);
        assert!(wrong.load_network(&blob).is_err());
    }

    #[test]
    fn labels_are_domain_separated() {
        // An input blob must not be accepted as a network and vice
        // versa, even under the right key.
        let (mut owner, mut accel) = setup();
        let input_blob = owner.cipher_input(&[1.0, 2.0]);
        assert!(accel.load_network(&input_blob).is_err());
        let net_blob = owner.cipher_network(&identity(2));
        accel.load_network(&net_blob).unwrap();
        assert!(accel.execute_network(&net_blob).is_err());
    }

    #[test]
    fn short_blobs_are_rejected_cleanly() {
        let (_, mut accel) = setup();
        assert!(matches!(
            accel.load_network(&[0u8; 10]),
            Err(ProtocolError::MalformedCiphertext(_))
        ));
    }

    #[test]
    fn execute_requires_loaded_network() {
        let (mut owner, mut accel) = setup();
        let blob = owner.cipher_input(&[1.0]);
        assert!(accel.execute_network(&blob).is_err());
    }

    #[test]
    fn output_tampering_is_detected_by_owner() {
        let (mut owner, mut accel) = setup();
        accel.load_network(&owner.cipher_network(&identity(2))).unwrap();
        let mut out = accel
            .execute_network(&owner.cipher_input(&[1.0, 2.0]))
            .unwrap();
        let mid = out.len() / 2;
        out[mid] ^= 1;
        assert!(owner.decipher_output(&out).is_err());
    }

    #[test]
    fn tensor_codec_roundtrip() {
        let values = vec![1.5, -2.25, 0.0, 1e-3];
        let decoded = decode_values(&encode_values(&values)).unwrap();
        for (a, b) in values.iter().zip(&decoded) {
            assert!((a - b).abs() < 1e-6);
        }
        assert!(decode_values(&[1, 2]).is_err());
        assert!(decode_values(&[9, 0, 0, 0, 1, 2, 3]).is_err());
    }
}
