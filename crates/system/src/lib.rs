// Indexed loops over parallel arrays are the clearest form for the
// numeric kernels in this crate.
#![allow(clippy::needless_range_loop)]
#![warn(missing_docs)]

//! gem5-like system-level model — §V of the paper.
//!
//! "Building a simulator capable of modeling the behavior of security
//! primitives, such as PUFs, requires modeling all system components
//! (CPU, memory, accelerators)". This crate provides them:
//!
//! * [`riscv`] — an RV32IM instruction-set simulator with a simple cycle
//!   model and `rdcycle`/`rdinstret`;
//! * [`asm`] — a two-pass assembler so firmware stays readable;
//! * [`bus`] — flat RAM plus an MMIO bus for peripherals;
//! * [`peripherals`] — the PUF peripheral (the §V "peripheral module
//!   connected to the RISC-V microprocessor"), an accelerator window and
//!   a UART;
//! * [`soc`] — the wired system with gem5-style [`stats`] including
//!   throughput, latency and a picojoule-level energy model.
//!
//! # Example — firmware interrogating the PUF
//!
//! ```
//! use neuropuls_photonic::process::DieId;
//! use neuropuls_puf::photonic::PhotonicPuf;
//! use neuropuls_system::soc::{firmware, Soc, StopReason};
//!
//! # fn main() -> Result<(), neuropuls_system::asm::AsmError> {
//! let mut soc = Soc::new(PhotonicPuf::reference(DieId(1), 7), None);
//! soc.load_firmware(firmware::PUF_READ)?;
//! assert!(matches!(soc.run(100_000), StopReason::Halted(_)));
//! # Ok(())
//! # }
//! ```

pub mod asm;
pub mod bus;
pub mod crp_store;
pub mod event;
pub mod fleet;
pub mod peripherals;
pub mod riscv;
pub mod soc;
pub mod stats;

pub use soc::{Soc, StopReason};
pub use stats::StatRegistry;
