//! gem5-style statistics registry.
//!
//! §V: "The gem5-provided log facility allows data collection to assess
//! entropy, uniqueness, and response uniformity … throughput, latency,
//! and power consumption measurements are essential". Components
//! register named scalar counters and distributions; a dump renders the
//! familiar `name value # description` format.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One scalar statistic.
#[derive(Debug, Clone, Default)]
struct Scalar {
    value: f64,
    description: String,
}

/// One distribution statistic (running moments + min/max).
#[derive(Debug, Clone, Default)]
struct Distribution {
    count: u64,
    sum: f64,
    sum_sq: f64,
    min: f64,
    max: f64,
    description: String,
}

/// The statistics registry.
#[derive(Debug, Clone, Default)]
pub struct StatRegistry {
    scalars: BTreeMap<String, Scalar>,
    distributions: BTreeMap<String, Distribution>,
}

impl StatRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Increments a scalar counter, creating it on first use.
    pub fn add(&mut self, name: &str, amount: f64, description: &str) {
        let entry = self.scalars.entry(name.to_string()).or_default();
        entry.value += amount;
        if entry.description.is_empty() {
            entry.description = description.to_string();
        }
    }

    /// Sets a scalar to an absolute value.
    pub fn set(&mut self, name: &str, value: f64, description: &str) {
        let entry = self.scalars.entry(name.to_string()).or_default();
        entry.value = value;
        if entry.description.is_empty() {
            entry.description = description.to_string();
        }
    }

    /// Records a sample into a distribution.
    pub fn sample(&mut self, name: &str, value: f64, description: &str) {
        let entry = self
            .distributions
            .entry(name.to_string())
            .or_insert_with(|| Distribution {
                min: f64::INFINITY,
                max: f64::NEG_INFINITY,
                description: description.to_string(),
                ..Default::default()
            });
        entry.count += 1;
        entry.sum += value;
        entry.sum_sq += value * value;
        entry.min = entry.min.min(value);
        entry.max = entry.max.max(value);
    }

    /// Reads a scalar (0.0 when absent).
    pub fn scalar(&self, name: &str) -> f64 {
        self.scalars.get(name).map_or(0.0, |s| s.value)
    }

    /// Mean of a distribution (NaN when empty/absent).
    pub fn mean(&self, name: &str) -> f64 {
        self.distributions
            .get(name)
            .filter(|d| d.count > 0)
            .map_or(f64::NAN, |d| d.sum / d.count as f64)
    }

    /// Sample count of a distribution.
    pub fn count(&self, name: &str) -> u64 {
        self.distributions.get(name).map_or(0, |d| d.count)
    }

    /// Renders the gem5-style dump.
    pub fn dump(&self) -> String {
        let mut out = String::from("---------- Begin Simulation Statistics ----------\n");
        for (name, s) in &self.scalars {
            let _ = writeln!(out, "{name:<42} {:>14.4} # {}", s.value, s.description);
        }
        for (name, d) in &self.distributions {
            if d.count == 0 {
                continue;
            }
            let mean = d.sum / d.count as f64;
            let var = (d.sum_sq / d.count as f64 - mean * mean).max(0.0);
            let _ = writeln!(
                out,
                "{:<42} {:>14.4} # {} (n={}, sd={:.4}, min={:.4}, max={:.4})",
                format!("{name}::mean"),
                mean,
                d.description,
                d.count,
                var.sqrt(),
                d.min,
                d.max
            );
        }
        out.push_str("---------- End Simulation Statistics   ----------\n");
        out
    }

    /// Clears all statistics.
    pub fn reset(&mut self) {
        self.scalars.clear();
        self.distributions.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut stats = StatRegistry::new();
        stats.add("cpu.instructions", 10.0, "retired instructions");
        stats.add("cpu.instructions", 5.0, "retired instructions");
        assert_eq!(stats.scalar("cpu.instructions"), 15.0);
    }

    #[test]
    fn set_overrides() {
        let mut stats = StatRegistry::new();
        stats.add("x", 3.0, "");
        stats.set("x", 1.0, "");
        assert_eq!(stats.scalar("x"), 1.0);
    }

    #[test]
    fn distribution_moments() {
        let mut stats = StatRegistry::new();
        for v in [1.0, 2.0, 3.0] {
            stats.sample("lat", v, "latency");
        }
        assert_eq!(stats.count("lat"), 3);
        assert!((stats.mean("lat") - 2.0).abs() < 1e-12);
    }

    #[test]
    fn missing_stats_have_neutral_values() {
        let stats = StatRegistry::new();
        assert_eq!(stats.scalar("nothing"), 0.0);
        assert!(stats.mean("nothing").is_nan());
        assert_eq!(stats.count("nothing"), 0);
    }

    #[test]
    fn dump_contains_entries() {
        let mut stats = StatRegistry::new();
        stats.add("sim.ticks", 100.0, "simulated ticks");
        stats.sample("puf.latency", 6.0, "per-eval latency");
        let dump = stats.dump();
        assert!(dump.contains("sim.ticks"));
        assert!(dump.contains("puf.latency::mean"));
        assert!(dump.contains("Begin Simulation Statistics"));
    }

    #[test]
    fn reset_clears() {
        let mut stats = StatRegistry::new();
        stats.add("a", 1.0, "");
        stats.reset();
        assert_eq!(stats.scalar("a"), 0.0);
    }
}
