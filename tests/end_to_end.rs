//! End-to-end integration: the complete NEUROPULS device lifecycle
//! across every crate — manufacture, key provisioning, mutual
//! authentication, software attestation, encrypted NN execution, and an
//! EKE session bootstrapped from an authentication secret.

use neuropuls::accel::config::NetworkConfig;
use neuropuls::accel::engine::PhotonicEngine;
use neuropuls::manufacture::{manufacture, ManufactureConfig};
use neuropuls::photonic::process::DieId;
use neuropuls::protocols::attestation::{AttestationVerifier, AttestingDevice, TimingModel};
use neuropuls::protocols::eke::{run_exchange, EkeParty};
use neuropuls::protocols::keys::reproduce_key;
use neuropuls::protocols::mutual_auth::{run_session, Device, Verifier};
use neuropuls::protocols::secure_nn::{NetworkOwner, SecureAccelerator};
use neuropuls::puf::bits::Response;
use neuropuls::puf::photonic::PhotonicPuf;

#[test]
fn full_device_lifecycle() {
    // 1. Manufacture.
    let lot = manufacture(&ManufactureConfig::default()).expect("manufacturing succeeds");
    let device_key = lot.enrolled_key.key;

    // 2. In the field, the device reproduces its key from the weak PUF.
    let mut weak = lot.weak;
    let reproduced = reproduce_key(&mut weak, &lot.enrolled_key.record).expect("key reproduction");
    assert_eq!(reproduced, device_key);

    // 3. Mutual authentication over ten sessions.
    let firmware = vec![0x5A; 2048];
    let (mut device, provisioned) =
        Device::provision(lot.device, firmware, b"lifecycle").expect("provisioning");
    let mut verifier = Verifier::new(provisioned, b"lifecycle-verifier");
    let mut failures = 0;
    for _ in 0..10 {
        if run_session(&mut device, &mut verifier).is_err() {
            failures += 1;
        }
    }
    assert!(failures <= 1, "{failures}/10 sessions failed");

    // 4. Secure NN service under the PUF-derived key.
    let mut owner = NetworkOwner::new(device_key, b"owner");
    let mut accel = SecureAccelerator::new(PhotonicEngine::reference(3), device_key);
    let network = NetworkConfig::mlp(&[8, 4, 2], |l, o, i| ((l * 5 + o * 3 + i) % 7) as f32 * 0.1);
    accel
        .load_network(&owner.cipher_network(&network))
        .expect("encrypted load");
    let out = accel
        .execute_network(&owner.cipher_input(&[0.5; 8]))
        .expect("encrypted execute");
    let output = owner.decipher_output(&out).expect("owner decrypts");
    assert_eq!(output.len(), 2);
}

#[test]
fn attestation_follows_authentication() {
    // The attestation verifier uses the same die model as the deployed
    // device; a device that passes authentication also attests cleanly,
    // and a post-auth compromise is caught.
    let die = DieId(77);
    let memory: Vec<u8> = (0..16 * 1024).map(|i| (i % 255) as u8).collect();
    let timing = TimingModel::photonic();

    let mut attester = AttestingDevice::new(PhotonicPuf::reference(die, 1), memory.clone(), timing);
    let mut verifier = AttestationVerifier::new(PhotonicPuf::reference(die, 2), memory, timing);

    let request = verifier.begin();
    let report = attester.attest(&request).expect("attestation runs");
    verifier
        .verify(&request, &report)
        .expect("honest device passes");

    attester.corrupt_memory(1000, 0x00);
    let request = verifier.begin();
    let report = attester.attest(&request).expect("attestation runs");
    assert!(
        verifier.verify(&request, &report).is_err(),
        "compromise missed"
    );
}

#[test]
fn eke_bootstraps_session_keys_from_crp() {
    // §IV: the CRP doubles as the EKE password, yielding fresh session
    // keys with forward secrecy.
    let crp = Response::from_u64(0x0123_4567_89AB_CDEF, 63);
    let mut device_side = EkeParty::new(&crp, b"device-rng");
    let mut verifier_side = EkeParty::new(&crp, b"verifier-rng");
    let (k1, k2) = run_exchange(&mut device_side, &mut verifier_side).expect("exchange");
    assert_eq!(k1, k2);

    // A second exchange yields different keys (forward secrecy).
    let mut device_side2 = EkeParty::new(&crp, b"device-rng-2");
    let mut verifier_side2 = EkeParty::new(&crp, b"verifier-rng-2");
    let (k3, _) = run_exchange(&mut device_side2, &mut verifier_side2).expect("exchange 2");
    assert_ne!(k1, k3);
}

#[test]
fn cross_device_isolation() {
    // Material from one device must be useless on another: keys differ
    // and the secure accelerator rejects the other device's payloads.
    let a = manufacture(&ManufactureConfig::default()).unwrap();
    let b = manufacture(&ManufactureConfig {
        die_id: 99,
        ..ManufactureConfig::default()
    })
    .unwrap();
    assert_ne!(a.enrolled_key.key, b.enrolled_key.key);

    let mut owner_a = NetworkOwner::new(a.enrolled_key.key, b"a");
    let mut accel_b = SecureAccelerator::new(PhotonicEngine::reference(9), b.enrolled_key.key);
    let network = NetworkConfig::mlp(&[2, 2], |_, o, i| (o == i) as u8 as f32);
    let blob = owner_a.cipher_network(&network);
    assert!(
        accel_b.load_network(&blob).is_err(),
        "cross-device payload accepted"
    );
}
