//! Physical memory and the MMIO system bus.
//!
//! §V: "The gem5 simulation environment allows one to define a
//! peripheral module connected to the RISC-V microprocessor, providing
//! the essential infrastructure for the delivery of the programming
//! API." Peripherals implement [`MmioDevice`] and are mapped into the
//! address space; the CPU sees a flat 32-bit bus.

use std::fmt;

/// Access fault raised by the bus.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BusFault {
    /// No memory or device at the address.
    Unmapped(u32),
    /// Misaligned access for the width.
    Misaligned(u32),
    /// A device window overlaps RAM or another device (or wraps the
    /// address space).
    Overlap(u32),
}

impl fmt::Display for BusFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BusFault::Unmapped(addr) => write!(f, "access to unmapped address {addr:#010x}"),
            BusFault::Misaligned(addr) => write!(f, "misaligned access at {addr:#010x}"),
            BusFault::Overlap(addr) => {
                write!(f, "device window at {addr:#010x} overlaps existing mapping")
            }
        }
    }
}

impl std::error::Error for BusFault {}

/// A memory-mapped peripheral.
pub trait MmioDevice {
    /// Size of the device's register window in bytes.
    fn size(&self) -> u32;

    /// 32-bit register read at a word-aligned offset.
    fn read32(&mut self, offset: u32) -> u32;

    /// 32-bit register write at a word-aligned offset.
    fn write32(&mut self, offset: u32, value: u32);

    /// Advance device-internal time by `ticks` (optional).
    fn tick(&mut self, _ticks: u64) {}
}

struct Mapping {
    base: u32,
    device: Box<dyn MmioDevice>,
}

/// Running transaction counters of a [`Bus`] (see [`Bus::stats`]).
///
/// Counters record *resolved* primitive accesses: a 16-bit RAM read
/// counts its two byte sub-accesses, a byte read of a device register
/// counts the word read it resolves to. Faults count every access that
/// returned a [`BusFault`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BusStats {
    /// RAM read accesses.
    pub ram_reads: u64,
    /// RAM write accesses.
    pub ram_writes: u64,
    /// Device register reads.
    pub device_reads: u64,
    /// Device register writes.
    pub device_writes: u64,
    /// Accesses that faulted (unmapped or misaligned).
    pub faults: u64,
}

/// Flat RAM region.
#[derive(Debug, Clone)]
pub struct Ram {
    base: u32,
    bytes: Vec<u8>,
}

impl Ram {
    /// Allocates `size` bytes at `base`.
    pub fn new(base: u32, size: usize) -> Self {
        Ram {
            base,
            bytes: vec![0; size],
        }
    }

    /// Base address.
    pub fn base(&self) -> u32 {
        self.base
    }

    /// Size in bytes.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// True when zero-sized.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// Raw view (for attestation-style whole-memory hashing).
    pub fn as_slice(&self) -> &[u8] {
        &self.bytes
    }

    fn contains(&self, addr: u32, width: u32) -> bool {
        addr >= self.base && (addr - self.base) as usize + width as usize <= self.bytes.len()
    }
}

/// The system bus: one RAM plus mapped peripherals.
pub struct Bus {
    ram: Ram,
    devices: Vec<Mapping>,
    stats: BusStats,
}

impl fmt::Debug for Bus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Bus")
            .field("ram_base", &self.ram.base)
            .field("ram_len", &self.ram.len())
            .field("devices", &self.devices.len())
            .finish()
    }
}

impl Bus {
    /// Creates a bus around a RAM region.
    pub fn new(ram: Ram) -> Self {
        Bus {
            ram,
            devices: Vec::new(),
            stats: BusStats::default(),
        }
    }

    /// Maps a peripheral at `base`.
    ///
    /// # Errors
    ///
    /// [`BusFault::Overlap`] if the window wraps the address space or
    /// overlaps RAM or another device; the bus is left unchanged.
    pub fn map(&mut self, base: u32, device: Box<dyn MmioDevice>) -> Result<(), BusFault> {
        let size = device.size();
        let Some(end) = base.checked_add(size) else {
            return Err(BusFault::Overlap(base));
        };
        if end > self.ram.base && base < self.ram.base + self.ram.len() as u32 {
            return Err(BusFault::Overlap(base));
        }
        for m in &self.devices {
            let m_end = m.base + m.device.size();
            if end > m.base && base < m_end {
                return Err(BusFault::Overlap(base));
            }
        }
        self.devices.push(Mapping { base, device });
        Ok(())
    }

    /// The RAM region.
    pub fn ram(&self) -> &Ram {
        &self.ram
    }

    /// Transaction counters since construction (or the last
    /// [`Bus::reset_stats`]).
    pub fn stats(&self) -> BusStats {
        self.stats
    }

    /// Zeroes the transaction counters.
    pub fn reset_stats(&mut self) {
        self.stats = BusStats::default();
    }

    /// Loads bytes into RAM at an absolute address.
    ///
    /// # Errors
    ///
    /// [`BusFault::Unmapped`] if the range is outside RAM.
    pub fn load(&mut self, addr: u32, bytes: &[u8]) -> Result<(), BusFault> {
        if !self.ram.contains(addr, bytes.len() as u32) {
            return Err(BusFault::Unmapped(addr));
        }
        let offset = (addr - self.ram.base) as usize;
        self.ram.bytes[offset..offset + bytes.len()].copy_from_slice(bytes);
        Ok(())
    }

    /// Byte read.
    ///
    /// # Errors
    ///
    /// [`BusFault::Unmapped`] outside RAM and devices.
    pub fn read8(&mut self, addr: u32) -> Result<u8, BusFault> {
        if self.ram.contains(addr, 1) {
            self.stats.ram_reads += 1;
            return Ok(self.ram.bytes[(addr - self.ram.base) as usize]);
        }
        // Byte reads of device registers read the containing word.
        let word = self.read32(addr & !3)?;
        Ok((word >> ((addr & 3) * 8)) as u8)
    }

    /// Byte write.
    ///
    /// # Errors
    ///
    /// [`BusFault::Unmapped`] outside RAM (device byte-writes are not
    /// supported and fault).
    pub fn write8(&mut self, addr: u32, value: u8) -> Result<(), BusFault> {
        if self.ram.contains(addr, 1) {
            self.stats.ram_writes += 1;
            self.ram.bytes[(addr - self.ram.base) as usize] = value;
            return Ok(());
        }
        self.stats.faults += 1;
        Err(BusFault::Unmapped(addr))
    }

    /// Half-word read (little endian).
    ///
    /// # Errors
    ///
    /// Faults on misalignment or unmapped addresses.
    pub fn read16(&mut self, addr: u32) -> Result<u16, BusFault> {
        if !addr.is_multiple_of(2) {
            self.stats.faults += 1;
            return Err(BusFault::Misaligned(addr));
        }
        Ok(u16::from(self.read8(addr)?) | (u16::from(self.read8(addr + 1)?) << 8))
    }

    /// Half-word write.
    ///
    /// # Errors
    ///
    /// Faults on misalignment or unmapped addresses.
    pub fn write16(&mut self, addr: u32, value: u16) -> Result<(), BusFault> {
        if !addr.is_multiple_of(2) {
            self.stats.faults += 1;
            return Err(BusFault::Misaligned(addr));
        }
        self.write8(addr, value as u8)?;
        self.write8(addr + 1, (value >> 8) as u8)
    }

    /// Word read.
    ///
    /// # Errors
    ///
    /// Faults on misalignment or unmapped addresses.
    pub fn read32(&mut self, addr: u32) -> Result<u32, BusFault> {
        if !addr.is_multiple_of(4) {
            self.stats.faults += 1;
            return Err(BusFault::Misaligned(addr));
        }
        if self.ram.contains(addr, 4) {
            self.stats.ram_reads += 1;
            let o = (addr - self.ram.base) as usize;
            return Ok(u32::from_le_bytes([
                self.ram.bytes[o],
                self.ram.bytes[o + 1],
                self.ram.bytes[o + 2],
                self.ram.bytes[o + 3],
            ]));
        }
        for m in self.devices.iter_mut() {
            if addr >= m.base && addr < m.base + m.device.size() {
                self.stats.device_reads += 1;
                return Ok(m.device.read32(addr - m.base));
            }
        }
        self.stats.faults += 1;
        Err(BusFault::Unmapped(addr))
    }

    /// Word write.
    ///
    /// # Errors
    ///
    /// Faults on misalignment or unmapped addresses.
    pub fn write32(&mut self, addr: u32, value: u32) -> Result<(), BusFault> {
        if !addr.is_multiple_of(4) {
            self.stats.faults += 1;
            return Err(BusFault::Misaligned(addr));
        }
        if self.ram.contains(addr, 4) {
            self.stats.ram_writes += 1;
            let o = (addr - self.ram.base) as usize;
            self.ram.bytes[o..o + 4].copy_from_slice(&value.to_le_bytes());
            return Ok(());
        }
        for m in self.devices.iter_mut() {
            if addr >= m.base && addr < m.base + m.device.size() {
                self.stats.device_writes += 1;
                m.device.write32(addr - m.base, value);
                return Ok(());
            }
        }
        self.stats.faults += 1;
        Err(BusFault::Unmapped(addr))
    }

    /// Advances every device by `ticks`.
    pub fn tick(&mut self, ticks: u64) {
        for m in self.devices.iter_mut() {
            m.device.tick(ticks);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Scratch {
        regs: [u32; 4],
    }

    impl MmioDevice for Scratch {
        fn size(&self) -> u32 {
            16
        }
        fn read32(&mut self, offset: u32) -> u32 {
            self.regs[(offset / 4) as usize]
        }
        fn write32(&mut self, offset: u32, value: u32) {
            self.regs[(offset / 4) as usize] = value;
        }
    }

    fn bus() -> Bus {
        let mut bus = Bus::new(Ram::new(0x8000_0000, 4096));
        bus.map(0x1000_0000, Box::new(Scratch { regs: [0; 4] }))
            .unwrap();
        bus
    }

    #[test]
    fn ram_roundtrip_all_widths() {
        let mut b = bus();
        b.write32(0x8000_0100, 0xDEADBEEF).unwrap();
        assert_eq!(b.read32(0x8000_0100).unwrap(), 0xDEADBEEF);
        assert_eq!(b.read16(0x8000_0100).unwrap(), 0xBEEF);
        assert_eq!(b.read8(0x8000_0103).unwrap(), 0xDE);
        b.write8(0x8000_0100, 0x11).unwrap();
        assert_eq!(b.read32(0x8000_0100).unwrap(), 0xDEADBE11);
        b.write16(0x8000_0102, 0x2233).unwrap();
        assert_eq!(b.read32(0x8000_0100).unwrap(), 0x2233BE11);
    }

    #[test]
    fn device_registers_work() {
        let mut b = bus();
        b.write32(0x1000_0004, 42).unwrap();
        assert_eq!(b.read32(0x1000_0004).unwrap(), 42);
        assert_eq!(b.read32(0x1000_0000).unwrap(), 0);
    }

    #[test]
    fn unmapped_faults() {
        let mut b = bus();
        assert_eq!(b.read32(0x2000_0000), Err(BusFault::Unmapped(0x2000_0000)));
        assert_eq!(b.write32(0x0, 1), Err(BusFault::Unmapped(0x0)));
    }

    #[test]
    fn misaligned_faults() {
        let mut b = bus();
        assert_eq!(
            b.read32(0x8000_0001),
            Err(BusFault::Misaligned(0x8000_0001))
        );
        assert_eq!(
            b.read16(0x8000_0001),
            Err(BusFault::Misaligned(0x8000_0001))
        );
    }

    #[test]
    fn load_places_program() {
        let mut b = bus();
        b.load(0x8000_0000, &[1, 2, 3, 4]).unwrap();
        assert_eq!(b.read32(0x8000_0000).unwrap(), 0x04030201);
    }

    #[test]
    fn stats_count_transactions_and_faults() {
        let mut b = bus();
        b.write32(0x8000_0100, 1).unwrap();
        let _ = b.read32(0x8000_0100).unwrap();
        b.write32(0x1000_0000, 2).unwrap();
        let _ = b.read32(0x1000_0000).unwrap();
        let _ = b.read32(0x2000_0000); // unmapped
        let _ = b.read32(0x8000_0001); // misaligned
        let s = b.stats();
        assert_eq!(s.ram_reads, 1);
        assert_eq!(s.ram_writes, 1);
        assert_eq!(s.device_reads, 1);
        assert_eq!(s.device_writes, 1);
        assert_eq!(s.faults, 2);
        b.reset_stats();
        assert_eq!(b.stats(), BusStats::default());
    }

    #[test]
    fn overlapping_devices_rejected() {
        let mut b = bus();
        assert_eq!(
            b.map(0x1000_0008, Box::new(Scratch { regs: [0; 4] })),
            Err(BusFault::Overlap(0x1000_0008))
        );
        // RAM overlap and address-space wraparound fault the same way.
        assert_eq!(
            b.map(0x8000_0100, Box::new(Scratch { regs: [0; 4] })),
            Err(BusFault::Overlap(0x8000_0100))
        );
        assert_eq!(
            b.map(0xFFFF_FFF8, Box::new(Scratch { regs: [0; 4] })),
            Err(BusFault::Overlap(0xFFFF_FFF8))
        );
        // The failed maps left the bus usable.
        b.write32(0x1000_0000, 7).unwrap();
        assert_eq!(b.read32(0x1000_0000).unwrap(), 7);
    }
}
