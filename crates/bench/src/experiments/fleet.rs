//! E17 — §V fleet scheduling: one verifier attesting a device fleet on
//! the discrete-event engine; verifier utilization, backlog and
//! turnaround vs fleet size.

use crate::{Rendered, Scale};
use neuropuls_system::fleet::{run_fleet, FleetConfig, FleetReport};

/// Runs the fleet-size sweep.
pub fn run(scale: Scale) -> (Rendered, Vec<FleetReport>) {
    let sizes: Vec<usize> = scale.pick(vec![2, 8], vec![2, 4, 8, 16, 32]);
    let reports: Vec<FleetReport> = sizes
        .iter()
        .map(|&devices| {
            run_fleet(&FleetConfig {
                devices,
                ..FleetConfig::default()
            })
        })
        .collect();

    let mut out = Rendered::new("E17 (§V) — fleet attestation scheduling (one serial verifier)");
    out.push(format!(
        "{:>8} {:>8} {:>8} {:>10} {:>12} {:>14} {:>14}",
        "devices", "attests", "passed", "caught", "utilization", "max backlog", "turnaround µs"
    ));
    for r in &reports {
        out.push(format!(
            "{:>8} {:>8} {:>8} {:>7}/{:<2} {:>11.1}% {:>14} {:>14.1}",
            r.devices,
            r.attestations,
            r.passed,
            r.compromised_caught,
            r.compromised_planted,
            r.verifier_utilization * 100.0,
            r.max_backlog,
            r.mean_turnaround_us
        ));
    }
    out.push(
        "every planted compromise is caught; utilization and backlog grow with the fleet \
         until the serial verifier saturates"
            .to_string(),
    );
    (out, reports)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_fleet_sweep() {
        let (_, reports) = run(Scale::Smoke);
        for r in &reports {
            assert_eq!(r.compromised_caught, r.compromised_planted, "{r:?}");
        }
        assert!(
            reports.last().unwrap().verifier_utilization
                >= reports[0].verifier_utilization,
            "utilization should grow with fleet size"
        );
    }
}
