//! Entropy estimators for PUF response populations.
//!
//! §II-A argues that photonic PUFs "can carry a much higher entropy than
//! digital PUFs"; §V asks the simulator to "assess entropy, uniqueness,
//! and response uniformity". These estimators quantify that claim in E2.

use crate::quality::binary_entropy;
use std::collections::HashMap;

/// Shannon entropy (bits per symbol) of a byte-symbol sequence.
pub fn shannon_entropy(symbols: &[u8]) -> f64 {
    if symbols.is_empty() {
        return 0.0;
    }
    let mut counts: HashMap<u8, usize> = HashMap::new();
    for &s in symbols {
        *counts.entry(s).or_insert(0) += 1;
    }
    let n = symbols.len() as f64;
    counts
        .values()
        .map(|&c| {
            let p = c as f64 / n;
            -p * p.log2()
        })
        .sum()
}

/// Per-bit Shannon entropy of a bit sequence (bits stored one per byte).
pub fn bit_entropy(bits: &[u8]) -> f64 {
    if bits.is_empty() {
        return 0.0;
    }
    let ones = bits.iter().filter(|&&b| b & 1 == 1).count() as f64;
    binary_entropy(ones / bits.len() as f64)
}

/// Min-entropy per bit estimated from the most frequent value of each bit
/// position across a device population (the NIST SP 800-90B "most common
/// value" idea applied position-wise).
///
/// # Panics
///
/// Panics if the population is empty or lengths differ.
pub fn min_entropy_per_bit(device_responses: &[Vec<u8>]) -> f64 {
    assert!(!device_responses.is_empty(), "population is empty");
    let bits = device_responses[0].len();
    let n = device_responses.len() as f64;
    let mut total = 0.0;
    for pos in 0..bits {
        let ones = device_responses
            .iter()
            .map(|r| {
                assert_eq!(r.len(), bits, "response lengths differ");
                (r[pos] & 1) as usize
            })
            .sum::<usize>() as f64;
        let p_max = (ones / n).max(1.0 - ones / n);
        total += -p_max.log2();
    }
    total / bits as f64
}

/// Markov-chain entropy rate estimate (order 1) of a bit stream — detects
/// serial correlation that the i.i.d. estimators miss.
pub fn markov_entropy_rate(bits: &[u8]) -> f64 {
    if bits.len() < 2 {
        return 0.0;
    }
    let mut trans = [[0usize; 2]; 2];
    for w in bits.windows(2) {
        trans[(w[0] & 1) as usize][(w[1] & 1) as usize] += 1;
    }
    let mut rate = 0.0;
    let total: usize = trans.iter().flatten().sum();
    for from in 0..2 {
        let row: usize = trans[from].iter().sum();
        if row == 0 {
            continue;
        }
        let p_state = row as f64 / total as f64;
        let p_next1 = trans[from][1] as f64 / row as f64;
        rate += p_state * binary_entropy(p_next1);
    }
    rate
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shannon_uniform_bytes() {
        let symbols: Vec<u8> = (0..=255).collect();
        assert!((shannon_entropy(&symbols) - 8.0).abs() < 1e-12);
    }

    #[test]
    fn shannon_constant_is_zero() {
        assert_eq!(shannon_entropy(&[7; 100]), 0.0);
        assert_eq!(shannon_entropy(&[]), 0.0);
    }

    #[test]
    fn bit_entropy_balanced() {
        let bits: Vec<u8> = (0..100).map(|i| (i % 2) as u8).collect();
        assert!((bit_entropy(&bits) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn min_entropy_ideal_population() {
        let devices = vec![vec![0, 1], vec![1, 0], vec![0, 0], vec![1, 1]];
        assert!((min_entropy_per_bit(&devices) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn min_entropy_aliased_population() {
        // Every device answers 1 on bit 0: zero min-entropy there.
        let devices = vec![vec![1, 0], vec![1, 1], vec![1, 0], vec![1, 1]];
        assert!((min_entropy_per_bit(&devices) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn markov_detects_correlation() {
        // Alternating bits: Shannon bit entropy 1, Markov rate 0.
        let bits: Vec<u8> = (0..1000).map(|i| (i % 2) as u8).collect();
        assert!((bit_entropy(&bits) - 1.0).abs() < 1e-12);
        assert!(markov_entropy_rate(&bits) < 1e-6);
    }

    #[test]
    fn markov_of_random_is_high() {
        let mut state = 12345u64;
        let bits: Vec<u8> = (0..4096)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((state >> 62) & 1) as u8
            })
            .collect();
        assert!(markov_entropy_rate(&bits) > 0.98);
    }
}
