//! E17 — §V fleet scheduling: a verifier farm attesting a device fleet
//! on the discrete-event engine; verifier utilization, backlog and
//! turnaround vs fleet size, and the saturation knee vs farm size.

use crate::{Rendered, Scale};
use neuropuls_rt::trace::{Registry, Tracer};
use neuropuls_system::fleet::{run_fleet, FleetConfig, FleetReport};

fn render_table(out: &mut Rendered, reports: &[FleetReport]) {
    out.push(format!(
        "{:>8} {:>9} {:>8} {:>8} {:>10} {:>12} {:>12} {:>14}",
        "devices",
        "verifiers",
        "requests",
        "attests",
        "caught",
        "utilization",
        "max backlog",
        "turnaround µs"
    ));
    for r in reports {
        out.push(format!(
            "{:>8} {:>9} {:>8} {:>8} {:>7}/{:<2} {:>11.1}% {:>12} {:>14.1}",
            r.devices,
            r.verifiers,
            r.requests,
            r.attestations,
            r.compromised_caught,
            r.compromised_planted,
            r.verifier_utilization * 100.0,
            r.max_backlog,
            r.mean_turnaround_us
        ));
    }
}

/// Runs the fleet-size sweep (serial verifier) and the verifier-farm
/// sweep at the largest fleet. Every `(devices, verifiers)` cell is an
/// independent simulation seeded from its config, so the sweep fans out
/// on the pool with byte-identical output.
pub fn run(scale: Scale) -> (Rendered, Vec<FleetReport>) {
    let sizes: Vec<usize> = scale.pick(vec![2, 8], vec![2, 4, 8, 16, 32]);
    let farm_sizes: Vec<usize> = scale.pick(vec![1, 2], vec![1, 2, 4, 8]);
    let knee_devices = *sizes.last().expect("non-empty sweep");

    let mut cells: Vec<(usize, usize)> = sizes.iter().map(|&d| (d, 1)).collect();
    cells.extend(farm_sizes.iter().skip(1).map(|&v| (knee_devices, v)));
    // Each cell records into its own registry; merging in input order
    // afterwards keeps the aggregate byte-identical at any thread count
    // (registry merges are commutative on counts, and the merge *order*
    // of the float sums is fixed by the cell order, not the schedule).
    let cell_results: Vec<(FleetReport, Registry)> =
        neuropuls_rt::pool::par_map(cells, |(devices, verifiers)| {
            let registry = Registry::new();
            let report = run_fleet(
                &FleetConfig {
                    devices,
                    verifiers,
                    ..FleetConfig::default()
                },
                &mut Tracer::disabled(),
                &registry,
            );
            (report, registry)
        });
    let metrics = Registry::new();
    let reports: Vec<FleetReport> = cell_results
        .into_iter()
        .map(|(report, registry)| {
            metrics.merge(&registry);
            report
        })
        .collect();
    let (size_sweep, farm_tail) = reports.split_at(sizes.len());
    let mut farm_sweep: Vec<FleetReport> = vec![size_sweep[sizes.len() - 1]];
    farm_sweep.extend_from_slice(farm_tail);

    let mut out = Rendered::new("E17 (§V) — fleet attestation scheduling");
    out.push("fleet-size sweep, one serial verifier:".to_string());
    render_table(&mut out, size_sweep);
    out.push(
        "every planted compromise is caught; utilization and backlog grow with the fleet \
         until the serial verifier saturates"
            .to_string(),
    );
    out.push(String::new());
    out.push(format!(
        "verifier-farm sweep at {knee_devices} devices (the saturation knee moves out):"
    ));
    render_table(&mut out, &farm_sweep);
    out.push(
        "adding verifiers drains the backlog and pulls per-verifier utilization off the \
         ceiling; turnaround returns to the uncontended check time"
            .to_string(),
    );

    out.push(String::new());
    out.push(format!(
        "turnaround across all cells (histogram upper edges): p50 {:.1} µs, p99 {:.1} µs \
         over {} checks; queue depth p99 {:.0}",
        metrics.quantile("fleet.turnaround_ns", 0.5) / 1000.0,
        metrics.quantile("fleet.turnaround_ns", 0.99) / 1000.0,
        metrics.counter_value("fleet.attestations"),
        metrics.quantile("fleet.queue_depth", 0.99),
    ));

    let attempted: usize = reports.iter().map(|r| r.auth_attempted).sum();
    let completed: usize = reports.iter().map(|r| r.auth_completed).sum();
    let retransmits: u64 = reports.iter().map(|r| r.auth_retransmits).sum();
    let recoveries: u64 = reports.iter().map(|r| r.auth_desync_recoveries).sum();
    out.push(String::new());
    out.push(format!(
        "control-link mutual auth at {:.0}% frame loss: {completed}/{attempted} sessions \
         completed, {retransmits} retransmits, {recoveries} desync recoveries",
        FleetConfig::default().auth_loss_rate * 100.0
    ));
    (out, reports)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_fleet_sweep() {
        let (_, reports) = run(Scale::Smoke);
        for r in &reports {
            assert_eq!(r.compromised_caught, r.compromised_planted, "{r:?}");
            assert!(r.verifier_utilization <= 1.0, "{r:?}");
        }
        let serial: Vec<&FleetReport> = reports.iter().filter(|r| r.verifiers == 1).collect();
        assert!(
            serial.last().unwrap().verifier_utilization >= serial[0].verifier_utilization,
            "utilization should grow with fleet size"
        );
        for r in &reports {
            assert_eq!(
                r.auth_completed, r.auth_attempted,
                "lossy control link lost sessions: {r:?}"
            );
        }
    }
}
