//! Regenerates the analog-fidelity ablation (E14).
use neuropuls_bench::{experiments, Scale};

fn main() {
    let (out, _) = experiments::analog::run(Scale::from_args());
    print!("{out}");
}
