//! Code-offset fuzzy extractor (Dodis et al. construction).
//!
//! Weak-PUF responses are noisy: re-reading the same device yields the
//! enrolled response with a few bits flipped. The fuzzy extractor turns
//! such a noisy source into a *stable* cryptographic key:
//!
//! * **Generate** (at enrollment): pick a random codeword `c`, publish the
//!   helper data `w = response ⊕ c`, and output the key
//!   `K = HKDF(response)`.
//! * **Reproduce** (in the field): given a noisy reading `response'`,
//!   compute `c' = response' ⊕ w`, decode it back to `c`, recover
//!   `response = w ⊕ c`, and re-derive the same `K`.
//!
//! The helper data `w` is public: it reveals at most the code's redundancy
//! about the response, which the entropy analysis in experiment E10
//! accounts for.

use crate::ecc::BlockCode;
use crate::hkdf;
use crate::prng::CsPrng;
use crate::CryptoError;
use neuropuls_rt::RngCore;

/// Length of derived keys in bytes.
pub const KEY_LEN: usize = 32;

/// Public helper data produced at enrollment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HelperData {
    /// `response ⊕ codeword`, safe to store publicly.
    pub offset: Vec<u8>,
    /// Salt for the key-derivation step.
    pub salt: [u8; 16],
}

/// A stable key plus the helper data needed to reproduce it.
#[derive(Debug, Clone)]
pub struct Enrollment {
    /// The extracted key.
    pub key: [u8; KEY_LEN],
    /// Helper data to publish alongside the device.
    pub helper: HelperData,
}

/// Code-offset fuzzy extractor over a [`BlockCode`].
///
/// # Example
///
/// ```
/// use neuropuls_crypto::ecc::ConcatenatedCode;
/// use neuropuls_crypto::fuzzy::FuzzyExtractor;
/// use neuropuls_crypto::prng::CsPrng;
///
/// # fn main() -> Result<(), neuropuls_crypto::CryptoError> {
/// let extractor = FuzzyExtractor::new(ConcatenatedCode::new(3));
/// let response: Vec<u8> = (0..84).map(|i| (i % 3 == 0) as u8).collect();
/// let mut rng = CsPrng::from_seed_bytes(b"enroll");
/// let enrolled = extractor.generate(&response, &mut rng)?;
///
/// // Later, a noisy re-reading with one flipped bit still gives the key.
/// let mut noisy = response.clone();
/// noisy[10] ^= 1;
/// let key = extractor.reproduce(&noisy, &enrolled.helper)?;
/// assert_eq!(key, enrolled.key);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct FuzzyExtractor<C: BlockCode> {
    code: C,
}

impl<C: BlockCode> FuzzyExtractor<C> {
    /// Wraps a block code into a fuzzy extractor.
    pub fn new(code: C) -> Self {
        FuzzyExtractor { code }
    }

    /// Returns the underlying code.
    pub fn code(&self) -> &C {
        &self.code
    }

    /// Number of response bits consumed per enrollment for `data_bits` of
    /// underlying secret data.
    pub fn response_bits_for(&self, data_blocks: usize) -> usize {
        data_blocks * self.code.code_bits()
    }

    /// Enrolls a response (bits stored one per byte).
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::InvalidLength`] if `response.len()` is not a
    /// multiple of the code's block length.
    pub fn generate(&self, response: &[u8], rng: &mut CsPrng) -> Result<Enrollment, CryptoError> {
        if response.is_empty() || !response.len().is_multiple_of(self.code.code_bits()) {
            return Err(CryptoError::InvalidLength {
                expected: self.code.code_bits(),
                actual: response.len() % self.code.code_bits().max(1),
            });
        }
        let blocks = response.len() / self.code.code_bits();
        let data_len = blocks * self.code.data_bits();
        let mut secret = vec![0u8; data_len];
        for bit in secret.iter_mut() {
            *bit = (rng.next_u32() & 1) as u8;
        }
        let codeword = self.code.encode(&secret)?;
        let offset: Vec<u8> = response
            .iter()
            .zip(codeword.iter())
            .map(|(&r, &c)| (r ^ c) & 1)
            .collect();

        let mut salt = [0u8; 16];
        rng.fill(&mut salt);

        let key = derive_key(response, &salt)?;
        Ok(Enrollment {
            key,
            helper: HelperData { offset, salt },
        })
    }

    /// Reproduces the enrolled key from a noisy re-reading.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::InvalidLength`] if the reading length does
    /// not match the helper data, or [`CryptoError::ReproductionFailed`]
    /// if decoding cannot recover a consistent codeword.
    pub fn reproduce(
        &self,
        noisy_response: &[u8],
        helper: &HelperData,
    ) -> Result<[u8; KEY_LEN], CryptoError> {
        if noisy_response.len() != helper.offset.len() {
            return Err(CryptoError::InvalidLength {
                expected: helper.offset.len(),
                actual: noisy_response.len(),
            });
        }
        let noisy_codeword: Vec<u8> = noisy_response
            .iter()
            .zip(helper.offset.iter())
            .map(|(&r, &w)| (r ^ w) & 1)
            .collect();
        let secret = self
            .code
            .decode(&noisy_codeword)
            .map_err(|_| CryptoError::ReproductionFailed)?;
        let codeword = self
            .code
            .encode(&secret)
            .map_err(|_| CryptoError::ReproductionFailed)?;
        let recovered: Vec<u8> = codeword
            .iter()
            .zip(helper.offset.iter())
            .map(|(&c, &w)| (c ^ w) & 1)
            .collect();
        derive_key(&recovered, &helper.salt)
    }
}

/// Code-offset *secure sketch*: recovers the exact enrolled bit string
/// from a noisy re-reading (the fuzzy extractor without the key
/// derivation step). The mutual-authentication protocol uses it to
/// canonicalize fresh PUF responses on-device, so the MAC keys match the
/// verifier's stored copy bit-for-bit.
#[derive(Debug, Clone)]
pub struct SecureSketch<C: BlockCode> {
    code: C,
}

impl<C: BlockCode> SecureSketch<C> {
    /// Wraps a block code.
    pub fn new(code: C) -> Self {
        SecureSketch { code }
    }

    /// The underlying code.
    pub fn code(&self) -> &C {
        &self.code
    }

    /// Largest multiple of the code block length not exceeding `bits`.
    pub fn usable_bits(&self, bits: usize) -> usize {
        bits / self.code.code_bits() * self.code.code_bits()
    }

    /// Produces public helper data for `bits` (length must be a block
    /// multiple).
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::InvalidLength`] on a bad length.
    pub fn sketch(&self, bits: &[u8], rng: &mut CsPrng) -> Result<Vec<u8>, CryptoError> {
        if bits.is_empty() || !bits.len().is_multiple_of(self.code.code_bits()) {
            return Err(CryptoError::InvalidLength {
                expected: self.code.code_bits(),
                actual: bits.len() % self.code.code_bits().max(1),
            });
        }
        let blocks = bits.len() / self.code.code_bits();
        let mut secret = vec![0u8; blocks * self.code.data_bits()];
        for bit in secret.iter_mut() {
            *bit = (rng.next_u32() & 1) as u8;
        }
        let codeword = self.code.encode(&secret)?;
        Ok(bits
            .iter()
            .zip(codeword.iter())
            .map(|(&r, &c)| (r ^ c) & 1)
            .collect())
    }

    /// Recovers the enrolled bits from a noisy re-reading and helper
    /// data.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::InvalidLength`] on length mismatch or
    /// [`CryptoError::ReproductionFailed`] when decoding fails.
    pub fn recover(&self, noisy: &[u8], helper: &[u8]) -> Result<Vec<u8>, CryptoError> {
        if noisy.len() != helper.len() {
            return Err(CryptoError::InvalidLength {
                expected: helper.len(),
                actual: noisy.len(),
            });
        }
        let noisy_codeword: Vec<u8> = noisy
            .iter()
            .zip(helper.iter())
            .map(|(&r, &w)| (r ^ w) & 1)
            .collect();
        let secret = self
            .code
            .decode(&noisy_codeword)
            .map_err(|_| CryptoError::ReproductionFailed)?;
        let codeword = self
            .code
            .encode(&secret)
            .map_err(|_| CryptoError::ReproductionFailed)?;
        Ok(codeword
            .iter()
            .zip(helper.iter())
            .map(|(&c, &w)| (c ^ w) & 1)
            .collect())
    }
}

fn derive_key(response_bits: &[u8], salt: &[u8]) -> Result<[u8; KEY_LEN], CryptoError> {
    // Pack the bits so the KDF input does not depend on the in-memory
    // representation.
    let mut packed = vec![0u8; response_bits.len().div_ceil(8)];
    for (i, &bit) in response_bits.iter().enumerate() {
        packed[i / 8] |= (bit & 1) << (i % 8);
    }
    let mut key = [0u8; KEY_LEN];
    hkdf::derive(salt, &packed, b"neuropuls/fuzzy-extractor", &mut key)?;
    Ok(key)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ecc::{ConcatenatedCode, RepetitionCode};

    fn response(len: usize) -> Vec<u8> {
        (0..len).map(|i| ((i * 7 + 3) % 5 < 2) as u8).collect()
    }

    #[test]
    fn exact_rereading_reproduces_key() {
        let fx = FuzzyExtractor::new(RepetitionCode::new(5));
        let resp = response(100);
        let mut rng = CsPrng::from_seed_bytes(b"t1");
        let enrolled = fx.generate(&resp, &mut rng).unwrap();
        let key = fx.reproduce(&resp, &enrolled.helper).unwrap();
        assert_eq!(key, enrolled.key);
    }

    #[test]
    fn noisy_rereading_within_capacity_reproduces_key() {
        let fx = FuzzyExtractor::new(RepetitionCode::new(5));
        let resp = response(100);
        let mut rng = CsPrng::from_seed_bytes(b"t2");
        let enrolled = fx.generate(&resp, &mut rng).unwrap();
        let mut noisy = resp.clone();
        // Two flips in each 5-bit block are correctable.
        noisy[0] ^= 1;
        noisy[1] ^= 1;
        noisy[97] ^= 1;
        let key = fx.reproduce(&noisy, &enrolled.helper).unwrap();
        assert_eq!(key, enrolled.key);
    }

    #[test]
    fn excessive_noise_changes_key() {
        let fx = FuzzyExtractor::new(RepetitionCode::new(3));
        let resp = response(30);
        let mut rng = CsPrng::from_seed_bytes(b"t3");
        let enrolled = fx.generate(&resp, &mut rng).unwrap();
        let mut noisy = resp.clone();
        noisy[0] ^= 1;
        noisy[1] ^= 1; // majority in block 0 flips
        let key = fx.reproduce(&noisy, &enrolled.helper).unwrap();
        assert_ne!(key, enrolled.key);
    }

    #[test]
    fn helper_data_mismatch_is_rejected() {
        let fx = FuzzyExtractor::new(RepetitionCode::new(3));
        let resp = response(30);
        let mut rng = CsPrng::from_seed_bytes(b"t4");
        let enrolled = fx.generate(&resp, &mut rng).unwrap();
        let short = &resp[..27];
        assert!(fx.reproduce(short, &enrolled.helper).is_err());
    }

    #[test]
    fn generate_validates_length() {
        let fx = FuzzyExtractor::new(RepetitionCode::new(3));
        let mut rng = CsPrng::from_seed_bytes(b"t5");
        assert!(fx.generate(&response(31), &mut rng).is_err());
        assert!(fx.generate(&[], &mut rng).is_err());
    }

    #[test]
    fn different_devices_get_different_keys() {
        let fx = FuzzyExtractor::new(ConcatenatedCode::new(3));
        let mut rng = CsPrng::from_seed_bytes(b"t6");
        let a = fx.generate(&response(84), &mut rng).unwrap();
        let other: Vec<u8> = response(84).iter().map(|b| b ^ 1).collect();
        let b = fx.generate(&other, &mut rng).unwrap();
        assert_ne!(a.key, b.key);
    }

    #[test]
    fn sketch_recovers_exact_bits() {
        let sketch = SecureSketch::new(RepetitionCode::new(5));
        let bits = response(100);
        let mut rng = CsPrng::from_seed_bytes(b"sketch");
        let helper = sketch.sketch(&bits, &mut rng).unwrap();
        let mut noisy = bits.clone();
        noisy[3] ^= 1;
        noisy[44] ^= 1;
        assert_eq!(sketch.recover(&noisy, &helper).unwrap(), bits);
    }

    #[test]
    fn sketch_usable_bits_rounds_down() {
        let sketch = SecureSketch::new(ConcatenatedCode::new(3));
        assert_eq!(sketch.usable_bits(64), 63);
        assert_eq!(sketch.usable_bits(21), 21);
        assert_eq!(sketch.usable_bits(20), 0);
    }

    #[test]
    fn sketch_rejects_bad_lengths() {
        let sketch = SecureSketch::new(RepetitionCode::new(3));
        let mut rng = CsPrng::from_seed_bytes(b"bad");
        assert!(sketch.sketch(&[1, 0], &mut rng).is_err());
        let helper = sketch.sketch(&response(30), &mut rng).unwrap();
        assert!(sketch.recover(&response(27), &helper).is_err());
    }

    #[test]
    fn concatenated_code_handles_burst_of_flips() {
        let fx = FuzzyExtractor::new(ConcatenatedCode::new(5));
        let resp = response(35 * 4);
        let mut rng = CsPrng::from_seed_bytes(b"t7");
        let enrolled = fx.generate(&resp, &mut rng).unwrap();
        let mut noisy = resp.clone();
        // Flip two bits in every 5-bit repetition group of the first block.
        for g in 0..7 {
            noisy[g * 5] ^= 1;
            noisy[g * 5 + 1] ^= 1;
        }
        let key = fx.reproduce(&noisy, &enrolled.helper).unwrap();
        assert_eq!(key, enrolled.key);
    }
}
