//! Admission-policy regression suite (ISSUE 10 satellite): pins the
//! contracts the `gateway/` split must hold forever.
//!
//! * The default [`GatewayConfig`] and an explicitly configured
//!   [`Fifo`] policy produce **byte-identical** runs — same tracer
//!   JSONL, same outcomes — so the policy seam cannot drift from the
//!   pre-refactor backlog behavior the golden transcripts pin.
//! * A class-aware policy degenerates to FIFO when it has nothing to
//!   discriminate: single-class [`DeficitWeightedRoundRobin`] and
//!   all-equal-deadline [`SlaDeadline`] runs are byte-identical to the
//!   FIFO run.
//! * FIFO's head-of-line blocking is pinned as *behavior*, not an
//!   accident: under a tick budget shorter than the backlog's drain, a
//!   trailing class is never admitted and its backlog wait is censored
//!   at the run length, while DWRR admits it through the same budget.

use neuropuls_photonic::process::DieId;
use neuropuls_protocols::gateway::{
    run_gateway, AdmissionPolicy, ClassId, DeficitWeightedRoundRobin, Fifo, GatewayConfig,
    SessionPair, SlaDeadline,
};
use neuropuls_protocols::mutual_auth::{Device, Verifier, WireDevice, WireVerifier};
use neuropuls_protocols::transport::{FaultRates, FaultyChannel};
use neuropuls_protocols::wire::{ProtocolId, SessionConfig};
use neuropuls_puf::photonic::PhotonicPuf;
use neuropuls_rt::trace::{Registry, Tracer};

const PAIRS: usize = 6;
const LINK_SEED: u64 = 0x0AD1_1155_10B5;

fn provision() -> Vec<(Device<PhotonicPuf>, Verifier)> {
    (0..PAIRS as u64)
        .map(|i| {
            let memory: Vec<u8> = (0..256).map(|b| (b * 13 % 247) as u8).collect();
            let (device, provisioned) = Device::provision(
                PhotonicPuf::reference(DieId(0xAD0 + i), 1),
                memory,
                b"admission-prov",
            )
            .expect("reference PUF provisions");
            (device, Verifier::new(provisioned, b"admission-verif"))
        })
        .collect()
}

fn sessions<'p>(
    parties: &'p mut [(Device<PhotonicPuf>, Verifier)],
    class: Option<ClassId>,
) -> Vec<SessionPair<'p>> {
    parties
        .iter_mut()
        .enumerate()
        .map(|(i, (device, verifier))| {
            let sid = i as u64 + 1;
            let pair = SessionPair::new(
                ProtocolId::MutualAuth,
                sid,
                Box::new(WireVerifier::new(verifier, sid, SessionConfig::default())),
                Box::new(WireDevice::new(device, SessionConfig::default())),
            );
            match class {
                Some(c) => pair.with_class(c),
                None => pair,
            }
        })
        .collect()
}

/// One traced gateway run over a freshly seeded lossy link; returns
/// the full JSONL event log and the debug rendering of the outcomes,
/// which together pin the admission order, the frame schedule and the
/// per-session results byte for byte.
fn traced_run(config: GatewayConfig, class: Option<ClassId>) -> (String, String) {
    let mut parties = provision();
    let sessions = sessions(&mut parties, class);
    let mut link = FaultyChannel::new(FaultRates::loss(0.1), LINK_SEED);
    let mut tracer = Tracer::new();
    let report = run_gateway(&mut link, sessions, config, &mut tracer, &Registry::new());
    assert_eq!(report.completed, PAIRS, "{report:?}");
    (tracer.to_jsonl(), format!("{:?}", report.outcomes))
}

fn contended() -> GatewayConfig {
    // Two active slots against six sessions: the backlog is live for
    // most of the run, so the admission policy's pop order shapes the
    // whole trace.
    GatewayConfig {
        max_active: 2,
        accept_queue: 2,
        ..GatewayConfig::default()
    }
}

#[test]
fn explicit_fifo_is_byte_identical_to_the_default_policy() {
    let (default_jsonl, default_outcomes) = traced_run(contended(), None);
    let (fifo_jsonl, fifo_outcomes) = traced_run(
        GatewayConfig {
            policy: Box::new(Fifo::new()),
            ..contended()
        },
        None,
    );
    assert_eq!(default_jsonl, fifo_jsonl, "tracer event log diverged");
    assert_eq!(default_outcomes, fifo_outcomes);
}

#[test]
fn single_class_dwrr_is_byte_identical_to_fifo() {
    // Every session in one class: DWRR has a single ring entry, so its
    // rotation is vacuous and the pop order must be FIFO's.
    let (fifo_jsonl, fifo_outcomes) = traced_run(contended(), Some(ClassId::CONTROL_AUTH));
    let (dwrr_jsonl, dwrr_outcomes) = traced_run(
        GatewayConfig {
            policy: Box::new(DeficitWeightedRoundRobin::new()),
            ..contended()
        },
        Some(ClassId::CONTROL_AUTH),
    );
    assert_eq!(fifo_jsonl, dwrr_jsonl, "tracer event log diverged");
    assert_eq!(fifo_outcomes, dwrr_outcomes);
}

#[test]
fn equal_deadline_sla_is_byte_identical_to_fifo() {
    // Identical sessions declare identical admission deadlines, so
    // earliest-deadline-first degenerates to its submission-order tie
    // break — FIFO.
    let (fifo_jsonl, fifo_outcomes) = traced_run(contended(), None);
    let (sla_jsonl, sla_outcomes) = traced_run(
        GatewayConfig {
            policy: Box::new(SlaDeadline::new()),
            ..contended()
        },
        None,
    );
    assert_eq!(fifo_jsonl, sla_jsonl, "tracer event log diverged");
    assert_eq!(fifo_outcomes, sla_outcomes);
}

/// Head-of-line blocking, pinned: a trailing minority class behind a
/// majority burst under a tick budget too short to drain the burst.
fn hol_run(policy: Box<dyn AdmissionPolicy>) -> neuropuls_protocols::gateway::GatewayReport {
    let mut parties = provision();
    let n = parties.len();
    let sessions: Vec<SessionPair<'_>> = parties
        .iter_mut()
        .enumerate()
        .map(|(i, (device, verifier))| {
            let sid = i as u64 + 1;
            let class = if i == n - 1 {
                ClassId::INFERENCE
            } else {
                ClassId::CONTROL_AUTH
            };
            SessionPair::new(
                ProtocolId::MutualAuth,
                sid,
                Box::new(WireVerifier::new(verifier, sid, SessionConfig::default())),
                Box::new(WireDevice::new(device, SessionConfig::default())),
            )
            .with_class(class)
        })
        .collect();
    let mut link = FaultyChannel::new(FaultRates::loss(0.1), LINK_SEED);
    run_gateway(
        &mut link,
        sessions,
        GatewayConfig {
            max_active: 1,
            accept_queue: 1,
            // One session drains in ~2 ticks on this link, so eight
            // ticks admit only the head of the six-deep backlog.
            max_ticks: 8,
            policy,
        },
        &mut Tracer::disabled(),
        &Registry::new(),
    )
}

#[test]
fn fifo_head_of_line_blocking_starves_the_trailing_class() {
    let fifo = hol_run(Box::new(Fifo::new()));
    let minority = fifo
        .per_class
        .iter()
        .find(|c| c.class == ClassId::INFERENCE)
        .expect("minority class is reported");
    assert_eq!(minority.admitted, 0, "{fifo:?}");
    // Censoring: the starved session waited the whole run, so the
    // class's wait columns equal the run length instead of vanishing.
    assert_eq!(minority.wait_p99, fifo.ticks, "{fifo:?}");
    assert_eq!(minority.wait_max, fifo.ticks, "{fifo:?}");

    let dwrr = hol_run(Box::new(DeficitWeightedRoundRobin::new()));
    let minority = dwrr
        .per_class
        .iter()
        .find(|c| c.class == ClassId::INFERENCE)
        .expect("minority class is reported");
    assert_eq!(minority.admitted, 1, "{dwrr:?}");
    assert!(minority.wait_max < dwrr.ticks, "{dwrr:?}");
}
