//! Side-channel attacks — §IV.
//!
//! "RF signals can be detected, for example, from the Si substrate …
//! by performing a power analysis, it was possible to extract key
//! information about PUF behavior and thus carry out modeling attacks
//! \[9\], \[24\]. The capability of transferring information in photonic
//! waveguides where signals leak out only a few hundred nanometers
//! hinders side-channel attacks."
//!
//! Model: during an evaluation the device emits a power trace. For an
//! *electronic* delay PUF the trace leaks the internal delay difference
//! (the arbiter's metastability resolution draws response-dependent
//! current). For the *photonic* PUF the optical signal does not couple
//! to the power rail; only response-independent ASIC activity shows. The
//! attacker correlates traces against response hypotheses and, once the
//! leak gives away responses, trains the §IV modeling attack without
//! ever seeing the response interface.

use crate::ml::{parity_features, LogisticRegression};
use neuropuls_photonic::laser::gaussian;
use neuropuls_puf::arbiter::ArbiterPuf;
use neuropuls_puf::bits::Challenge;
use neuropuls_puf::traits::{Puf, PufError};
use neuropuls_rt::rngs::StdRng;
use neuropuls_rt::SeedableRng;

/// How strongly the internal decision couples into the power trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LeakageModel {
    /// Response-dependent leakage amplitude (arbitrary power units).
    pub signal: f64,
    /// Gaussian measurement noise σ.
    pub noise: f64,
}

impl LeakageModel {
    /// Electronic delay PUF: strong RF/power leakage.
    pub fn electronic() -> Self {
        LeakageModel {
            signal: 1.0,
            noise: 0.5,
        }
    }

    /// Photonic PUF: no RF leakage from the waveguides; only noise.
    pub fn photonic() -> Self {
        LeakageModel {
            signal: 0.0,
            noise: 0.5,
        }
    }
}

/// One captured trace: a scalar leakage sample per evaluation (the
/// informative point of the full trace after alignment).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Trace {
    /// Aligned leakage sample.
    pub sample: f64,
}

/// A captured campaign: challenges, aligned traces, and the ground-truth
/// response bits (the last only for scoring — the attacker never sees
/// them).
pub type CapturedTraces = (Vec<Challenge>, Vec<Trace>, Vec<u8>);

/// Captures `count` (challenge, trace) pairs from an evaluation the
/// attacker can trigger but whose responses are *not* revealed.
///
/// # Errors
///
/// Propagates PUF errors.
pub fn capture_traces<P: Puf>(
    puf: &mut P,
    leakage: LeakageModel,
    count: usize,
    seed: u64,
) -> Result<CapturedTraces, PufError> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut challenges = Vec::with_capacity(count);
    let mut traces = Vec::with_capacity(count);
    let mut true_bits = Vec::with_capacity(count);
    for _ in 0..count {
        let c = Challenge::random(puf.challenge_bits(), &mut rng);
        let r = puf.respond(&c)?;
        let bit = r.bits()[0];
        let sample = leakage.signal * (bit as f64 * 2.0 - 1.0) + leakage.noise * gaussian(&mut rng);
        challenges.push(c);
        traces.push(Trace { sample });
        true_bits.push(bit);
    }
    Ok((challenges, traces, true_bits))
}

/// Outcome of the power-analysis pipeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SideChannelOutcome {
    /// Fraction of responses correctly recovered from traces alone.
    pub response_recovery: f64,
    /// Accuracy of the model subsequently trained on the recovered CRPs.
    pub model_accuracy: f64,
}

/// Full pipeline: recover responses from power traces by thresholding,
/// then train a modeling attack on the recovered CRPs.
///
/// # Errors
///
/// Propagates PUF errors.
pub fn power_analysis_attack<P: Puf>(
    puf: &mut P,
    leakage: LeakageModel,
    traces: usize,
    seed: u64,
) -> Result<SideChannelOutcome, PufError> {
    let (challenges, captured, true_bits) = capture_traces(puf, leakage, traces, seed)?;
    // Threshold at the trace median (the attacker has no labels).
    let mut sorted: Vec<f64> = captured.iter().map(|t| t.sample).collect();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
    let median = sorted[sorted.len() / 2];
    let recovered: Vec<u8> = captured
        .iter()
        .map(|t| u8::from(t.sample > median))
        .collect();

    let agreement = recovered
        .iter()
        .zip(true_bits.iter())
        .filter(|(a, b)| a == b)
        .count() as f64
        / traces as f64;
    // The attacker cannot know the polarity; take the better orientation.
    let response_recovery = agreement.max(1.0 - agreement);

    // Train on the recovered labels, evaluate against the truth.
    let split = traces * 4 / 5;
    let xs: Vec<Vec<f64>> = challenges.iter().map(parity_features).collect();
    let mut model = LogisticRegression::new(xs[0].len());
    model.fit(&xs[..split], &recovered[..split], 25, 0.05);
    let model_accuracy_raw = model.accuracy(&xs[split..], &true_bits[split..]);
    let model_accuracy = model_accuracy_raw.max(1.0 - model_accuracy_raw);

    Ok(SideChannelOutcome {
        response_recovery,
        model_accuracy,
    })
}

/// Convenience: the §IV comparison — same attack against an electronic
/// arbiter PUF and the photonic PUF.
///
/// # Errors
///
/// Propagates PUF errors.
pub fn electronic_vs_photonic<PE: Puf, PP: Puf>(
    electronic: &mut PE,
    photonic: &mut PP,
    traces: usize,
    seed: u64,
) -> Result<(SideChannelOutcome, SideChannelOutcome), PufError> {
    let e = power_analysis_attack(electronic, LeakageModel::electronic(), traces, seed)?;
    let p = power_analysis_attack(photonic, LeakageModel::photonic(), traces, seed)?;
    Ok((e, p))
}

/// Helper: a reference electronic target.
pub fn reference_electronic_target(seed: u64) -> ArbiterPuf {
    ArbiterPuf::fabricate(neuropuls_photonic::process::DieId(seed), 64, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use neuropuls_photonic::process::DieId;
    use neuropuls_puf::photonic::PhotonicPuf;

    #[test]
    fn electronic_leakage_recovers_responses() {
        let mut puf = reference_electronic_target(1);
        let outcome = power_analysis_attack(&mut puf, LeakageModel::electronic(), 600, 7).unwrap();
        assert!(
            outcome.response_recovery > 0.85,
            "recovery {}",
            outcome.response_recovery
        );
        assert!(
            outcome.model_accuracy > 0.8,
            "model accuracy {}",
            outcome.model_accuracy
        );
    }

    #[test]
    fn photonic_traces_carry_nothing() {
        let mut puf = PhotonicPuf::reference(DieId(2), 3);
        let outcome = power_analysis_attack(&mut puf, LeakageModel::photonic(), 400, 8).unwrap();
        assert!(
            outcome.response_recovery < 0.62,
            "photonic recovery should be near chance: {}",
            outcome.response_recovery
        );
    }

    #[test]
    fn comparison_orders_the_two_technologies() {
        let mut electronic = reference_electronic_target(3);
        let mut photonic = PhotonicPuf::reference(DieId(4), 4);
        let (e, p) = electronic_vs_photonic(&mut electronic, &mut photonic, 400, 9).unwrap();
        assert!(e.response_recovery > p.response_recovery + 0.2);
    }

    #[test]
    fn leakage_signal_zero_means_noise_only() {
        let model = LeakageModel::photonic();
        assert_eq!(model.signal, 0.0);
        let mut puf = PhotonicPuf::reference(DieId(5), 5);
        let (_, traces, _) = capture_traces(&mut puf, model, 100, 10).unwrap();
        let mean: f64 = traces.iter().map(|t| t.sample).sum::<f64>() / 100.0;
        assert!(mean.abs() < 0.3, "photonic trace mean {mean}");
    }
}
