//! Minimal radix-2 FFT for the spectral (DFT) statistical test.

/// In-place iterative radix-2 FFT over interleaved (re, im) pairs.
///
/// # Panics
///
/// Panics if the length is not a power of two.
pub fn fft(re: &mut [f64], im: &mut [f64]) {
    let n = re.len();
    assert_eq!(n, im.len(), "re/im length mismatch");
    assert!(n.is_power_of_two(), "FFT length must be a power of two");
    if n <= 1 {
        return;
    }

    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = i.reverse_bits() >> (usize::BITS - bits);
        if j > i {
            re.swap(i, j);
            im.swap(i, j);
        }
    }

    let mut len = 2;
    while len <= n {
        let angle = -2.0 * std::f64::consts::PI / len as f64;
        let (w_re, w_im) = (angle.cos(), angle.sin());
        for start in (0..n).step_by(len) {
            let mut cur_re = 1.0;
            let mut cur_im = 0.0;
            for k in 0..len / 2 {
                let a = start + k;
                let b = start + k + len / 2;
                let t_re = re[b] * cur_re - im[b] * cur_im;
                let t_im = re[b] * cur_im + im[b] * cur_re;
                re[b] = re[a] - t_re;
                im[b] = im[a] - t_im;
                re[a] += t_re;
                im[a] += t_im;
                let next_re = cur_re * w_re - cur_im * w_im;
                cur_im = cur_re * w_im + cur_im * w_re;
                cur_re = next_re;
            }
        }
        len <<= 1;
    }
}

/// Magnitudes of the first `n/2` FFT bins of a real signal (the signal
/// is truncated or zero-padded to the next power of two below/at its
/// length).
pub fn half_spectrum(signal: &[f64]) -> Vec<f64> {
    let n = signal.len().next_power_of_two() / if signal.len().is_power_of_two() { 1 } else { 2 };
    let mut re: Vec<f64> = signal[..n].to_vec();
    let mut im = vec![0.0; n];
    fft(&mut re, &mut im);
    (0..n / 2).map(|i| re[i].hypot(im[i])).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    #[test]
    fn impulse_has_flat_spectrum() {
        let mut re = vec![0.0; 8];
        let mut im = vec![0.0; 8];
        re[0] = 1.0;
        fft(&mut re, &mut im);
        for i in 0..8 {
            assert!((re[i] - 1.0).abs() < 1e-12);
            assert!(im[i].abs() < 1e-12);
        }
    }

    #[test]
    fn single_tone_peaks_at_its_bin() {
        let n = 64;
        let signal: Vec<f64> = (0..n)
            .map(|i| (2.0 * PI * 5.0 * i as f64 / n as f64).cos())
            .collect();
        let mags = half_spectrum(&signal);
        let peak = mags
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(peak, 5);
    }

    #[test]
    fn parseval_energy_is_preserved() {
        let n = 32;
        let signal: Vec<f64> = (0..n).map(|i| ((i * 7 + 3) % 11) as f64 - 5.0).collect();
        let time_energy: f64 = signal.iter().map(|x| x * x).sum();
        let mut re = signal.clone();
        let mut im = vec![0.0; n];
        fft(&mut re, &mut im);
        let freq_energy: f64 =
            re.iter().zip(&im).map(|(r, i)| r * r + i * i).sum::<f64>() / n as f64;
        assert!((time_energy - freq_energy).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two() {
        let mut re = vec![0.0; 6];
        let mut im = vec![0.0; 6];
        fft(&mut re, &mut im);
    }
}
