//! E4 — Fig. 4 / §III-A: mutual-authentication success rate, adversary
//! campaigns, and the storage comparison against the classic
//! CRP-database protocol \[16\].

use crate::{Rendered, Scale};
use neuropuls_attacks::protocol_attacks::{
    desync_suppression_campaign, forgery_campaign, mitm_tamper_campaign, replay_campaign,
};
use neuropuls_photonic::process::DieId;
use neuropuls_protocols::mutual_auth::{run_session, Device, Verifier};
use neuropuls_puf::enrollment::CrpDatabase;
use neuropuls_puf::photonic::PhotonicPuf;

/// Outcome for assertions.
#[derive(Debug)]
pub struct Outcome {
    /// Genuine sessions that succeeded.
    pub genuine_ok: usize,
    /// Genuine sessions attempted.
    pub genuine_total: usize,
    /// Replay attack successes (must be 0).
    pub replay_successes: usize,
    /// MITM tamper successes (must be 0).
    pub mitm_successes: usize,
    /// Blind forgery successes (must be 0).
    pub forgery_successes: usize,
    /// Msg3-suppression lockouts (must be 0).
    pub desync_successes: usize,
    /// Previous-CRP recoveries the suppression campaign forced.
    pub desync_recoveries: u64,
    /// HSC-IoT verifier storage in bytes.
    pub hsc_storage: usize,
    /// Database-protocol storage for the same number of sessions.
    pub database_storage: usize,
}

/// Runs the authentication campaign.
pub fn run(scale: Scale) -> (Rendered, Outcome) {
    let sessions = scale.pick(20, 1000);
    let attack_attempts = scale.pick(10, 200);

    let puf = PhotonicPuf::reference(DieId(0xE4), 1);
    let (mut device, provisioned) =
        Device::provision(puf, vec![0x3C; 4096], b"exp-e4").expect("provision");
    let mut verifier = Verifier::new(provisioned, b"exp-e4-verifier");

    let mut genuine_ok = 0usize;
    for _ in 0..sessions {
        if run_session(&mut device, &mut verifier).is_ok() {
            genuine_ok += 1;
        } else {
            // A failed session leaves a half-open device state; abort.
            device.abort_session();
        }
    }
    let hsc_storage = verifier.storage_bytes();

    let replay = replay_campaign(&mut device, &mut verifier, attack_attempts).expect("replay");
    let mitm = mitm_tamper_campaign(&mut device, &mut verifier, attack_attempts, 7).expect("mitm");
    let forgery = forgery_campaign(&mut verifier, attack_attempts, 8);
    let desync_attempts = attack_attempts / 2;
    let recoveries_before = verifier.desync_recoveries();
    let desync =
        desync_suppression_campaign(&mut device, &mut verifier, desync_attempts).expect("desync");
    let desync_recoveries = verifier.desync_recoveries() - recoveries_before;

    // Baseline: the database protocol burns one enrolled CRP per session
    // — the verifier must pre-store `sessions` CRPs (64-bit challenge +
    // 63-bit response each).
    let database_storage = {
        // Account exactly as CrpDatabase does.
        let db: CrpDatabase = (0..sessions)
            .map(|i| neuropuls_puf::enrollment::Crp {
                challenge: neuropuls_puf::bits::Challenge::from_u64(i as u64, 64),
                response: neuropuls_puf::bits::Response::from_u64(i as u64, 63),
            })
            .collect();
        db.storage_bytes()
    };

    let mut out = Rendered::new(format!(
        "E4 (Fig. 4) — mutual authentication, {sessions} sessions"
    ));
    out.push(format!(
        "genuine sessions: {genuine_ok}/{sessions} succeeded (FRR {:.2}%)",
        (sessions - genuine_ok) as f64 / sessions as f64 * 100.0
    ));
    out.push(format!(
        "replay attack    : {}/{} accepted",
        replay.successes, replay.attempts
    ));
    out.push(format!(
        "MITM bit-flips   : {}/{} accepted",
        mitm.successes, mitm.attempts
    ));
    out.push(format!(
        "blind forgeries  : {}/{} accepted",
        forgery.successes, forgery.attempts
    ));
    out.push(format!(
        "Msg3 suppression : {}/{} lockouts ({} previous-CRP recoveries)",
        desync.successes, desync.attempts, desync_recoveries
    ));
    out.push(format!(
        "verifier storage : HSC-IoT {hsc_storage} B (constant) vs CRP database {database_storage} B \
         ({}x) for {sessions} sessions",
        database_storage / hsc_storage.max(1)
    ));
    (
        out,
        Outcome {
            genuine_ok,
            genuine_total: sessions,
            replay_successes: replay.successes,
            mitm_successes: mitm.successes,
            forgery_successes: forgery.successes,
            desync_successes: desync.successes,
            desync_recoveries,
            hsc_storage,
            database_storage,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_auth_campaign() {
        let (_, o) = run(Scale::Smoke);
        assert!(
            o.genuine_ok * 10 >= o.genuine_total * 9,
            "too many genuine failures"
        );
        assert_eq!(o.replay_successes, 0);
        assert_eq!(o.mitm_successes, 0);
        assert_eq!(o.forgery_successes, 0);
        assert_eq!(o.desync_successes, 0);
        assert_eq!(o.desync_recoveries, 5);
        // Database storage scales linearly with sessions; HSC-IoT is constant.
        assert!(
            o.hsc_storage <= 100,
            "HSC storage {} not constant-sized",
            o.hsc_storage
        );
        assert!(o.database_storage >= o.genuine_total * 16);
    }
}
