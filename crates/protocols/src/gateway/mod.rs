//! Concurrent session gateway: many wire sessions, one transport.
//!
//! The §III drivers in [`crate::wire`] run exactly one session per
//! channel. A production verifier terminates *fleets*: hundreds of
//! devices authenticate, attest, key-exchange and stream inference
//! blobs over one physical link. This module multiplexes any number of
//! concurrent [`Session`] pairs — all four protocols mixed freely —
//! over a single shared [`Transport`] by demultiplexing on the
//! [`Envelope`] tags (`protocol`, `session`) that every frame already
//! carries.
//!
//! # Module tree
//!
//! | module | owns |
//! |---|---|
//! | [`mod@admission`] | [`ClassId`] traffic classes, [`AdmissionRequest`], the [`AdmissionPolicy`] trait and its [`Fifo`] / [`DeficitWeightedRoundRobin`] / [`SlaDeadline`] implementations |
//! | `slot` | [`SessionPair`], per-side ARQ/wake bookkeeping, the shared side-step core and the dense-counterfactual step accounting |
//! | `dense` | [`GatewayConfig`] and [`run_gateway`] — the batch driver |
//! | `persistent` | [`KeepAlive`], [`PersistentConfig`] and [`run_persistent_gateway`] — the resident keep-alive driver |
//! | `report` | [`GatewayReport`], [`PersistentReport`], [`ClassReport`] and the per-class registry accounting |
//!
//! # Scheduling model
//!
//! The gateway is a deterministic *event-driven* poll loop. The
//! original implementation stepped every active session on every tick,
//! so a session idling out a 3-tick ARQ timeout cost as much as one
//! doing work. The current loop instead wakes a session side only when
//! something can actually happen to it — a frame arrived for it, or
//! its ARQ timer (announced via [`Session::next_wake`]) expires — and
//! fast-forwards the skipped silent steps in O(1) with
//! [`Session::skip_silence`]. Timer expiry is tracked by a
//! [`neuropuls_rt::sched::TimerWheel`], so per-tick work is
//! proportional to the number of *runnable* sides, not the number of
//! active sessions.
//!
//! Each tick:
//!
//! 1. **Admit** — sessions move backlog → accept queue → active set.
//!    The backlog drains in the order chosen by the configured
//!    [`AdmissionPolicy`] ([`Fifo`] by default — submission order,
//!    byte-identical to the pre-policy gateway); the accept queue is
//!    bounded ([`GatewayConfig::accept_queue`]) and the active set is
//!    bounded ([`GatewayConfig::max_active`]); a session's ARQ clock
//!    only runs while it is active, so queued sessions cannot time out
//!    waiting for admission. Newly admitted sides arm their first wake.
//! 2. **Expire** — the timer wheel advances one tick and yields the
//!    sides whose ARQ deadline is now.
//! 3. **Route A** — every frame pending on [`Side::A`] is decoded and
//!    appended to the owning session's initiator inbox; the owning
//!    side becomes runnable.
//! 4. **Step runnable initiators** — each runnable initiator is
//!    stepped with at most one inbox frame, ordered by the same
//!    tick-rotated round-robin the dense loop used, so no session
//!    systematically transmits first and the shared-wire send order is
//!    identical to the dense schedule.
//! 5. **Route B / step runnable responders** — the mirror image for
//!    [`Side::B`].
//! 6. **Close** — slots touched this tick whose two sides both
//!    finished (or either side failed) leave the active set, freeing
//!    capacity for the queue.
//!
//! The wake contract makes this observationally identical to the dense
//! loop: a session reporting [`NextWake::In`]`(n)` guarantees its next
//! `n - 1` frameless steps are silent idle-clock ticks, which
//! `skip_silence` replays in one call right before the next real step.
//! The per-session cadence of [`crate::wire::drive`] is
//! preserved exactly: an initiator frame sent on tick *t* reaches the
//! responder on tick *t*, and the reply reaches the initiator on tick
//! *t + 1*. Over a lossless transport the gateway therefore produces,
//! per session, byte-identical wire transcripts to running each
//! session alone (`tests/` pins this property), and the golden
//! mixed-protocol trace is byte-identical to the dense loop's.
//!
//! # Admission policies and traffic classes
//!
//! Every [`SessionPair`] carries a host-side [`ClassId`] (derived from
//! the protocol tag by default, overridable with
//! [`SessionPair::with_class`]; never encoded on the wire). The
//! backlog is owned by a boxed [`AdmissionPolicy`]:
//!
//! * [`Fifo`] — submission order. The default, and byte-identical to
//!   the pre-policy gateway on every golden transcript.
//! * [`DeficitWeightedRoundRobin`] — per-class deficit round-robin
//!   with configurable weights: every backlogged class is visited in
//!   rotation and admits sessions in proportion to its weight, so an
//!   overload burst in one class cannot head-of-line-block the others.
//! * [`SlaDeadline`] — earliest-admission-deadline-first over the
//!   deadlines sessions already announce via [`Session::next_wake`],
//!   with optional per-class SLA offsets.
//!
//! [`GatewayReport::per_class`] breaks admissions and backlog waits
//! out per class (mirrored into the trace [`Registry`] as
//! `gateway.class.<label>.*`), which is what `exp_admission` (E24)
//! uses to show FIFO starving a minority class under overload while
//! DWRR bounds every class's p99 admission wait.
//!
//! # Demux rules
//!
//! * Frames that do not decode as an [`Envelope`] are dropped and
//!   counted (`undecodable_frames`); a session treats a missing frame
//!   exactly like decoded noise, so this cannot change behavior.
//! * Frames whose `(protocol, session)` key matches a *closed* slot are
//!   late arrivals — duplicates or reordered stragglers from a session
//!   that already completed. They are dropped and counted
//!   (`late_frames`), never silently lost.
//! * Frames with an unknown key are counted as `unroutable_frames`.
//!
//! The gateway itself is single-threaded and allocation-light;
//! fleet-scale runs fan out *independent* gateways (one per shared
//! link) on `neuropuls_rt::pool`, whose ordered-merge contract keeps
//! the aggregate deterministic under any thread count.
//!
//! [`Session`]: crate::wire::Session
//! [`Session::next_wake`]: crate::wire::Session::next_wake
//! [`Session::skip_silence`]: crate::wire::Session::skip_silence
//! [`Transport`]: crate::transport::Transport
//! [`Envelope`]: crate::wire::Envelope
//! [`Side::A`]: crate::transport::Side::A
//! [`Side::B`]: crate::transport::Side::B
//! [`NextWake::In`]: crate::wire::NextWake::In
//! [`Registry`]: neuropuls_rt::trace::Registry

pub mod admission;
mod dense;
mod persistent;
mod report;
mod slot;

pub use admission::{
    AdmissionPolicy, AdmissionRequest, ClassId, DeficitWeightedRoundRobin, Fifo, SlaDeadline,
};
pub use dense::{run_gateway, GatewayConfig};
pub use persistent::{
    run_persistent_gateway, EpochOutcome, EpochSession, KeepAlive, PersistentConfig, SlotVerdict,
};
pub use report::{ClassReport, GatewayOutcome, GatewayReport, PersistentReport};
pub use slot::SessionPair;

use crate::wire::ProtocolId;

/// Human-readable protocol label for traces and reports.
pub fn protocol_label(protocol: ProtocolId) -> &'static str {
    match protocol {
        ProtocolId::MutualAuth => "mutual_auth",
        ProtocolId::Attestation => "attestation",
        ProtocolId::Eke => "eke",
        ProtocolId::SecureNn => "secure_nn",
    }
}

#[cfg(test)]
mod tests;
