//! Microring resonators — the memory elements of the PUF architecture.
//!
//! §II-A of the paper: "Memory effects, e.g., for resonant devices, will
//! also be used to mix up incoming signals in time with previous ones,
//! therefore having past bits interacting with present ones, similarly to
//! what happens in reservoir computing", and the authors' demonstrated
//! architecture \[12\] is "based on microring resonator arrays".
//!
//! The ring is simulated in the time domain with its round-trip treated as
//! one sample delay (the sample period being the bit period of the
//! modulator), which is the discrete all-pass filter
//!
//! ```text
//! E_circ[n] = i·k·E_in[n] + r·a·e^{iφ}·E_circ[n-1]
//! E_out [n] = r·E_in[n] + i·k·a·e^{iφ}·E_circ[n-1]
//! ```
//!
//! with through-coupling `r`, cross-coupling `k` (r² + k² = 1), round-trip
//! amplitude `a` and round-trip phase `φ` (process-random and temperature
//! dependent). The recursion gives every output bit a dependence on *all*
//! previous bits — the reservoir-like mixing the paper exploits against
//! machine-learning attacks.

use crate::complex::Complex64;
use crate::environment::Environment;
use crate::process::DieSampler;

/// Residual thermo-optic sensitivity of the rings after the platform's
/// athermal overcladding. Bare-silicon rings shift ≈ 70–80 pm/K and
/// would detune by a full linewidth within ~10 K — useless without
/// active tuning. The fabricated arrays instead use a negative-dn/dT
/// cladding (TiO₂/polymer) that cancels ≈ 90 % of the silicon
/// coefficient, the standard passive compensation for untuned resonator
/// banks. The residual keeps rings temperature-*sensitive* (drift grows
/// with excursion) without the resonance racing through several FSRs.
const ATHERMAL_RESIDUAL: f64 = 0.1;

/// An all-pass microring resonator with one-sample round-trip delay.
#[derive(Debug, Clone)]
pub struct Microring {
    /// Through (self) coupling coefficient `r`.
    pub r: f64,
    /// Cross coupling coefficient `k` (√(1-r²)).
    pub k: f64,
    /// Round-trip amplitude transmission `a`.
    pub a: f64,
    /// Round-trip phase at the reference temperature (process-random).
    pub phi: f64,
    /// Ring circumference in µm (temperature sensitivity).
    pub circumference_um: f64,
    circulating: Complex64,
}

impl Microring {
    /// Builds a ring with nominal power cross-coupling `kappa2` and
    /// round-trip loss `loss_db`, drawing its detuning from the die.
    ///
    /// # Panics
    ///
    /// Panics if `kappa2` is outside `(0, 1)`.
    pub fn sampled(kappa2: f64, loss_db: f64, circumference_um: f64, die: &mut DieSampler) -> Self {
        assert!(
            kappa2 > 0.0 && kappa2 < 1.0,
            "cross coupling must be in (0,1)"
        );
        let k = (kappa2.sqrt() + die.coupling_offset()).clamp(0.05, 0.999);
        let r = (1.0 - k * k).sqrt();
        let nominal_a = 10f64.powf(-loss_db / 20.0);
        Microring {
            r,
            k,
            a: die.loss_factor(nominal_a),
            phi: die.ring_detune(),
            circumference_um,
            circulating: Complex64::ZERO,
        }
    }

    /// Clears the stored circulating field (start of a fresh
    /// interrogation).
    pub fn reset(&mut self) {
        self.circulating = Complex64::ZERO;
    }

    /// Advances the ring by one sample.
    pub fn step(&mut self, input: Complex64, env: &Environment) -> Complex64 {
        let phi = self.phi + ATHERMAL_RESIDUAL * env.thermo_optic_phase(self.circumference_um);
        let feedback = Complex64::from_polar(self.a, phi);
        let delayed = self.circulating * feedback;
        let ik = Complex64::new(0.0, self.k);
        let output = input.scale(self.r) + delayed * ik;
        self.circulating = input * ik + delayed.scale(self.r);
        output
    }

    /// Steady-state (CW) complex transmission at the reference
    /// environment — the analytic all-pass response used to cross-check
    /// the time-domain recursion.
    pub fn cw_response(&self, env: &Environment) -> Complex64 {
        let phi = self.phi + ATHERMAL_RESIDUAL * env.thermo_optic_phase(self.circumference_um);
        let ae = Complex64::from_polar(self.a, phi);
        // H = (r - a·e^{iφ}) / (1 - r·a·e^{iφ}) for the all-pass ring with
        // the i·k coupling convention: derive from the recursion at z=1.
        let ik = Complex64::new(0.0, self.k);
        // E_circ = i·k·E_in / (1 - r·a·e^{iφ})
        let circ = ik / (Complex64::ONE - ae.scale(self.r));
        // E_out = r·E_in + i·k·a·e^{iφ}·E_circ
        Complex64::from(self.r) + ik * ae * circ
    }

    /// Energy decay rate: fraction of circulating power lost per round
    /// trip.
    pub fn round_trip_loss(&self) -> f64 {
        1.0 - self.a * self.a
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::process::{DieId, ProcessVariation};

    fn ring(seed: u64) -> Microring {
        let mut die = DieSampler::new(DieId(seed), ProcessVariation::typical_soi());
        Microring::sampled(0.3, 0.5, 60.0, &mut die)
    }

    #[test]
    fn lossless_ring_conserves_energy_in_steady_state() {
        let mut die = DieSampler::new(DieId(1), ProcessVariation::tight(0.0));
        let mut r = Microring::sampled(0.3, 0.0, 60.0, &mut die);
        // Drive with CW for many samples; with a=1 the all-pass transmits
        // |H|=1 in steady state.
        let env = Environment::nominal();
        let mut out = Complex64::ZERO;
        for _ in 0..5000 {
            out = r.step(Complex64::ONE, &env);
        }
        assert!(
            (out.norm_sqr() - 1.0).abs() < 1e-6,
            "|out|² = {}",
            out.norm_sqr()
        );
    }

    #[test]
    fn time_domain_converges_to_cw_response() {
        let mut r = ring(5);
        let env = Environment::nominal();
        let analytic = r.cw_response(&env);
        let mut out = Complex64::ZERO;
        for _ in 0..2000 {
            out = r.step(Complex64::ONE, &env);
        }
        assert!(
            (out - analytic).abs() < 1e-9,
            "time-domain {out} vs analytic {analytic}"
        );
    }

    #[test]
    fn ring_has_memory() {
        // A single impulse must produce a decaying tail, not a single
        // output sample.
        let mut r = ring(6);
        let env = Environment::nominal();
        let first = r.step(Complex64::ONE, &env);
        let tail1 = r.step(Complex64::ZERO, &env);
        let tail2 = r.step(Complex64::ZERO, &env);
        assert!(first.abs() > 0.0);
        assert!(tail1.abs() > 1e-6, "no memory tail");
        assert!(tail2.abs() < tail1.abs(), "tail must decay");
    }

    #[test]
    fn reset_clears_state() {
        let mut r = ring(7);
        let env = Environment::nominal();
        let fresh = r.step(Complex64::ONE, &env);
        r.step(Complex64::ZERO, &env);
        r.reset();
        let again = r.step(Complex64::ONE, &env);
        assert!((fresh - again).abs() < 1e-15);
    }

    #[test]
    fn output_power_never_exceeds_cumulative_input() {
        let mut r = ring(8);
        let env = Environment::nominal();
        let mut in_energy = 0.0;
        let mut out_energy = 0.0;
        for n in 0..200 {
            let input = if n % 3 == 0 {
                Complex64::ONE
            } else {
                Complex64::ZERO
            };
            in_energy += input.norm_sqr();
            out_energy += r.step(input, &env).norm_sqr();
            assert!(
                out_energy <= in_energy + 1e-9,
                "passivity violated at sample {n}"
            );
        }
    }

    #[test]
    fn temperature_shifts_response() {
        let r = ring(9);
        let cold = r.cw_response(&Environment::at_temperature(20.0));
        let hot = r.cw_response(&Environment::at_temperature(30.0));
        assert!((cold - hot).abs() > 1e-3);
    }

    #[test]
    fn different_dies_have_different_detunings() {
        let a = ring(10);
        let b = ring(11);
        assert!((a.phi - b.phi).abs() > 1e-6);
    }
}
