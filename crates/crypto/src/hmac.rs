//! HMAC-SHA-256 (RFC 2104 / FIPS 198-1).
//!
//! This is the `MAC(data, key)` function of the paper's mutual
//! authentication protocol (Fig. 4): the Device signs its message with the
//! current PUF response `r_i` as the key, and the Verifier signs the fresh
//! challenge with `r_{i+1}`.

use crate::ct::ct_eq;
use crate::sha256::{Sha256, BLOCK_LEN, DIGEST_LEN};
use crate::CryptoError;

/// Length of an HMAC-SHA-256 tag in bytes.
pub const TAG_LEN: usize = DIGEST_LEN;

/// Incremental HMAC-SHA-256 computation.
///
/// # Example
///
/// ```
/// use neuropuls_crypto::hmac::HmacSha256;
///
/// let tag = HmacSha256::mac(b"response-i", b"message");
/// assert!(HmacSha256::verify(b"response-i", b"message", &tag).is_ok());
/// ```
#[derive(Debug, Clone)]
pub struct HmacSha256 {
    inner: Sha256,
    opad_key: [u8; BLOCK_LEN],
}

impl HmacSha256 {
    /// Creates a MAC instance keyed with `key` (any length; keys longer than
    /// the block size are hashed first, per RFC 2104).
    pub fn new(key: &[u8]) -> Self {
        let mut block_key = [0u8; BLOCK_LEN];
        if key.len() > BLOCK_LEN {
            block_key[..DIGEST_LEN].copy_from_slice(&Sha256::digest(key));
        } else {
            block_key[..key.len()].copy_from_slice(key);
        }

        let mut ipad_key = [0u8; BLOCK_LEN];
        let mut opad_key = [0u8; BLOCK_LEN];
        for i in 0..BLOCK_LEN {
            ipad_key[i] = block_key[i] ^ 0x36;
            opad_key[i] = block_key[i] ^ 0x5c;
        }

        let mut inner = Sha256::new();
        inner.update(&ipad_key);
        HmacSha256 { inner, opad_key }
    }

    /// Absorbs message bytes.
    pub fn update(&mut self, data: &[u8]) {
        self.inner.update(data);
    }

    /// Finishes and returns the authentication tag.
    pub fn finalize(self) -> [u8; TAG_LEN] {
        let inner_digest = self.inner.finalize();
        let mut outer = Sha256::new();
        outer.update(&self.opad_key);
        outer.update(&inner_digest);
        outer.finalize()
    }

    /// One-shot MAC of `data` under `key`.
    pub fn mac(key: &[u8], data: &[u8]) -> [u8; TAG_LEN] {
        let mut mac = HmacSha256::new(key);
        mac.update(data);
        mac.finalize()
    }

    /// One-shot MAC over the concatenation of `parts`.
    pub fn mac_parts(key: &[u8], parts: &[&[u8]]) -> [u8; TAG_LEN] {
        let mut mac = HmacSha256::new(key);
        for part in parts {
            mac.update(part);
        }
        mac.finalize()
    }

    /// Verifies `tag` against the MAC of `data` under `key` in constant
    /// time.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::MacMismatch`] when the tag does not
    /// authenticate the data.
    pub fn verify(key: &[u8], data: &[u8], tag: &[u8]) -> Result<(), CryptoError> {
        let expected = Self::mac(key, data);
        if ct_eq(&expected, tag) {
            Ok(())
        } else {
            Err(CryptoError::MacMismatch)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    // RFC 4231 test case 1.
    #[test]
    fn rfc4231_case1() {
        let key = [0x0b; 20];
        let tag = HmacSha256::mac(&key, b"Hi There");
        assert_eq!(
            hex(&tag),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    // RFC 4231 test case 2: short ascii key "Jefe".
    #[test]
    fn rfc4231_case2() {
        let tag = HmacSha256::mac(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            hex(&tag),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    // RFC 4231 test case 6: key longer than the block size.
    #[test]
    fn rfc4231_case6_long_key() {
        let key = [0xaa; 131];
        let tag = HmacSha256::mac(
            &key,
            b"Test Using Larger Than Block-Size Key - Hash Key First",
        );
        assert_eq!(
            hex(&tag),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn verify_roundtrip_and_reject() {
        let tag = HmacSha256::mac(b"key", b"data");
        assert!(HmacSha256::verify(b"key", b"data", &tag).is_ok());
        assert_eq!(
            HmacSha256::verify(b"key", b"datb", &tag),
            Err(CryptoError::MacMismatch)
        );
        assert_eq!(
            HmacSha256::verify(b"kez", b"data", &tag),
            Err(CryptoError::MacMismatch)
        );
        assert_eq!(
            HmacSha256::verify(b"key", b"data", &tag[..31]),
            Err(CryptoError::MacMismatch)
        );
    }

    #[test]
    fn mac_parts_matches_concat() {
        let concat = HmacSha256::mac(b"k", b"part1part2");
        let parts = HmacSha256::mac_parts(b"k", &[b"part1", b"part2"]);
        assert_eq!(concat, parts);
    }

    #[test]
    fn incremental_matches_oneshot() {
        let mut mac = HmacSha256::new(b"key");
        mac.update(b"da");
        mac.update(b"ta");
        assert_eq!(mac.finalize(), HmacSha256::mac(b"key", b"data"));
    }
}
