//! RV32IM instruction-set simulator.
//!
//! A compact in-order core model: the full RV32I base ISA plus the M
//! extension, a simple cycle model (1 cycle per instruction, +1 per
//! memory access, +2 per taken branch, +3/+33 for MUL/DIV), and
//! `rdcycle`/`rdinstret` CSRs so firmware can self-time (the clock-count
//! evidence of the mutual-authentication protocol).

use crate::bus::{Bus, BusFault};

/// Why execution stopped or trapped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Trap {
    /// Memory access fault.
    Bus(BusFault),
    /// Undecodable instruction word at pc.
    IllegalInstruction {
        /// Program counter.
        pc: u32,
        /// Offending instruction word.
        word: u32,
    },
    /// Environment call (the SoC interprets the syscall registers).
    Ecall,
    /// Breakpoint.
    Ebreak,
}

impl From<BusFault> for Trap {
    fn from(fault: BusFault) -> Self {
        Trap::Bus(fault)
    }
}

/// The CPU core.
#[derive(Debug, Clone)]
pub struct Cpu {
    /// General-purpose registers (x0 hard-wired to zero).
    pub regs: [u32; 32],
    /// Program counter.
    pub pc: u32,
    /// Retired instruction count.
    pub instret: u64,
    /// Cycle count under the simple timing model.
    pub cycles: u64,
}

impl Cpu {
    /// Creates a core with pc at `reset_pc`.
    pub fn new(reset_pc: u32) -> Self {
        Cpu {
            regs: [0; 32],
            pc: reset_pc,
            instret: 0,
            cycles: 0,
        }
    }

    fn set_reg(&mut self, rd: usize, value: u32) {
        if rd != 0 {
            self.regs[rd] = value;
        }
    }

    /// Executes one instruction.
    ///
    /// # Errors
    ///
    /// Returns a [`Trap`] on faults, illegal instructions, `ecall` and
    /// `ebreak` (pc is left *at* the trapping instruction for
    /// ecall/ebreak so the SoC can resume past it).
    pub fn step(&mut self, bus: &mut Bus) -> Result<(), Trap> {
        let pc = self.pc;
        let word = bus.read32(pc)?;
        let opcode = word & 0x7F;
        let rd = ((word >> 7) & 0x1F) as usize;
        let rs1 = ((word >> 15) & 0x1F) as usize;
        let rs2 = ((word >> 20) & 0x1F) as usize;
        let funct3 = (word >> 12) & 0x7;
        let funct7 = (word >> 25) & 0x7F;

        let mut next_pc = pc.wrapping_add(4);
        let mut cost = 1u64;

        match opcode {
            0x37 => self.set_reg(rd, word & 0xFFFF_F000), // LUI
            0x17 => self.set_reg(rd, pc.wrapping_add(word & 0xFFFF_F000)), // AUIPC
            0x6F => {
                // JAL
                let imm = ((word & 0x8000_0000) as i32 >> 11) as u32 & 0xFFF0_0000
                    | (word & 0x000F_F000)
                    | ((word >> 9) & 0x0000_0800)
                    | ((word >> 20) & 0x0000_07FE);
                self.set_reg(rd, next_pc);
                next_pc = pc.wrapping_add(imm);
                cost += 2;
            }
            0x67 => {
                // JALR
                let imm = (word as i32 >> 20) as u32;
                let target = self.regs[rs1].wrapping_add(imm) & !1;
                self.set_reg(rd, next_pc);
                next_pc = target;
                cost += 2;
            }
            0x63 => {
                // Branches
                let imm = ((word & 0x8000_0000) as i32 >> 19) as u32 & 0xFFFF_F000
                    | ((word << 4) & 0x0000_0800)
                    | ((word >> 20) & 0x0000_07E0)
                    | ((word >> 7) & 0x0000_001E);
                let a = self.regs[rs1];
                let b = self.regs[rs2];
                let taken = match funct3 {
                    0b000 => a == b,
                    0b001 => a != b,
                    0b100 => (a as i32) < (b as i32),
                    0b101 => (a as i32) >= (b as i32),
                    0b110 => a < b,
                    0b111 => a >= b,
                    _ => return Err(Trap::IllegalInstruction { pc, word }),
                };
                if taken {
                    next_pc = pc.wrapping_add(imm);
                    cost += 2;
                }
            }
            0x03 => {
                // Loads
                let imm = (word as i32 >> 20) as u32;
                let addr = self.regs[rs1].wrapping_add(imm);
                let value = match funct3 {
                    0b000 => bus.read8(addr)? as i8 as i32 as u32,
                    0b001 => bus.read16(addr)? as i16 as i32 as u32,
                    0b010 => bus.read32(addr)?,
                    0b100 => bus.read8(addr)? as u32,
                    0b101 => bus.read16(addr)? as u32,
                    _ => return Err(Trap::IllegalInstruction { pc, word }),
                };
                self.set_reg(rd, value);
                cost += 1;
            }
            0x23 => {
                // Stores
                let imm = (((word & 0xFE00_0000) as i32 >> 20) as u32) | ((word >> 7) & 0x1F);
                let addr = self.regs[rs1].wrapping_add(imm);
                match funct3 {
                    0b000 => bus.write8(addr, self.regs[rs2] as u8)?,
                    0b001 => bus.write16(addr, self.regs[rs2] as u16)?,
                    0b010 => bus.write32(addr, self.regs[rs2])?,
                    _ => return Err(Trap::IllegalInstruction { pc, word }),
                }
                cost += 1;
            }
            0x13 => {
                // OP-IMM
                let imm = (word as i32 >> 20) as u32;
                let a = self.regs[rs1];
                let shamt = imm & 0x1F;
                let value = match funct3 {
                    0b000 => a.wrapping_add(imm),
                    0b010 => u32::from((a as i32) < (imm as i32)),
                    0b011 => u32::from(a < imm),
                    0b100 => a ^ imm,
                    0b110 => a | imm,
                    0b111 => a & imm,
                    0b001 => a << shamt,
                    0b101 => {
                        if (word >> 30) & 1 == 1 {
                            ((a as i32) >> shamt) as u32
                        } else {
                            a >> shamt
                        }
                    }
                    _ => return Err(Trap::IllegalInstruction { pc, word }),
                };
                self.set_reg(rd, value);
            }
            // RISC-V semantics for division by zero (DIV/REM return
            // all-ones / the dividend) are spelled out explicitly rather
            // than via checked_div, mirroring the ISA manual.
            #[allow(clippy::manual_checked_ops)]
            0x33 => {
                // OP
                let a = self.regs[rs1];
                let b = self.regs[rs2];
                let value = if funct7 == 0x01 {
                    // M extension
                    cost += if funct3 < 4 { 3 } else { 33 };
                    match funct3 {
                        0b000 => a.wrapping_mul(b),
                        0b001 => ((a as i32 as i64 * b as i32 as i64) >> 32) as u32,
                        0b010 => ((a as i32 as i64).wrapping_mul(b as u64 as i64) >> 32) as u32,
                        0b011 => ((a as u64 * b as u64) >> 32) as u32,
                        0b100 => {
                            // DIV
                            if b == 0 {
                                u32::MAX
                            } else if a as i32 == i32::MIN && b as i32 == -1 {
                                a
                            } else {
                                ((a as i32) / (b as i32)) as u32
                            }
                        }
                        0b101 => {
                            if b == 0 {
                                u32::MAX
                            } else {
                                a / b
                            }
                        }
                        0b110 => {
                            if b == 0 {
                                a
                            } else if a as i32 == i32::MIN && b as i32 == -1 {
                                0
                            } else {
                                ((a as i32) % (b as i32)) as u32
                            }
                        }
                        0b111 => {
                            if b == 0 {
                                a
                            } else {
                                a % b
                            }
                        }
                        _ => return Err(Trap::IllegalInstruction { pc, word }),
                    }
                } else {
                    match (funct3, funct7) {
                        (0b000, 0x00) => a.wrapping_add(b),
                        (0b000, 0x20) => a.wrapping_sub(b),
                        (0b001, 0x00) => a << (b & 0x1F),
                        (0b010, 0x00) => u32::from((a as i32) < (b as i32)),
                        (0b011, 0x00) => u32::from(a < b),
                        (0b100, 0x00) => a ^ b,
                        (0b101, 0x00) => a >> (b & 0x1F),
                        (0b101, 0x20) => ((a as i32) >> (b & 0x1F)) as u32,
                        (0b110, 0x00) => a | b,
                        (0b111, 0x00) => a & b,
                        _ => return Err(Trap::IllegalInstruction { pc, word }),
                    }
                };
                self.set_reg(rd, value);
            }
            0x0F => {} // FENCE: no-op on this core
            0x73 => {
                match word {
                    0x0000_0073 => return Err(Trap::Ecall),
                    0x0010_0073 => return Err(Trap::Ebreak),
                    _ => {
                        // Minimal Zicsr: rdcycle/rdcycleh/rdinstret.
                        let csr = word >> 20;
                        if funct3 == 0b010 && rs1 == 0 {
                            let value = match csr {
                                0xC00 | 0xC01 => self.cycles as u32, // cycle/time
                                0xC80 | 0xC81 => (self.cycles >> 32) as u32,
                                0xC02 => self.instret as u32,
                                0xC82 => (self.instret >> 32) as u32,
                                _ => return Err(Trap::IllegalInstruction { pc, word }),
                            };
                            self.set_reg(rd, value);
                        } else {
                            return Err(Trap::IllegalInstruction { pc, word });
                        }
                    }
                }
            }
            _ => return Err(Trap::IllegalInstruction { pc, word }),
        }

        self.pc = next_pc;
        self.instret += 1;
        self.cycles += cost;
        Ok(())
    }

    /// Skips over the instruction at pc (used after handling
    /// ecall/ebreak).
    pub fn advance_past_trap(&mut self) {
        self.pc = self.pc.wrapping_add(4);
        self.instret += 1;
        self.cycles += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;
    use crate::bus::Ram;

    const BASE: u32 = 0x8000_0000;

    fn run(source: &str, max_steps: usize) -> (Cpu, Bus) {
        let program = assemble(source, BASE).expect("test program assembles");
        let mut bus = Bus::new(Ram::new(BASE, 64 * 1024));
        bus.load(BASE, &program).unwrap();
        let mut cpu = Cpu::new(BASE);
        for _ in 0..max_steps {
            match cpu.step(&mut bus) {
                Ok(()) => {}
                Err(Trap::Ecall) => break,
                Err(trap) => panic!("unexpected trap: {trap:?}"),
            }
        }
        (cpu, bus)
    }

    #[test]
    fn arithmetic_immediates() {
        let (cpu, _) = run(
            "addi x1, x0, 5
             addi x2, x1, -3
             slti x3, x2, 10
             xori x4, x1, 0xF
             ecall",
            10,
        );
        assert_eq!(cpu.regs[1], 5);
        assert_eq!(cpu.regs[2], 2);
        assert_eq!(cpu.regs[3], 1);
        assert_eq!(cpu.regs[4], 10);
    }

    #[test]
    fn register_ops_and_m_extension() {
        let (cpu, _) = run(
            "addi x1, x0, 7
             addi x2, x0, -3
             add x3, x1, x2
             sub x4, x1, x2
             mul x5, x1, x2
             div x6, x2, x1
             rem x7, x1, x1
             sltu x8, x2, x1
             ecall",
            12,
        );
        assert_eq!(cpu.regs[3], 4);
        assert_eq!(cpu.regs[4], 10);
        assert_eq!(cpu.regs[5] as i32, -21);
        assert_eq!(cpu.regs[6] as i32, 0); // -3 / 7 = 0
        assert_eq!(cpu.regs[7], 0);
        assert_eq!(cpu.regs[8], 0); // unsigned -3 is huge
    }

    #[test]
    fn division_edge_cases() {
        let (cpu, _) = run(
            "addi x1, x0, 5
             div x2, x1, x0
             rem x3, x1, x0
             ecall",
            6,
        );
        assert_eq!(cpu.regs[2], u32::MAX);
        assert_eq!(cpu.regs[3], 5);
    }

    #[test]
    fn loads_and_stores() {
        let (cpu, mut bus) = run(
            "lui x1, 0x80001
             addi x2, x0, -1
             sw x2, 0(x1)
             lb x3, 0(x1)
             lbu x4, 0(x1)
             addi x5, x0, 0x7F
             sb x5, 4(x1)
             lw x6, 4(x1)
             lh x7, 0(x1)
             lhu x8, 0(x1)
             ecall",
            15,
        );
        assert_eq!(cpu.regs[3], u32::MAX);
        assert_eq!(cpu.regs[4], 0xFF);
        assert_eq!(cpu.regs[6], 0x7F);
        assert_eq!(cpu.regs[7], u32::MAX);
        assert_eq!(cpu.regs[8], 0xFFFF);
        assert_eq!(bus.read32(0x8000_1000).unwrap(), u32::MAX);
    }

    #[test]
    fn branching_loop_sums() {
        // Sum 1..=10 with a bne loop.
        let (cpu, _) = run(
            "addi x1, x0, 0
             addi x2, x0, 1
             addi x3, x0, 11
             loop:
             add x1, x1, x2
             addi x2, x2, 1
             bne x2, x3, loop
             ecall",
            100,
        );
        assert_eq!(cpu.regs[1], 55);
    }

    #[test]
    fn jal_and_jalr_call_return() {
        let (cpu, _) = run(
            "addi x10, x0, 1
             jal x1, func
             addi x10, x10, 100
             ecall
             func:
             addi x10, x10, 10
             jalr x0, x1, 0",
            20,
        );
        assert_eq!(cpu.regs[10], 111);
    }

    #[test]
    fn x0_stays_zero() {
        let (cpu, _) = run(
            "addi x0, x0, 5
             add x1, x0, x0
             ecall",
            5,
        );
        assert_eq!(cpu.regs[0], 0);
        assert_eq!(cpu.regs[1], 0);
    }

    #[test]
    fn rdcycle_is_monotone() {
        let (cpu, _) = run(
            "rdcycle x1
             addi x5, x0, 1
             addi x5, x0, 2
             rdcycle x2
             ecall",
            8,
        );
        assert!(cpu.regs[2] > cpu.regs[1]);
    }

    #[test]
    fn illegal_instruction_traps() {
        let mut bus = Bus::new(Ram::new(BASE, 1024));
        bus.load(BASE, &0xFFFF_FFFFu32.to_le_bytes()).unwrap();
        let mut cpu = Cpu::new(BASE);
        assert!(matches!(
            cpu.step(&mut bus),
            Err(Trap::IllegalInstruction { .. })
        ));
    }

    #[test]
    fn bus_fault_propagates() {
        let mut bus = Bus::new(Ram::new(BASE, 1024));
        // lw x1, 0(x0) → reads address 0, unmapped.
        let program = assemble("lw x1, 0(x0)", BASE).unwrap();
        bus.load(BASE, &program).unwrap();
        let mut cpu = Cpu::new(BASE);
        assert!(matches!(cpu.step(&mut bus), Err(Trap::Bus(_))));
    }

    #[test]
    fn signed_branches() {
        let (cpu, _) = run(
            "addi x1, x0, -1
             addi x2, x0, 1
             blt x1, x2, less
             addi x3, x0, 99
             less:
             addi x4, x0, 7
             bge x2, x1, done
             addi x5, x0, 99
             done:
             ecall",
            20,
        );
        assert_eq!(cpu.regs[3], 0);
        assert_eq!(cpu.regs[4], 7);
        assert_eq!(cpu.regs[5], 0);
    }
}
