//! Integration test of the §II-A quality claims: the simulated photonic
//! PUF population must exhibit the statistics the paper reports for the
//! microring-array demonstrator \[12\] — fractional Hamming distance close
//! to the ideal inter-device, high reliability intra-device, and good
//! NIST statistical-test scores.

use neuropuls::metrics::entropy::min_entropy_per_bit;
use neuropuls::metrics::nist;
use neuropuls::metrics::quality::quality_report;
use neuropuls::photonic::process::DieId;
use neuropuls::puf::bits::Challenge;
use neuropuls::puf::photonic::PhotonicPuf;
use neuropuls::puf::traits::Puf;
use neuropuls_rt::rngs::StdRng;
use neuropuls_rt::SeedableRng;

const DEVICES: usize = 12;
const REREADS: usize = 8;

fn population() -> (Vec<Vec<u8>>, Vec<Vec<Vec<u8>>>) {
    let mut rng = StdRng::seed_from_u64(0xE2);
    let challenge = Challenge::random(64, &mut rng);
    let mut golden = Vec::with_capacity(DEVICES);
    let mut rereads = Vec::with_capacity(DEVICES);
    for d in 0..DEVICES {
        let mut puf = PhotonicPuf::reference(DieId(5000 + d as u64), 17 + d as u64);
        let g = puf.respond_golden(&challenge, 9).expect("eval");
        let r: Vec<Vec<u8>> = (0..REREADS)
            .map(|_| puf.respond(&challenge).expect("eval").into_bits())
            .collect();
        golden.push(g.into_bits());
        rereads.push(r);
    }
    (golden, rereads)
}

#[test]
fn population_statistics_match_paper_claims() {
    let (golden, rereads) = population();
    let report = quality_report(&golden, &rereads);

    assert!(
        (report.uniqueness.mean - 0.5).abs() < 0.1,
        "uniqueness {:.4} not close to 0.5",
        report.uniqueness.mean
    );
    assert!(
        report.reliability.mean > 0.95,
        "reliability {:.4} too low",
        report.reliability.mean
    );
    assert!(
        (report.uniformity.mean - 0.5).abs() < 0.12,
        "uniformity {:.4} biased",
        report.uniformity.mean
    );
    assert!(
        report.mean_bit_aliasing > 0.6,
        "mean bit-aliasing entropy {:.4} too low",
        report.mean_bit_aliasing
    );
}

#[test]
fn min_entropy_is_substantial() {
    let (golden, _) = population();
    let h = min_entropy_per_bit(&golden);
    assert!(h > 0.4, "min-entropy per bit {h:.4} too low");
}

#[test]
fn concatenated_responses_pass_most_nist_tests() {
    // Concatenate responses to many challenges from one device into a
    // long stream — the "good score for various NIST tests" claim.
    let mut puf = PhotonicPuf::reference(DieId(31337), 5);
    let mut rng = StdRng::seed_from_u64(0x1157);
    let mut bits = Vec::with_capacity(4096);
    while bits.len() < 4096 {
        let c = Challenge::random(64, &mut rng);
        bits.extend(puf.respond(&c).expect("eval").into_bits());
    }
    let results = nist::battery(&bits);
    let rate = nist::pass_rate(&results);
    assert!(
        rate >= 0.7,
        "NIST pass rate {rate:.2}: {:?}",
        results
            .iter()
            .filter(|r| !r.passed)
            .map(|r| (r.name, r.p_value))
            .collect::<Vec<_>>()
    );
}

#[test]
fn throughput_and_window_match_headline_numbers() {
    let puf = PhotonicPuf::reference(DieId(1), 1);
    // §III-B: "the inherent speed of the pPUF (at least 5 Gb/s)".
    assert!(puf.throughput_gbps() >= 5.0);
    // §IV: response present "below 100 ns".
    assert!(puf.response_window_ns() < 100.0);
}
