//! Device key provisioning from the weak PUF.
//!
//! Fig. 1's left branch: the weak PUF feeds "cryptographic key
//! generation". At manufacturing time the key is *enrolled* (fuzzy
//! extractor generate); in the field the device *reproduces* it from a
//! fresh noisy reading plus the public helper data. The key never exists
//! outside the hardware boundary — §III-C: "This key is never exposed to
//! the software layer".

use crate::error::ProtocolError;
use neuropuls_crypto::ecc::{BlockCode, ConcatenatedCode};
use neuropuls_crypto::fuzzy::{FuzzyExtractor, HelperData};
use neuropuls_crypto::prng::CsPrng;
use neuropuls_puf::traits::Puf;
use neuropuls_puf::weak::WeakPuf;

/// Public, non-secret provisioning record stored with the device.
#[derive(Debug, Clone)]
pub struct ProvisioningRecord {
    /// Fuzzy-extractor helper data.
    pub helper: HelperData,
    /// Repetition factor of the ECC used.
    pub repetition: usize,
}

/// Result of manufacturing-time enrollment: the key (delivered over a
/// secure channel to the verifier/owner) plus the public record.
#[derive(Debug, Clone)]
pub struct EnrolledKey {
    /// The 256-bit device key.
    pub key: [u8; 32],
    /// The public record the device keeps.
    pub record: ProvisioningRecord,
}

/// Enrolls a device key from a weak PUF with the concatenated
/// Hamming ⊕ repetition code.
///
/// The weak PUF's key response is truncated to a multiple of the code's
/// block size.
///
/// # Errors
///
/// Propagates PUF and fuzzy-extractor errors.
pub fn enroll_key<P: Puf>(
    weak: &mut WeakPuf<P>,
    repetition: usize,
    enrollment_reads: usize,
    enrollment_seed: &[u8],
) -> Result<EnrolledKey, ProtocolError> {
    let extractor = FuzzyExtractor::new(ConcatenatedCode::new(repetition));
    let block = extractor.code().code_bits();
    let golden = weak.golden_key_response(enrollment_reads)?;
    let usable = golden.len() / block * block;
    if usable == 0 {
        return Err(ProtocolError::MalformedCiphertext(format!(
            "weak PUF provides {} bits, fewer than one {block}-bit code block",
            golden.len()
        )));
    }
    let mut rng = CsPrng::from_seed_bytes(enrollment_seed);
    let enrollment = extractor.generate(&golden.bits()[..usable], &mut rng)?;
    Ok(EnrolledKey {
        key: enrollment.key,
        record: ProvisioningRecord {
            helper: enrollment.helper,
            repetition,
        },
    })
}

/// Reproduces the device key in the field from a fresh noisy reading.
///
/// # Errors
///
/// Fails when the reading is too noisy for the code
/// ([`ProtocolError::Crypto`]).
pub fn reproduce_key<P: Puf>(
    weak: &mut WeakPuf<P>,
    record: &ProvisioningRecord,
) -> Result<[u8; 32], ProtocolError> {
    let extractor = FuzzyExtractor::new(ConcatenatedCode::new(record.repetition));
    let reading = weak.read_key_response()?;
    let usable = record.helper.offset.len();
    if reading.len() < usable {
        return Err(ProtocolError::MalformedCiphertext(
            "weak PUF reading shorter than helper data".into(),
        ));
    }
    let key = extractor.reproduce(&reading.bits()[..usable], &record.helper)?;
    Ok(key)
}

#[cfg(test)]
mod tests {
    use super::*;
    use neuropuls_photonic::process::DieId;
    use neuropuls_puf::photonic::PhotonicPuf;

    fn weak(die: u64, noise_seed: u64) -> WeakPuf<PhotonicPuf> {
        // 7 challenges × 64 bits = 448 key-response bits; the
        // ConcatenatedCode(3) block is 21 bits → 21 blocks usable.
        WeakPuf::with_derived_challenges(PhotonicPuf::reference(DieId(die), noise_seed), 7, 0xFEED)
    }

    #[test]
    fn enrolled_key_reproduces_in_field() {
        let mut factory_view = weak(1, 100);
        let enrolled = enroll_key(&mut factory_view, 3, 15, b"factory-seed").unwrap();
        // In the field: same physical die, different noise realization.
        let mut field_view = weak(1, 200);
        let key = reproduce_key(&mut field_view, &enrolled.record).unwrap();
        assert_eq!(key, enrolled.key);
    }

    #[test]
    fn different_dies_get_different_keys() {
        let mut a = weak(2, 1);
        let mut b = weak(3, 1);
        let ka = enroll_key(&mut a, 3, 9, b"seed").unwrap();
        let kb = enroll_key(&mut b, 3, 9, b"seed").unwrap();
        assert_ne!(ka.key, kb.key);
    }

    #[test]
    fn wrong_die_cannot_reproduce() {
        let mut genuine = weak(4, 1);
        let enrolled = enroll_key(&mut genuine, 3, 9, b"seed").unwrap();
        let mut impostor = weak(5, 1);
        // A decode failure is equally acceptable.
        if let Ok(key) = reproduce_key(&mut impostor, &enrolled.record) {
            assert_ne!(key, enrolled.key, "impostor derived the genuine key");
        }
    }

    #[test]
    fn reproduction_is_stable_across_reads() {
        let mut factory_view = weak(6, 100);
        let enrolled = enroll_key(&mut factory_view, 5, 15, b"s").unwrap();
        let mut field_view = weak(6, 300);
        for _ in 0..5 {
            assert_eq!(
                reproduce_key(&mut field_view, &enrolled.record).unwrap(),
                enrolled.key
            );
        }
    }
}
