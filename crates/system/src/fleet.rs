//! Fleet-scale attestation scheduling on the discrete-event engine.
//!
//! §V's "holistic approach to modeling and simulating a heterogeneous
//! system" includes the verifier side: an edge deployment has one or
//! more verifiers attesting many devices on a period. This module
//! schedules a device fleet through [`crate::event::EventQueue`] and
//! measures verifier utilization, queue depth and per-device turnaround
//! — the capacity-planning numbers a deployment needs.
//!
//! Accounting contract (the E17 regression tests pin these):
//!
//! * `verifier_utilization` is busy time **clamped to the horizon**
//!   divided by `horizon × verifiers`, so it can never exceed 1.0 even
//!   when the farm is saturated and checks spill past the horizon;
//! * `attestations` counts exactly the requests whose verdict landed
//!   within the horizon (`requests − in_flight_at_horizon`);
//! * `mean_turnaround_us` averages over those same completed requests
//!   (the numerator and denominator describe the same population);
//! * `max_backlog` counts requests *waiting* for a verifier — a request
//!   being served is not backlog, and only requests that actually
//!   queued decrement the backlog when they finish.
//!
//! After the event-driven campaign every device additionally runs
//! mutual-authentication sessions (§III-A) over **one shared lossy
//! control link**: each round checks every device's enrollment record
//! out of a sharded, cache-fronted [`CrpStore`], multiplexes all of
//! the round's wire sessions through [`run_gateway`] over a
//! single [`FaultyChannel`], and commits the rotated CRPs back. The
//! report counts completions, retransmissions, previous-CRP desync
//! recoveries, gateway late frames and CRP-cache effectiveness across
//! the fleet.

use crate::crp_store::{CrpStore, CrpStoreConfig, CrpStoreStats};
use crate::event::{EventQueue, Tick};
use neuropuls_photonic::process::DieId;
use neuropuls_protocols::attestation::{AttestationVerifier, AttestingDevice, TimingModel};
use neuropuls_protocols::gateway::{
    run_gateway, run_persistent_gateway, ClassId, EpochOutcome, EpochSession, GatewayConfig,
    KeepAlive, PersistentConfig, SessionPair, SlotVerdict,
};
use neuropuls_protocols::mutual_auth::{
    Device as AuthDevice, Verifier as AuthVerifier, WireDevice, WireVerifier,
};
use neuropuls_protocols::transport::{FaultRates, FaultyChannel};
use neuropuls_protocols::wire::{ProtocolId, SessionConfig};
use neuropuls_puf::photonic::PhotonicPuf;
use neuropuls_rt::rngs::StdRng;
use neuropuls_rt::trace::{Registry, SpanId, Tracer};
use neuropuls_rt::{Rng, SeedableRng};

/// One device of the fleet.
struct FleetDevice {
    device: AttestingDevice,
    verifier: AttestationVerifier,
    memory_bytes: usize,
    compromised: bool,
}

/// Events in the fleet simulation.
enum FleetEvent {
    /// Device `idx` is due for attestation.
    Due(usize),
    /// A verifier finished checking device `idx`.
    Done {
        /// Device index.
        idx: usize,
        /// Verdict of the attestation.
        ok: bool,
        /// Tick at which the request was issued.
        requested_at: Tick,
        /// Whether the request waited for a busy verifier farm.
        queued: bool,
        /// Trace span opened when the check was dispatched (id 0 when
        /// tracing is disabled).
        span: SpanId,
    },
}

/// Aggregate results of a fleet campaign.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FleetReport {
    /// Devices attested.
    pub devices: usize,
    /// Verifiers in the farm.
    pub verifiers: usize,
    /// Attestation requests issued within the horizon.
    pub requests: usize,
    /// Attestations completed within the horizon.
    pub attestations: usize,
    /// Requests still being checked (or queued) when the horizon hit.
    pub in_flight_at_horizon: usize,
    /// Attestations that passed.
    pub passed: usize,
    /// Compromised devices that were caught (all of them must be).
    pub compromised_caught: usize,
    /// Compromised devices planted.
    pub compromised_planted: usize,
    /// Farm busy fraction over the campaign: horizon-clamped busy time
    /// divided by `horizon × verifiers`. Always in `[0, 1]`.
    pub verifier_utilization: f64,
    /// Maximum number of requests simultaneously waiting for a free
    /// verifier.
    pub max_backlog: usize,
    /// Mean turnaround (request → verdict) in µs over the requests that
    /// completed within the horizon.
    pub mean_turnaround_us: f64,
    /// Mutual-authentication wire sessions attempted over the lossy
    /// control link (`devices × auth_sessions`).
    pub auth_attempted: usize,
    /// Control-link sessions that completed despite frame loss.
    pub auth_completed: usize,
    /// ARQ retransmissions spent across all control-link sessions.
    pub auth_retransmits: u64,
    /// Previous-CRP desynchronization recoveries across the fleet.
    pub auth_desync_recoveries: u64,
    /// Gateway ticks spent across all control-link rounds.
    pub auth_gateway_ticks: u64,
    /// Frames that arrived for already-closed sessions on the shared
    /// link (counted by the gateway and the inter-round drain — never
    /// silently dropped).
    pub auth_late_frames: u64,
    /// CRP-store cache counters across the control-link phase.
    pub crp: CrpStoreStats,
}

/// Simulation parameters.
#[derive(Debug, Clone, Copy)]
pub struct FleetConfig {
    /// Number of devices.
    pub devices: usize,
    /// Number of verifiers sharing the request queue (a verifier farm).
    pub verifiers: usize,
    /// Attestation period per device, µs of simulated time.
    pub period_us: f64,
    /// Campaign length, µs.
    pub horizon_us: f64,
    /// Fraction of devices planted with corrupted memory.
    pub compromised_fraction: f64,
    /// RNG seed (device sizes, stagger, compromise selection).
    pub seed: u64,
    /// Mutual-authentication sessions each device runs over the lossy
    /// control link after the attestation campaign (0 disables).
    pub auth_sessions: usize,
    /// Frame-loss probability of the control link carrying those
    /// sessions.
    pub auth_loss_rate: f64,
    /// Shards of the CRP/enrollment store backing the control link.
    pub crp_shards: usize,
    /// Hot-set capacity per CRP-store shard.
    pub crp_hot_capacity: usize,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            devices: 8,
            verifiers: 1,
            period_us: 20.0,
            horizon_us: 100.0,
            compromised_fraction: 0.25,
            seed: 0xF1EE7,
            auth_sessions: 2,
            auth_loss_rate: 0.1,
            crp_shards: 4,
            crp_hot_capacity: 4,
        }
    }
}

/// Runs the fleet campaign.
///
/// Each verifier is a serial resource; a request takes the earliest
/// available verifier (ties broken by verifier index, so the schedule is
/// deterministic) and queues when all are busy. Device walk time and
/// verifier check time both follow the photonic timing model (the
/// verifier must recompute the same walk).
///
/// Observability is threaded, not forked: the scheduling loop emits
/// `attest.due` instants and `attest.check` spans into `tracer` (check
/// spans opened at dispatch, closed at verdict; checks still in flight
/// at the horizon stay open, mirroring `in_flight_at_horizon`), and the
/// control-link phase emits one compact `auth.session` instant per wire
/// session. `registry` accumulates `fleet.*` counters plus turnaround
/// and queue-depth histograms. Callers that don't care pass
/// `Tracer::disabled()` and a throwaway `Registry` — observability
/// never perturbs the simulation.
///
/// # Panics
///
/// Panics when `devices` or `verifiers` is zero.
pub fn run_fleet(config: &FleetConfig, tracer: &mut Tracer, registry: &Registry) -> FleetReport {
    assert!(config.devices > 0, "fleet needs at least one device");
    assert!(config.verifiers > 0, "fleet needs at least one verifier");
    let mut rng = StdRng::seed_from_u64(config.seed);
    let timing = TimingModel::photonic();

    // Small secure-boot-sized regions: E17 studies *scheduling*, not
    // walk length (E5 covers the latter), so keep per-attestation work
    // light while the timing math stays exact.
    let mut fleet: Vec<FleetDevice> = (0..config.devices)
        .map(|i| {
            let bytes = match rng.gen_range(0..3) {
                0 => 256usize,
                1 => 512,
                _ => 1024,
            };
            let memory: Vec<u8> = (0..bytes).map(|b| (b * 31 % 251) as u8).collect();
            let die = DieId(0xF1_0000 + i as u64);
            let mut device =
                AttestingDevice::new(PhotonicPuf::reference(die, 1), memory.clone(), timing);
            let compromised = rng.gen::<f64>() < config.compromised_fraction;
            if compromised {
                device.corrupt_memory(bytes / 2, 0xEE);
            }
            FleetDevice {
                device,
                verifier: AttestationVerifier::new(PhotonicPuf::reference(die, 2), memory, timing),
                memory_bytes: bytes,
                compromised,
            }
        })
        .collect();

    // Ticks are nanoseconds here.
    let mut queue: EventQueue<FleetEvent> = EventQueue::new();
    for i in 0..config.devices {
        let stagger = rng.gen_range(0..(config.period_us * 1000.0) as u64);
        queue.schedule(stagger, FleetEvent::Due(i));
    }

    let horizon = (config.horizon_us * 1000.0) as Tick;
    let period = (config.period_us * 1000.0) as Tick;
    let mut free_at: Vec<Tick> = vec![0; config.verifiers];
    let mut busy_ns: u64 = 0;
    let mut backlog: usize = 0;
    let mut max_backlog = 0usize;
    let mut requests = 0usize;
    let mut attestations = 0usize;
    let mut passed = 0usize;
    let mut caught = vec![false; config.devices];
    let mut turnaround_sum_ns = 0u64;

    queue.run_until(horizon, |queue, now, event| match event {
        FleetEvent::Due(idx) => {
            tracer.instant(now, "attest.due", vec![("device", idx.into())]);
            let entry = &mut fleet[idx];
            let request = entry.verifier.begin();
            // A device that cannot even produce a report (bad challenge
            // width) counts as a failed attestation, not a sim crash.
            let ok = match entry.device.attest(&request) {
                Ok(report) => entry.verifier.verify(&request, &report).is_ok(),
                Err(_) => false,
            };
            // The chosen verifier recomputes the walk serially: busy for
            // the honest walk duration of this device.
            let chunks = entry.memory_bytes.div_ceil(64) as f64;
            let check_ns = (chunks * timing.chunk_ns()) as Tick;
            // Earliest-available verifier, ties to the lowest index.
            // `free_at` is non-empty (verifiers is asserted non-zero),
            // so the fallback index never fires; it exists to keep the
            // scheduling loop panic-free.
            let v = (0..free_at.len())
                .min_by_key(|&v| (free_at[v], v))
                .unwrap_or(0);
            let start = free_at[v].max(now);
            let queued = start > now;
            if queued {
                backlog += 1;
                max_backlog = max_backlog.max(backlog);
            }
            free_at[v] = start + check_ns;
            // Busy time clamped to the horizon: work scheduled past the
            // campaign end must not count toward utilization.
            busy_ns += free_at[v].min(horizon).saturating_sub(start.min(horizon));
            requests += 1;
            registry.counter("fleet.requests", 1);
            registry.observe("fleet.queue_depth", backlog as f64);
            let span = tracer.span_start(
                start,
                "attest.check",
                vec![
                    ("device", idx.into()),
                    ("verifier", v.into()),
                    ("queued", queued.into()),
                ],
            );
            queue.schedule(
                free_at[v],
                FleetEvent::Done {
                    idx,
                    ok,
                    requested_at: now,
                    queued,
                    span,
                },
            );
            // Next periodic attestation.
            if now + period <= horizon {
                queue.schedule(now + period, FleetEvent::Due(idx));
            }
        }
        FleetEvent::Done {
            idx,
            ok,
            requested_at,
            queued,
            span,
        } => {
            tracer.span_end(now, span, vec![("ok", ok.into())]);
            registry.counter("fleet.attestations", 1);
            registry.observe("fleet.turnaround_ns", (now - requested_at) as f64);
            // Only requests that actually waited ever entered the
            // backlog, so only they leave it.
            if queued {
                // invariant: every queued Done had a matching backlog
                // increment at request time; underflow means the
                // accounting itself broke, which must stay loud.
                backlog = backlog.checked_sub(1).expect("backlog underflow");
            }
            attestations += 1;
            // Turnaround accumulates at completion time, so the sum and
            // the `attestations` divisor cover the same requests.
            turnaround_sum_ns += now - requested_at;
            if ok {
                passed += 1;
                registry.counter("fleet.passed", 1);
            } else if fleet[idx].compromised {
                caught[idx] = true;
            }
        }
    });

    // Everything still scheduled is a `Done` past the horizon: requests
    // issued but not resolved in time.
    let in_flight = queue.len();
    debug_assert_eq!(attestations + in_flight, requests, "request conservation");

    // Control-link phase: every device opens mutual-authentication
    // sessions (§III-A), all rounds multiplexed by the gateway over
    // *one* shared lossy wire. Verifier-side enrollment lives in the
    // sharded CRP store: each round checks every record out (exclusive
    // — one live session per device), runs the round's sessions
    // concurrently, and commits the rotated CRPs back. The link seed is
    // derived independently of the scheduling RNG so the event-driven
    // results above are unchanged by this phase.
    let mut auth_attempted = 0usize;
    let mut auth_completed = 0usize;
    let mut auth_retransmits = 0u64;
    let mut auth_desync_recoveries = 0u64;
    let mut auth_gateway_ticks = 0u64;
    let mut auth_late_frames = 0u64;
    let mut crp = CrpStoreStats::default();
    if config.auth_sessions > 0 {
        let mut store: CrpStore<AuthVerifier> = CrpStore::new(CrpStoreConfig {
            shards: config.crp_shards,
            hot_capacity: config.crp_hot_capacity,
        });
        let mut devices: Vec<(usize, AuthDevice<PhotonicPuf>)> = Vec::new();
        for i in 0..config.devices {
            let die = DieId(0xF1_A000 + i as u64);
            let memory: Vec<u8> = (0..256).map(|b| (b * 17 % 249) as u8).collect();
            let Ok((device, provisioned)) =
                AuthDevice::provision(PhotonicPuf::reference(die, 1), memory, b"fleet-auth")
            else {
                // A device whose PUF cannot provision never joins the
                // fleet; it contributes no sessions.
                continue;
            };
            let verifier = AuthVerifier::new(provisioned, b"fleet-auth-verifier");
            if store.enroll(i as u64, verifier).is_ok() {
                devices.push((i, device));
            }
        }

        let link_seed = config.seed ^ 0xA117_0000_0000_0000;
        let mut link = FaultyChannel::new(FaultRates::loss(config.auth_loss_rate), link_seed);
        let gateway_cfg = GatewayConfig {
            max_active: 64,
            accept_queue: 16,
            max_ticks: 4096.max(config.devices as u64 * 64),
            ..GatewayConfig::default()
        };
        for round in 0..config.auth_sessions {
            // Exclusive checkout of this round's verifier records, in
            // device order (deterministic; misses are cold records the
            // hot set no longer holds).
            let mut checked: Vec<(usize, AuthVerifier)> = Vec::new();
            for &(i, _) in &devices {
                if let Ok(verifier) = store.checkout(i as u64) {
                    checked.push((i, verifier));
                }
            }
            let mut sessions: Vec<SessionPair<'_>> = Vec::new();
            for ((i, device), (_, verifier)) in devices.iter_mut().zip(checked.iter_mut()) {
                let sid = (round * config.devices + *i) as u64 + 1;
                sessions.push(
                    SessionPair::new(
                        ProtocolId::MutualAuth,
                        sid,
                        Box::new(WireVerifier::new(verifier, sid, SessionConfig::default())),
                        Box::new(WireDevice::new(device, SessionConfig::default())),
                    )
                    // Control-plane class: auth rounds must not be
                    // starved by bulk inference traffic under a
                    // class-aware policy.
                    .with_class(ClassId::CONTROL_AUTH),
                );
            }
            let gw = run_gateway(
                &mut link,
                sessions,
                gateway_cfg.clone(),
                &mut Tracer::disabled(),
                registry,
            );
            auth_gateway_ticks += gw.ticks;
            auth_late_frames += gw.late_frames;
            // Stragglers still in flight when the round's last session
            // closed surface at the next round as routing noise; drain
            // and count them instead.
            auth_late_frames += link.drain_late() as u64;
            for (outcome, &(i, _)) in gw.outcomes.iter().zip(&devices) {
                auth_attempted += 1;
                let ok = outcome.result.is_ok();
                if ok {
                    auth_completed += 1;
                }
                auth_retransmits += u64::from(outcome.retransmits);
                // One compact instant per control-link session (the
                // frame-level story lives in the protocol tracer); the
                // tick is the horizon so the event log stays monotone
                // past the event-driven phase.
                tracer.instant(
                    horizon,
                    "auth.session",
                    vec![
                        ("device", i.into()),
                        ("session", (round as u64).into()),
                        ("ok", ok.into()),
                        ("retransmits", outcome.retransmits.into()),
                    ],
                );
                registry.counter("fleet.auth_retransmits", u64::from(outcome.retransmits));
                registry.observe(
                    "fleet.auth_session_ticks",
                    f64::from(*outcome.result.as_ref().unwrap_or(&0)),
                );
            }
            for (i, verifier) in checked {
                // Unreachable error by construction (every commit
                // follows its own checkout); ignoring it keeps the
                // phase panic-free.
                let _ = store.commit(i as u64, verifier);
            }
        }
        for &(i, _) in &devices {
            if let Some(verifier) = store.peek(i as u64) {
                auth_desync_recoveries += verifier.desync_recoveries();
            }
        }
        crp = store.stats();
        store.fold_into(registry);
    }

    let planted = fleet.iter().filter(|d| d.compromised).count();
    FleetReport {
        devices: config.devices,
        verifiers: config.verifiers,
        requests,
        attestations,
        in_flight_at_horizon: in_flight,
        passed,
        compromised_caught: caught.iter().filter(|&&c| c).count(),
        compromised_planted: planted,
        verifier_utilization: busy_ns as f64 / (horizon.max(1) as f64 * config.verifiers as f64),
        max_backlog,
        mean_turnaround_us: if attestations == 0 {
            0.0
        } else {
            turnaround_sum_ns as f64 / attestations as f64 / 1000.0
        },
        auth_attempted,
        auth_completed,
        auth_retransmits,
        auth_desync_recoveries,
        auth_gateway_ticks,
        auth_late_frames,
        crp,
    }
}

// ---------------------------------------------------------------------------
// Persistent fleet sessions
// ---------------------------------------------------------------------------

/// Parameters of a persistent keep-alive fleet run.
///
/// Where [`FleetConfig`] tears every control-link session down and
/// rebuilds it per round, this model keeps each device resident in the
/// gateway across its whole lifetime: re-attestation epochs are armed
/// as per-device jittered timers on the runtime timer wheel, CRP
/// records are checked out of the sharded store at fire time and
/// committed back at epoch close, and devices churn through voluntary
/// leaves (epoch quota) and evictions (consecutive failures).
#[derive(Debug, Clone, Copy)]
pub struct PersistentFleetConfig {
    /// Devices holding keep-alive slots.
    pub devices: usize,
    /// Ticks between a device's epoch fires (measured fire-to-fire, so
    /// slow epochs don't drift the schedule).
    pub reattest_period: u64,
    /// Maximum per-fire jitter added on top of the period, drawn from
    /// a per-device stream (0 = perfectly aligned cohort).
    pub jitter: u64,
    /// Re-attestation epochs each device runs before leaving
    /// voluntarily.
    pub epochs_per_device: u32,
    /// Ticks an epoch may stay live before the gateway force-closes it
    /// as missed (0 = unbounded).
    pub epoch_budget: u64,
    /// Consecutive failed/missed epochs before a device is evicted
    /// (0 = never evict).
    pub max_consecutive_failures: u32,
    /// The first N devices get their provisioned memory tampered, so
    /// every one of their re-attestations fails deterministically.
    pub corrupted_devices: usize,
    /// Frame-loss probability of the shared control link.
    pub loss_rate: f64,
    /// Seed for the link faults and the per-device jitter streams.
    pub seed: u64,
    /// Shards of the CRP/enrollment store.
    pub crp_shards: usize,
    /// Hot-set capacity per CRP-store shard.
    pub crp_hot_capacity: usize,
    /// Last tick of the run; epochs still live at the horizon close as
    /// missed.
    pub horizon: u64,
    /// ARQ retransmissions of one frame before an epoch's session fails
    /// (`SessionConfig::max_retries`). Long-run sweeps raise this so a
    /// lossy link costs retransmits, never epochs; the default matches
    /// the round-by-round driver for the differential oracle.
    pub session_retries: u32,
}

impl Default for PersistentFleetConfig {
    fn default() -> Self {
        PersistentFleetConfig {
            devices: 8,
            reattest_period: 256,
            jitter: 32,
            epochs_per_device: 3,
            epoch_budget: 128,
            max_consecutive_failures: 2,
            corrupted_devices: 0,
            loss_rate: 0.1,
            seed: 0xF1EE7,
            crp_shards: 4,
            crp_hot_capacity: 4,
            horizon: 1 << 16,
            session_retries: SessionConfig::default().max_retries,
        }
    }
}

/// One re-attestation epoch's terminal record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EpochRecord {
    /// Device (slot) index.
    pub device: usize,
    /// Epoch ordinal for this device, starting at 0.
    pub epoch: u32,
    /// Whether the mutual-authentication run completed.
    pub ok: bool,
    /// Active ticks the epoch took (0 on failure).
    pub ticks: u32,
    /// Frames retransmitted across both endpoints.
    pub retransmits: u32,
    /// Whether the epoch budget or the horizon force-closed it.
    pub missed: bool,
    /// Debug rendering of the failure, when there was one.
    pub error: Option<String>,
}

/// Aggregate results of one persistent fleet run.
#[derive(Debug, Clone)]
pub struct PersistentFleetReport {
    /// Devices configured.
    pub devices: usize,
    /// Devices whose first epoch fired inside the horizon.
    pub joined: usize,
    /// Devices that left voluntarily after their epoch quota.
    pub left: usize,
    /// Devices evicted for consecutive failures.
    pub evicted: usize,
    /// Last tick the gateway processed.
    pub ticks: u64,
    /// Re-attestation epochs admitted.
    pub epochs_fired: u64,
    /// Epochs whose authentication completed.
    pub epochs_completed: u64,
    /// Epochs closed by a protocol failure.
    pub epochs_failed: u64,
    /// Epochs force-closed by the budget or the horizon.
    pub epochs_missed: u64,
    /// ARQ retransmissions across all epochs.
    pub retransmits: u64,
    /// Previous-CRP desynchronization recoveries across the fleet.
    pub desync_recoveries: u64,
    /// Frames that arrived for already-closed epochs on the shared
    /// link.
    pub late_frames: u64,
    /// Most epochs live at once.
    pub peak_live: usize,
    /// Real `Session::step` calls the event-driven gateway made.
    pub session_steps: u64,
    /// Steps a dense keep-alive poll loop (no timer wheel) would have
    /// made over the same residencies.
    pub dense_equiv_steps: u64,
    /// CRP-store cache counters across all checkouts/commits.
    pub crp: CrpStoreStats,
    /// Per-epoch terminal records, sorted by `(device, epoch)`.
    pub records: Vec<EpochRecord>,
}

impl PersistentFleetReport {
    /// `dense_equiv_steps / session_steps`: the step saving of waking
    /// only on timer fires instead of polling every resident device
    /// every tick.
    pub fn step_saving(&self) -> f64 {
        if self.session_steps == 0 {
            return 0.0;
        }
        self.dense_equiv_steps as f64 / self.session_steps as f64
    }

    /// Re-attestation conservation: every fired epoch reached exactly
    /// one terminal record (completed, failed, or missed) — nothing
    /// was silently dropped.
    pub fn epochs_conserved(&self) -> bool {
        self.epochs_completed + self.epochs_failed + self.epochs_missed == self.epochs_fired
            && self.records.len() as u64 == self.epochs_fired
    }
}

/// [`KeepAlive`] controller backing [`run_fleet_persistent`]: owns the
/// fleet's auth devices, fronts the verifier records with the sharded
/// CRP store (checkout at fire, commit at close), applies the
/// jittered re-arm schedule and the consecutive-failure eviction
/// policy, and logs one [`EpochRecord`] per closed epoch.
struct PersistentFleetController {
    devices: Vec<Option<AuthDevice<PhotonicPuf>>>,
    store: CrpStore<AuthVerifier>,
    jitter_rngs: Vec<StdRng>,
    period: u64,
    jitter: u64,
    epochs_per_device: u32,
    max_consecutive_failures: u32,
    cfg: SessionConfig,
    last_fire: Vec<u64>,
    fails: Vec<u32>,
    records: Vec<EpochRecord>,
}

impl KeepAlive for PersistentFleetController {
    type Initiator = WireVerifier<AuthVerifier>;
    type Responder = WireDevice<AuthDevice<PhotonicPuf>, PhotonicPuf>;

    fn on_fire(
        &mut self,
        slot: usize,
        epoch: u32,
        now: u64,
    ) -> Option<EpochSession<Self::Initiator, Self::Responder>> {
        if epoch >= self.epochs_per_device {
            // Epoch quota exhausted: the device leaves the fleet.
            return None;
        }
        let device = self.devices[slot].take()?;
        let Ok(verifier) = self.store.checkout(slot as u64) else {
            // No enrollment record, no re-attestation: the device can
            // only leave. (Unreachable when enrollment succeeded — the
            // commit at every close returns the record.)
            self.devices[slot] = Some(device);
            return None;
        };
        self.last_fire[slot] = now;
        // Same id schedule as the round-by-round sweep: globally unique
        // so stale frames from earlier epochs can never key-match.
        let sid = u64::from(epoch) * self.devices.len() as u64 + slot as u64 + 1;
        Some(EpochSession {
            protocol: ProtocolId::MutualAuth,
            id: sid,
            initiator: WireVerifier::new(verifier, sid, self.cfg),
            responder: WireDevice::new(device, self.cfg),
        })
    }

    fn on_close(
        &mut self,
        slot: usize,
        epoch: u32,
        _now: u64,
        outcome: &EpochOutcome,
        initiator: Self::Initiator,
        responder: Self::Responder,
    ) -> SlotVerdict {
        let verifier = initiator.into_inner();
        let device = responder.into_inner();
        // Unreachable error by construction (every commit follows its
        // own checkout); ignoring it keeps the controller panic-free.
        let _ = self.store.commit(slot as u64, verifier);
        self.devices[slot] = Some(device);
        let (ok, ticks, error) = match &outcome.result {
            Ok(t) => (true, *t, None),
            Err(e) => (false, 0, Some(format!("{e:?}"))),
        };
        self.records.push(EpochRecord {
            device: slot,
            epoch,
            ok,
            ticks,
            retransmits: outcome.retransmits,
            missed: outcome.missed_deadline,
            error,
        });
        if ok {
            self.fails[slot] = 0;
        } else {
            self.fails[slot] += 1;
            if self.max_consecutive_failures > 0
                && self.fails[slot] >= self.max_consecutive_failures
            {
                return SlotVerdict::Evict;
            }
        }
        let j = if self.jitter == 0 {
            0
        } else {
            self.jitter_rngs[slot].gen_range(0..self.jitter + 1)
        };
        SlotVerdict::Rearm {
            at: self.last_fire[slot] + self.period + j,
        }
    }

    fn class(&self, _slot: usize) -> ClassId {
        // Persistent re-attestation epochs are control-plane traffic:
        // under a class-aware policy they rank alongside the dense
        // driver's auth rounds, ahead of bulk inference.
        ClassId::CONTROL_AUTH
    }
}

/// Runs the fleet on long-lived persistent sessions.
///
/// Provisioning and the shared lossy link mirror [`run_fleet`]'s
/// control-link phase exactly (same die ids, memory pattern, seeds and
/// link-seed derivation), so a zero-jitter persistent run is
/// step-for-step comparable with a round-by-round sweep — the
/// differential property the `fleet_round_equivalence` tests pin.
///
/// # Panics
///
/// Panics when `devices` is zero.
pub fn run_fleet_persistent(
    config: &PersistentFleetConfig,
    tracer: &mut Tracer,
    registry: &Registry,
) -> PersistentFleetReport {
    assert!(config.devices > 0, "fleet needs at least one device");
    let mut store: CrpStore<AuthVerifier> = CrpStore::new(CrpStoreConfig {
        shards: config.crp_shards,
        hot_capacity: config.crp_hot_capacity,
    });
    let devices: Vec<Option<AuthDevice<PhotonicPuf>>> = (0..config.devices)
        .map(|i| {
            let die = DieId(0xF1_A000 + i as u64);
            let memory: Vec<u8> = (0..256).map(|b| (b * 17 % 249) as u8).collect();
            let Ok((mut device, provisioned)) =
                AuthDevice::provision(PhotonicPuf::reference(die, 1), memory, b"fleet-auth")
            else {
                // A device whose PUF cannot provision never joins the
                // fleet; its slot leaves at first fire.
                return None;
            };
            if i < config.corrupted_devices {
                device.corrupt_memory(100, 0xFF);
            }
            let verifier = AuthVerifier::new(provisioned, b"fleet-auth-verifier");
            if store.enroll(i as u64, verifier).is_err() {
                return None;
            }
            Some(device)
        })
        .collect();

    // Per-device jitter streams: draws are taken per slot, so the
    // schedule is independent of epoch close ordering.
    let mut jitter_rngs: Vec<StdRng> = (0..config.devices)
        .map(|i| StdRng::seed_from_u64(config.seed ^ 0x17E2_0000_0000_0000 ^ i as u64))
        .collect();
    let first_fire: Vec<u64> = jitter_rngs
        .iter_mut()
        .map(|rng| {
            if config.jitter == 0 {
                1
            } else {
                1 + rng.gen_range(0..config.jitter + 1)
            }
        })
        .collect();

    let mut controller = PersistentFleetController {
        devices,
        store,
        jitter_rngs,
        period: config.reattest_period,
        jitter: config.jitter,
        epochs_per_device: config.epochs_per_device,
        max_consecutive_failures: config.max_consecutive_failures,
        cfg: SessionConfig {
            max_retries: config.session_retries,
            ..SessionConfig::default()
        },
        last_fire: vec![0; config.devices],
        fails: vec![0; config.devices],
        records: Vec::new(),
    };

    let link_seed = config.seed ^ 0xA117_0000_0000_0000;
    let mut link = FaultyChannel::new(FaultRates::loss(config.loss_rate), link_seed);
    let gw = run_persistent_gateway(
        &mut link,
        &first_fire,
        &mut controller,
        PersistentConfig {
            horizon: config.horizon,
            epoch_budget: config.epoch_budget,
            ..PersistentConfig::default()
        },
        tracer,
        registry,
    );

    let mut desync_recoveries = 0u64;
    for i in 0..config.devices {
        if let Some(verifier) = controller.store.peek(i as u64) {
            desync_recoveries += verifier.desync_recoveries();
        }
    }
    let crp = controller.store.stats();
    controller.store.fold_into(registry);
    registry.counter("fleet.persistent_desync_recoveries", desync_recoveries);

    let mut records = controller.records;
    records.sort_unstable_by_key(|r| (r.device, r.epoch));
    PersistentFleetReport {
        devices: config.devices,
        joined: gw.joined,
        left: gw.left,
        evicted: gw.evicted,
        ticks: gw.ticks,
        epochs_fired: gw.epochs_fired,
        epochs_completed: gw.epochs_completed,
        epochs_failed: gw.epochs_failed,
        epochs_missed: gw.epochs_missed,
        retransmits: gw.retransmits,
        desync_recoveries,
        late_frames: gw.late_frames,
        peak_live: gw.peak_live,
        session_steps: gw.session_steps,
        dense_equiv_steps: gw.dense_equiv_steps,
        crp,
        records,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neuropuls_rt::trace::EventKind;

    /// [`run_fleet`] with observability switched off.
    fn quiet(config: &FleetConfig) -> FleetReport {
        run_fleet(config, &mut Tracer::disabled(), &Registry::new())
    }

    #[test]
    fn fleet_catches_every_compromised_device() {
        let report = quiet(&FleetConfig::default());
        assert!(report.attestations > 0);
        assert_eq!(
            report.compromised_caught, report.compromised_planted,
            "{report:?}"
        );
        // Honest devices pass: passes + compromised failures = total.
        assert!(report.passed > 0, "{report:?}");
    }

    #[test]
    fn utilization_grows_with_fleet_size() {
        let small = quiet(&FleetConfig {
            devices: 2,
            ..FleetConfig::default()
        });
        let large = quiet(&FleetConfig {
            devices: 12,
            ..FleetConfig::default()
        });
        assert!(
            large.verifier_utilization > small.verifier_utilization,
            "small {small:?} large {large:?}"
        );
    }

    #[test]
    fn oversubscribed_verifier_builds_backlog() {
        let report = quiet(&FleetConfig {
            devices: 24,
            period_us: 2.0,
            horizon_us: 20.0,
            ..FleetConfig::default()
        });
        assert!(report.max_backlog > 0, "{report:?}");
        assert!(report.verifier_utilization > 0.5, "{report:?}");
    }

    #[test]
    fn empty_compromise_fraction_passes_everything() {
        let report = quiet(&FleetConfig {
            compromised_fraction: 0.0,
            ..FleetConfig::default()
        });
        assert_eq!(report.compromised_planted, 0);
        assert_eq!(report.passed, report.attestations, "{report:?}");
    }

    /// Regression for the saturation accounting bugs: utilization used
    /// to exceed 1.0 (busy time counted past the horizon), turnaround
    /// mixed populations (sum at request time ÷ completions), and
    /// `max_backlog` undercounted (every completion decremented the
    /// backlog even when the request never queued).
    #[test]
    fn saturated_fleet_accounting_is_consistent() {
        for devices in [8, 32] {
            let report = quiet(&FleetConfig {
                devices,
                period_us: 1.0,
                horizon_us: 8.0,
                ..FleetConfig::default()
            });
            assert!(
                report.verifier_utilization <= 1.0,
                "utilization must be a fraction: {report:?}"
            );
            assert!(report.verifier_utilization > 0.0, "{report:?}");
            assert_eq!(
                report.attestations + report.in_flight_at_horizon,
                report.requests,
                "every issued request completes or is in flight: {report:?}"
            );
            assert!(report.max_backlog <= report.requests, "{report:?}");
        }
    }

    #[test]
    fn saturated_fleet_reports_nonzero_backlog_and_full_utilization() {
        let report = quiet(&FleetConfig {
            devices: 32,
            period_us: 1.0,
            horizon_us: 8.0,
            ..FleetConfig::default()
        });
        assert!(report.max_backlog > 0, "{report:?}");
        assert!(report.verifier_utilization > 0.95, "{report:?}");
        assert!(report.in_flight_at_horizon > 0, "{report:?}");
    }

    #[test]
    fn more_verifiers_relieve_the_backlog() {
        let saturated = FleetConfig {
            devices: 16,
            period_us: 2.0,
            horizon_us: 20.0,
            ..FleetConfig::default()
        };
        let one = quiet(&saturated);
        let four = quiet(&FleetConfig {
            verifiers: 4,
            ..saturated
        });
        assert!(four.verifier_utilization <= 1.0, "{four:?}");
        assert!(
            four.max_backlog <= one.max_backlog,
            "a farm should not queue more than one verifier: {one:?} vs {four:?}"
        );
        assert!(
            four.mean_turnaround_us <= one.mean_turnaround_us,
            "a farm should not be slower: {one:?} vs {four:?}"
        );
        assert!(
            four.attestations >= one.attestations,
            "a farm completes at least as many checks: {one:?} vs {four:?}"
        );
    }

    #[test]
    fn lossy_control_link_still_authenticates_the_fleet() {
        let report = quiet(&FleetConfig {
            auth_sessions: 3,
            auth_loss_rate: 0.2,
            ..FleetConfig::default()
        });
        assert_eq!(report.auth_attempted, 8 * 3);
        assert_eq!(
            report.auth_completed, report.auth_attempted,
            "ARQ should carry every session through 20% loss: {report:?}"
        );
        assert!(
            report.auth_retransmits > 0,
            "20% loss must cost retransmissions: {report:?}"
        );
    }

    #[test]
    fn disabling_auth_sessions_skips_the_control_link_phase() {
        let report = quiet(&FleetConfig {
            auth_sessions: 0,
            ..FleetConfig::default()
        });
        assert_eq!(report.auth_attempted, 0);
        assert_eq!(report.auth_completed, 0);
        assert_eq!(report.auth_retransmits, 0);
        assert_eq!(report.auth_gateway_ticks, 0);
        assert_eq!(report.crp, crate::crp_store::CrpStoreStats::default());
    }

    /// The control link is one shared wire: every round multiplexes all
    /// devices' sessions through the gateway, and the CRP store fronts
    /// the verifier records — first round all cold misses, later rounds
    /// hot hits (capacity permitting).
    #[test]
    fn shared_control_link_reports_gateway_and_cache_effort() {
        let config = FleetConfig {
            devices: 12,
            auth_sessions: 3,
            crp_shards: 3,
            crp_hot_capacity: 8, // 24 hot slots ≥ 12 devices: all hot after round 1
            ..FleetConfig::default()
        };
        let registry = Registry::new();
        let report = run_fleet(&config, &mut Tracer::disabled(), &registry);
        assert_eq!(report.auth_attempted, 12 * 3);
        assert_eq!(report.auth_completed, report.auth_attempted, "{report:?}");
        assert!(report.auth_gateway_ticks > 0);
        assert_eq!(report.crp.misses, 12, "first touch of each record is cold");
        assert_eq!(report.crp.hits, 24, "rounds 2 and 3 are hot");
        assert_eq!(report.crp.commits, 36);
        assert!((report.crp.hit_rate() - 24.0 / 36.0).abs() < 1e-12);
        assert_eq!(registry.counter_value("crp_store.hits"), report.crp.hits);
        assert_eq!(
            registry.counter_value("gateway.completed") as usize,
            report.auth_completed
        );
    }

    /// A hot set smaller than the fleet thrashes: only the records
    /// committed last in a round are still hot when the next round's
    /// batched checkout sweeps through, so hits per round cap at the
    /// hot capacity.
    #[test]
    fn undersized_crp_cache_thrashes() {
        let report = quiet(&FleetConfig {
            devices: 12,
            auth_sessions: 2,
            crp_shards: 1,
            crp_hot_capacity: 2,
            ..FleetConfig::default()
        });
        assert_eq!(
            report.crp.hits, 2,
            "one round of re-touches, 2 hot: {report:?}"
        );
        assert_eq!(report.crp.misses, 22, "{report:?}");
        assert!(report.crp.evictions > 0, "{report:?}");
        assert!(report.crp.hit_rate() < 0.1, "{report:?}");
    }

    #[test]
    fn traced_fleet_matches_untraced_and_records_metrics() {
        let config = FleetConfig::default();
        let untraced = quiet(&config);
        let mut tracer = Tracer::new();
        let registry = Registry::new();
        let traced = run_fleet(&config, &mut tracer, &registry);
        assert_eq!(traced, untraced, "tracing must not perturb the sim");
        assert_eq!(
            registry.counter_value("fleet.requests") as usize,
            traced.requests
        );
        assert_eq!(
            registry.counter_value("fleet.attestations") as usize,
            traced.attestations
        );
        let turnaround = registry
            .histogram("fleet.turnaround_ns")
            .expect("turnaround histogram recorded");
        assert_eq!(turnaround.count() as usize, traced.attestations);
        let due = tracer
            .events()
            .iter()
            .filter(|e| e.name == "attest.due")
            .count();
        assert_eq!(due, traced.requests);
        let open = tracer
            .events()
            .iter()
            .filter(|e| e.name == "attest.check" && e.kind == EventKind::SpanStart)
            .count();
        let closed = tracer
            .events()
            .iter()
            .filter(|e| e.name == "attest.check" && e.kind == EventKind::SpanEnd)
            .count();
        assert_eq!(open, traced.requests);
        assert_eq!(closed, traced.attestations, "in-flight checks stay open");
        let auth = tracer
            .events()
            .iter()
            .filter(|e| e.name == "auth.session")
            .count();
        assert_eq!(auth, traced.auth_attempted);
    }

    #[test]
    fn idle_fleet_has_no_backlog_and_low_utilization() {
        let report = quiet(&FleetConfig {
            devices: 1,
            period_us: 50.0,
            horizon_us: 100.0,
            ..FleetConfig::default()
        });
        assert_eq!(report.max_backlog, 0, "{report:?}");
        assert!(report.verifier_utilization < 0.1, "{report:?}");
    }

    /// [`run_fleet_persistent`] with observability switched off.
    fn quiet_persistent(config: &PersistentFleetConfig) -> PersistentFleetReport {
        run_fleet_persistent(config, &mut Tracer::disabled(), &Registry::new())
    }

    #[test]
    fn persistent_fleet_completes_every_epoch_over_lossy_link() {
        let config = PersistentFleetConfig::default();
        let report = quiet_persistent(&config);
        let expected = (config.devices as u64) * u64::from(config.epochs_per_device);
        assert_eq!(report.joined, config.devices);
        assert_eq!(report.epochs_fired, expected);
        assert_eq!(
            report.epochs_completed, expected,
            "ARQ should carry every re-attestation through 10% loss: {report:?}"
        );
        assert!(report.epochs_conserved(), "{report:?}");
        assert_eq!(report.left, config.devices, "epoch quota ends residency");
        assert_eq!(report.evicted, 0);
        assert!(
            report.step_saving() > 5.0,
            "mostly-idle slots must not be polled: {report:?}"
        );
    }

    #[test]
    fn persistent_fleet_evicts_tampered_device_and_keeps_the_rest() {
        let config = PersistentFleetConfig {
            corrupted_devices: 1,
            ..PersistentFleetConfig::default()
        };
        let report = quiet_persistent(&config);
        assert_eq!(report.evicted, 1, "{report:?}");
        assert_eq!(report.left, config.devices - 1);
        let bad: Vec<&EpochRecord> = report.records.iter().filter(|r| r.device == 0).collect();
        assert_eq!(
            bad.len(),
            config.max_consecutive_failures as usize,
            "evicted after exactly max consecutive failures: {bad:?}"
        );
        assert!(bad.iter().all(|r| !r.ok));
        let healthy_completed = report
            .records
            .iter()
            .filter(|r| r.device != 0 && r.ok)
            .count() as u64;
        assert_eq!(
            healthy_completed,
            (config.devices as u64 - 1) * u64::from(config.epochs_per_device),
            "{report:?}"
        );
        assert!(report.epochs_conserved(), "{report:?}");
    }

    /// The persistent driver books CRP traffic through the same sharded
    /// store discipline as the round-by-round sweep: one exclusive
    /// checkout and one commit per fired epoch.
    #[test]
    fn persistent_fleet_checks_crp_records_out_per_epoch() {
        let config = PersistentFleetConfig {
            devices: 6,
            jitter: 0,
            ..PersistentFleetConfig::default()
        };
        let report = quiet_persistent(&config);
        assert_eq!(report.crp.commits, report.epochs_fired);
        assert_eq!(
            report.crp.hits + report.crp.misses,
            report.epochs_fired,
            "{report:?}"
        );
        assert_eq!(report.crp.misses, 6, "first touch of each record is cold");
    }

    /// Aggregate cross-check against the real round-by-round driver: a
    /// zero-jitter persistent run and `run_fleet`'s control-link phase
    /// complete the same sessions with the same retransmission spend
    /// and desync recoveries over the same seeded link.
    #[test]
    fn persistent_fleet_aggregates_match_round_by_round_run_fleet() {
        let seed = 0x0E0C_AB1E;
        let persistent = quiet_persistent(&PersistentFleetConfig {
            devices: 6,
            reattest_period: 512,
            jitter: 0,
            epochs_per_device: 2,
            epoch_budget: 0,
            max_consecutive_failures: 0,
            corrupted_devices: 0,
            loss_rate: 0.1,
            seed,
            horizon: 1 << 14,
            ..PersistentFleetConfig::default()
        });
        let rounds = quiet(&FleetConfig {
            devices: 6,
            auth_sessions: 2,
            auth_loss_rate: 0.1,
            seed,
            ..FleetConfig::default()
        });
        assert_eq!(persistent.epochs_fired as usize, rounds.auth_attempted);
        assert_eq!(persistent.epochs_completed as usize, rounds.auth_completed);
        assert_eq!(persistent.retransmits, rounds.auth_retransmits, "same wire");
        assert_eq!(persistent.desync_recoveries, rounds.auth_desync_recoveries);
        assert_eq!(persistent.crp.commits, rounds.crp.commits);
    }
}
