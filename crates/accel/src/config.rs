//! Neural-network configuration — the confidential payload of
//! `load_network` (Table I).
//!
//! The configuration carries layer dimensions and weights. It travels
//! encrypted end-to-end, so it needs a stable binary wire format; the
//! codec here is self-contained (magic, version, length-prefixed layers,
//! little-endian `f32` weights) and rejects malformed input instead of
//! panicking — it parses attacker-visible bytes.

use std::error::Error;
use std::fmt;

/// Nonlinearity applied after a layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Activation {
    /// Rectified linear unit (electro-optic rectification).
    Relu,
    /// Identity (output layer).
    Linear,
    /// Saturating absorber: tanh-like optical nonlinearity.
    Saturating,
}

impl Activation {
    /// Applies the activation to one value.
    pub fn apply(self, x: f64) -> f64 {
        match self {
            Activation::Relu => x.max(0.0),
            Activation::Linear => x,
            Activation::Saturating => x.tanh(),
        }
    }

    fn code(self) -> u8 {
        match self {
            Activation::Relu => 0,
            Activation::Linear => 1,
            Activation::Saturating => 2,
        }
    }

    fn from_code(code: u8) -> Result<Self, ConfigCodecError> {
        match code {
            0 => Ok(Activation::Relu),
            1 => Ok(Activation::Linear),
            2 => Ok(Activation::Saturating),
            other => Err(ConfigCodecError::BadActivation(other)),
        }
    }
}

/// One dense layer: `outputs × inputs` weights plus a bias per output.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerConfig {
    /// Input width.
    pub inputs: usize,
    /// Output width.
    pub outputs: usize,
    /// Row-major weights, `outputs × inputs`.
    pub weights: Vec<f32>,
    /// Per-output bias.
    pub biases: Vec<f32>,
    /// Activation after the layer.
    pub activation: Activation,
}

impl LayerConfig {
    /// Validates dimensional consistency.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigCodecError::DimensionMismatch`] when weight or
    /// bias lengths disagree with the declared shape.
    pub fn validate(&self) -> Result<(), ConfigCodecError> {
        if self.weights.len() != self.inputs * self.outputs || self.biases.len() != self.outputs {
            return Err(ConfigCodecError::DimensionMismatch {
                inputs: self.inputs,
                outputs: self.outputs,
                weights: self.weights.len(),
                biases: self.biases.len(),
            });
        }
        Ok(())
    }
}

/// A full network configuration.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct NetworkConfig {
    /// Layers in order.
    pub layers: Vec<LayerConfig>,
}

/// Errors from the wire codec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigCodecError {
    /// The magic/version header is wrong (e.g. a wrong decryption key
    /// produced garbage).
    BadHeader,
    /// Truncated input.
    Truncated,
    /// Unknown activation code.
    BadActivation(u8),
    /// Declared shapes disagree with payload lengths.
    DimensionMismatch {
        /// Declared input width.
        inputs: usize,
        /// Declared output width.
        outputs: usize,
        /// Supplied weight count.
        weights: usize,
        /// Supplied bias count.
        biases: usize,
    },
    /// A declared length is implausibly large (corrupt or hostile
    /// input).
    LengthOverflow(u64),
    /// Consecutive layers have incompatible widths.
    LayerChainMismatch {
        /// Index of the offending layer.
        layer: usize,
    },
}

impl fmt::Display for ConfigCodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigCodecError::BadHeader => write!(f, "bad network config header"),
            ConfigCodecError::Truncated => write!(f, "truncated network config"),
            ConfigCodecError::BadActivation(code) => {
                write!(f, "unknown activation code {code}")
            }
            ConfigCodecError::DimensionMismatch {
                inputs,
                outputs,
                weights,
                biases,
            } => write!(
                f,
                "dimension mismatch: {inputs}x{outputs} layer with {weights} weights, {biases} biases"
            ),
            ConfigCodecError::LengthOverflow(len) => {
                write!(f, "declared length {len} exceeds sanity bound")
            }
            ConfigCodecError::LayerChainMismatch { layer } => {
                write!(f, "layer {layer} input width disagrees with previous output width")
            }
        }
    }
}

impl Error for ConfigCodecError {}

const MAGIC: &[u8; 4] = b"NPNC"; // NeuroPuls Network Config
const VERSION: u8 = 1;
const MAX_DIM: u64 = 1 << 20;

impl NetworkConfig {
    /// Builds a dense MLP with the given layer widths, e.g.
    /// `[16, 8, 4]`, with ReLU activations and a linear output.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two widths are given.
    pub fn mlp(widths: &[usize], weights: impl Fn(usize, usize, usize) -> f32) -> Self {
        assert!(
            widths.len() >= 2,
            "an MLP needs at least input and output widths"
        );
        let layers = widths
            .windows(2)
            .enumerate()
            .map(|(l, w)| {
                let (inputs, outputs) = (w[0], w[1]);
                LayerConfig {
                    inputs,
                    outputs,
                    weights: (0..outputs)
                        .flat_map(|o| (0..inputs).map(move |i| (o, i)))
                        .map(|(o, i)| weights(l, o, i))
                        .collect(),
                    biases: vec![0.0; outputs],
                    activation: if l + 2 == widths.len() {
                        Activation::Linear
                    } else {
                        Activation::Relu
                    },
                }
            })
            .collect();
        NetworkConfig { layers }
    }

    /// Validates the whole configuration, including inter-layer width
    /// chaining.
    ///
    /// # Errors
    ///
    /// See [`ConfigCodecError`].
    pub fn validate(&self) -> Result<(), ConfigCodecError> {
        for (idx, layer) in self.layers.iter().enumerate() {
            layer.validate()?;
            if idx > 0 && self.layers[idx - 1].outputs != layer.inputs {
                return Err(ConfigCodecError::LayerChainMismatch { layer: idx });
            }
        }
        Ok(())
    }

    /// Input width of the network (0 for an empty config).
    pub fn input_width(&self) -> usize {
        self.layers.first().map_or(0, |l| l.inputs)
    }

    /// Output width of the network (0 for an empty config).
    pub fn output_width(&self) -> usize {
        self.layers.last().map_or(0, |l| l.outputs)
    }

    /// Serializes to the wire format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(MAGIC);
        out.push(VERSION);
        out.extend_from_slice(&(self.layers.len() as u32).to_le_bytes());
        for layer in &self.layers {
            out.extend_from_slice(&(layer.inputs as u32).to_le_bytes());
            out.extend_from_slice(&(layer.outputs as u32).to_le_bytes());
            out.push(layer.activation.code());
            for w in &layer.weights {
                out.extend_from_slice(&w.to_le_bytes());
            }
            for b in &layer.biases {
                out.extend_from_slice(&b.to_le_bytes());
            }
        }
        out
    }

    /// Parses the wire format.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigCodecError`] on any malformed input; never
    /// panics.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, ConfigCodecError> {
        let mut cursor = Cursor { bytes, pos: 0 };
        let magic = cursor.take(4)?;
        if magic != MAGIC || cursor.take(1)?[0] != VERSION {
            return Err(ConfigCodecError::BadHeader);
        }
        let layer_count = cursor.u32()? as u64;
        if layer_count > 1024 {
            return Err(ConfigCodecError::LengthOverflow(layer_count));
        }
        let mut layers = Vec::with_capacity(layer_count as usize);
        for _ in 0..layer_count {
            let inputs = cursor.u32()? as u64;
            let outputs = cursor.u32()? as u64;
            if inputs > MAX_DIM || outputs > MAX_DIM || inputs * outputs > MAX_DIM {
                return Err(ConfigCodecError::LengthOverflow(inputs * outputs));
            }
            let activation = Activation::from_code(cursor.take(1)?[0])?;
            let weights = cursor.f32_vec((inputs * outputs) as usize)?;
            let biases = cursor.f32_vec(outputs as usize)?;
            layers.push(LayerConfig {
                inputs: inputs as usize,
                outputs: outputs as usize,
                weights,
                biases,
                activation,
            });
        }
        let config = NetworkConfig { layers };
        config.validate()?;
        Ok(config)
    }
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], ConfigCodecError> {
        if self.pos + n > self.bytes.len() {
            return Err(ConfigCodecError::Truncated);
        }
        let slice = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    fn u32(&mut self) -> Result<u32, ConfigCodecError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn f32_vec(&mut self, n: usize) -> Result<Vec<f32>, ConfigCodecError> {
        let raw = self.take(4 * n)?;
        Ok(raw
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> NetworkConfig {
        NetworkConfig::mlp(&[4, 3, 2], |l, o, i| (l * 31 + o * 7 + i) as f32 * 0.01)
    }

    #[test]
    fn roundtrip() {
        let config = sample();
        let bytes = config.to_bytes();
        assert_eq!(NetworkConfig::from_bytes(&bytes).unwrap(), config);
    }

    #[test]
    fn validates_shapes() {
        let mut config = sample();
        config.layers[0].weights.pop();
        assert!(matches!(
            config.validate(),
            Err(ConfigCodecError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn validates_layer_chaining() {
        let mut config = sample();
        config.layers[1].inputs = 5;
        config.layers[1].weights = vec![0.0; 10];
        assert_eq!(
            config.validate(),
            Err(ConfigCodecError::LayerChainMismatch { layer: 1 })
        );
    }

    #[test]
    fn rejects_garbage() {
        assert_eq!(
            NetworkConfig::from_bytes(b"not a config"),
            Err(ConfigCodecError::BadHeader)
        );
        assert_eq!(
            NetworkConfig::from_bytes(b""),
            Err(ConfigCodecError::Truncated)
        );
    }

    #[test]
    fn rejects_truncation_anywhere() {
        let bytes = sample().to_bytes();
        for cut in [5, 9, 14, bytes.len() - 1] {
            assert!(
                NetworkConfig::from_bytes(&bytes[..cut]).is_err(),
                "cut at {cut} accepted"
            );
        }
    }

    #[test]
    fn rejects_hostile_lengths() {
        // Header declaring 2^30 × 2^30 weights must not allocate.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(b"NPNC");
        bytes.push(1);
        bytes.extend_from_slice(&1u32.to_le_bytes());
        bytes.extend_from_slice(&(1u32 << 30).to_le_bytes());
        bytes.extend_from_slice(&(1u32 << 30).to_le_bytes());
        bytes.push(0);
        assert!(matches!(
            NetworkConfig::from_bytes(&bytes),
            Err(ConfigCodecError::LengthOverflow(_))
        ));
    }

    #[test]
    fn widths() {
        let config = sample();
        assert_eq!(config.input_width(), 4);
        assert_eq!(config.output_width(), 2);
        assert_eq!(NetworkConfig::default().input_width(), 0);
    }

    #[test]
    fn activations() {
        assert_eq!(Activation::Relu.apply(-1.0), 0.0);
        assert_eq!(Activation::Relu.apply(2.0), 2.0);
        assert_eq!(Activation::Linear.apply(-3.5), -3.5);
        assert!((Activation::Saturating.apply(100.0) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn mlp_activation_layout() {
        let config = sample();
        assert_eq!(config.layers[0].activation, Activation::Relu);
        assert_eq!(config.layers[1].activation, Activation::Linear);
    }
}
