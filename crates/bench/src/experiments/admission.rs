//! E24 — class-aware admission under overload: hundreds to thousands
//! of mixed-class sessions submitted to a gateway whose tick budget
//! covers only a fraction of them (2–8× overload). A minority
//! inference class queued *behind* a majority control-auth burst is
//! starved outright by the [`Fifo`] policy — none of it is ever
//! admitted, so its p99 backlog wait is censored at the run length and
//! grows without bound as the budget grows — while
//! [`DeficitWeightedRoundRobin`] with equal weights admits both
//! classes in rotation and keeps every class's p99 admission wait
//! within 2× its weight-proportional fair drain. Every cell is an
//! independent deterministic run fanned out on the pool, so the sweep
//! is byte-identical at any `NEUROPULS_THREADS`.

use crate::{Rendered, Scale};
use neuropuls_photonic::process::DieId;
use neuropuls_protocols::gateway::{
    run_gateway, AdmissionPolicy, ClassId, DeficitWeightedRoundRobin, Fifo, GatewayConfig,
    GatewayReport, SessionPair,
};
use neuropuls_protocols::mutual_auth::{
    Device as AuthDevice, Verifier as AuthVerifier, WireDevice, WireVerifier,
};
use neuropuls_protocols::transport::Channel;
use neuropuls_protocols::wire::{ProtocolId, SessionConfig};
use neuropuls_puf::photonic::PhotonicPuf;
use neuropuls_rt::trace::{Registry, Tracer};

/// Concurrency cap of every run: small against the session counts so
/// the backlog — and therefore the admission policy — dominates.
const MAX_ACTIVE: usize = 32;

/// One session in [`MINORITY_DENOM`] carries the minority inference
/// class; the rest are majority control-auth queued ahead of it.
const MINORITY_DENOM: usize = 16;

/// Additive tick slack on the DWRR fairness bound: absorbs the accept
/// queue's staging transient and nearest-rank percentile granularity.
const FAIR_SLACK: u64 = 64;

/// The acceptance cell (ISSUE gate: bounded per-class p99 admission
/// wait under DWRR at 1024+ sessions and 4× overload).
const ACCEPTANCE_SESSIONS: usize = 1024;
const ACCEPTANCE_OVERLOAD: u64 = 4;

/// One sweep cell: a session count and an overload factor (a full
/// drain needs `overload`× the tick budget the run actually gets).
#[derive(Debug, Clone, Copy)]
struct Cell {
    sessions: usize,
    overload: u64,
}

/// Per-class digest of one policy's overloaded run.
#[derive(Debug, Clone)]
struct ClassDigest {
    label: String,
    submitted: usize,
    admitted: usize,
    wait_p99: u64,
    /// `2 × weight-proportional fair drain + slack`: twice the time a
    /// fair server at this run's measured admission rate would need to
    /// drain the class's whole backlog.
    fair_bound: u64,
}

/// Deterministic outcome of one cell: the probe capacity plus the
/// FIFO and DWRR overloaded runs side by side.
#[derive(Debug, Clone)]
struct CellResult {
    cell: Cell,
    /// Ticks a FIFO run needs to drain every session (the probe).
    capacity_ticks: u64,
    /// Tick budget of the overloaded runs: `capacity / overload`.
    run_ticks: u64,
    fifo: Vec<ClassDigest>,
    dwrr: Vec<ClassDigest>,
}

impl CellResult {
    fn class(rows: &[ClassDigest], label: &str) -> Option<ClassDigest> {
        rows.iter().find(|d| d.label == label).cloned()
    }

    /// Minority-class digest under FIFO.
    fn fifo_minority(&self) -> ClassDigest {
        Self::class(&self.fifo, "inference").expect("fifo run carries the inference class")
    }

    /// Minority-class digest under DWRR.
    fn dwrr_minority(&self) -> ClassDigest {
        Self::class(&self.dwrr, "inference").expect("dwrr run carries the inference class")
    }

    /// Whether every DWRR class sits inside its fairness bound.
    fn dwrr_bounded(&self) -> bool {
        self.dwrr.iter().all(|d| d.wait_p99 <= d.fair_bound)
    }
}

fn provision(n: usize) -> Vec<(AuthDevice<PhotonicPuf>, AuthVerifier)> {
    let mut parties = Vec::new();
    for i in 0..n as u64 {
        let die = DieId(0xE24_0000 + i);
        let memory: Vec<u8> = (0..128).map(|b| (b * 29 % 241) as u8).collect();
        let Ok((device, provisioned)) = AuthDevice::provision(
            PhotonicPuf::reference(die, 1),
            memory,
            format!("e24-prov-{i}").as_bytes(),
        ) else {
            continue;
        };
        let verifier = AuthVerifier::new(provisioned, format!("e24-verif-{i}").as_bytes());
        parties.push((device, verifier));
    }
    parties
}

/// Builds the adversarial submission order: the majority control-auth
/// burst first, the minority inference sessions dead last — the worst
/// case for a FIFO backlog, a non-event for a class-aware one.
fn build_sessions<'p>(
    parties: &'p mut [(AuthDevice<PhotonicPuf>, AuthVerifier)],
) -> Vec<SessionPair<'p>> {
    let n = parties.len();
    let minority_from = n - n / MINORITY_DENOM;
    parties
        .iter_mut()
        .enumerate()
        .map(|(i, (device, verifier))| {
            let sid = i as u64 + 1;
            let class = if i >= minority_from {
                ClassId::INFERENCE
            } else {
                ClassId::CONTROL_AUTH
            };
            SessionPair::new(
                ProtocolId::MutualAuth,
                sid,
                Box::new(WireVerifier::new(verifier, sid, SessionConfig::default())),
                Box::new(WireDevice::new(device, SessionConfig::default())),
            )
            .with_class(class)
        })
        .collect()
}

/// One gateway run over a lossless shared link, with fresh
/// provisioning so the FIFO and DWRR replays of a cell see identical
/// inputs.
fn run_once(n: usize, max_ticks: u64, policy: Box<dyn AdmissionPolicy>) -> GatewayReport {
    let mut parties = provision(n);
    let sessions = build_sessions(&mut parties);
    let mut link = Channel::new();
    run_gateway(
        &mut link,
        sessions,
        GatewayConfig {
            max_active: MAX_ACTIVE,
            accept_queue: MAX_ACTIVE,
            max_ticks,
            policy,
        },
        &mut Tracer::disabled(),
        &Registry::new(),
    )
}

/// Per-class digests of one overloaded run. The fair drain of class
/// `c` under equal weights is `n_c / (s_c × r)` ticks, with `s_c =
/// 1/classes` the weight share and `r = admitted_total / run_ticks`
/// the run's measured admission throughput; the bound doubles it and
/// adds fixed slack.
fn digests(report: &GatewayReport, run_ticks: u64) -> Vec<ClassDigest> {
    let admitted_total: usize = report.per_class.iter().map(|c| c.admitted).sum();
    let classes = report.per_class.len().max(1) as u64;
    report
        .per_class
        .iter()
        .map(|c| {
            let fair_bound = if admitted_total == 0 {
                u64::MAX
            } else {
                let drain = classes
                    .saturating_mul(c.submitted as u64)
                    .saturating_mul(run_ticks)
                    / admitted_total as u64;
                drain.saturating_mul(2).saturating_add(FAIR_SLACK)
            };
            ClassDigest {
                label: c.class.label(),
                submitted: c.submitted,
                admitted: c.admitted,
                wait_p99: c.wait_p99,
                fair_bound,
            }
        })
        .collect()
}

/// Runs `cell`: probes the full-drain capacity with FIFO under a
/// generous budget, then replays the same submission under a
/// `capacity / overload` tick budget with FIFO and with equal-weight
/// DWRR.
fn run_cell(cell: Cell) -> CellResult {
    let probe = run_once(
        cell.sessions,
        cell.sessions as u64 * 64,
        Box::new(Fifo::new()),
    );
    let capacity_ticks = probe.ticks;
    let run_ticks = (capacity_ticks / cell.overload).max(1);

    let fifo = run_once(cell.sessions, run_ticks, Box::new(Fifo::new()));
    let dwrr = run_once(
        cell.sessions,
        run_ticks,
        Box::new(
            DeficitWeightedRoundRobin::new()
                .with_weight(ClassId::CONTROL_AUTH, 1)
                .with_weight(ClassId::INFERENCE, 1),
        ),
    );

    CellResult {
        cell,
        capacity_ticks,
        run_ticks,
        fifo: digests(&fifo, run_ticks),
        dwrr: digests(&dwrr, run_ticks),
    }
}

fn render_cell(out: &mut Rendered, r: &CellResult) {
    out.push(format!(
        "{} sessions at {}x overload (capacity {} ticks, budget {}):",
        r.cell.sessions, r.cell.overload, r.capacity_ticks, r.run_ticks
    ));
    out.push(format!(
        "  {:>6} {:>14} {:>9} {:>9} {:>9} {:>11}",
        "policy", "class", "submitted", "admitted", "wait p99", "fair bound"
    ));
    for (policy, rows) in [("fifo", &r.fifo), ("dwrr", &r.dwrr)] {
        for d in rows {
            out.push(format!(
                "  {:>6} {:>14} {:>9} {:>9} {:>9} {:>11}",
                policy, d.label, d.submitted, d.admitted, d.wait_p99, d.fair_bound
            ));
        }
    }
}

/// Per-cell summary row for the smoke assertions and the bench
/// report: `(sessions, overload, run_ticks, fifo_minority_p99,
/// fifo_minority_admitted, dwrr_minority_p99, dwrr_minority_admitted,
/// dwrr_bounded)`.
pub type CellSummary = (usize, u64, u64, u64, usize, u64, usize, bool);

/// The acceptance cell's row (1024 sessions at 4× overload), if the
/// sweep carried it.
pub fn acceptance_row(summary: &[CellSummary]) -> Option<CellSummary> {
    summary
        .iter()
        .find(|&&(sessions, overload, ..)| {
            sessions == ACCEPTANCE_SESSIONS && overload == ACCEPTANCE_OVERLOAD
        })
        .copied()
}

/// Runs the session-count × overload sweep. Both scales carry the
/// acceptance cell and an 8× cell at the same session count, so the
/// starvation-grows-with-the-budget comparison is always available.
pub fn run(scale: Scale) -> (Rendered, Vec<CellSummary>) {
    let cells: Vec<Cell> = scale
        .pick(
            vec![
                (512, ACCEPTANCE_OVERLOAD),
                (ACCEPTANCE_SESSIONS, ACCEPTANCE_OVERLOAD),
                (ACCEPTANCE_SESSIONS, 8),
            ],
            vec![
                (512, 2),
                (512, ACCEPTANCE_OVERLOAD),
                (ACCEPTANCE_SESSIONS, 2),
                (ACCEPTANCE_SESSIONS, ACCEPTANCE_OVERLOAD),
                (ACCEPTANCE_SESSIONS, 8),
                (2048, ACCEPTANCE_OVERLOAD),
            ],
        )
        .into_iter()
        .map(|(sessions, overload)| Cell { sessions, overload })
        .collect();

    let results: Vec<CellResult> = neuropuls_rt::pool::par_map(cells, run_cell);

    let mut out = Rendered::new("E24 — class-aware admission under overload");
    out.push(format!(
        "mixed-class backlog: {}/{} majority control-auth queued first, minority \
         inference last; tick budget = full-drain capacity / overload:",
        MINORITY_DENOM - 1,
        MINORITY_DENOM
    ));
    for r in &results {
        out.push(String::new());
        render_cell(&mut out, r);
    }
    out.push(String::new());
    out.push(
        "fifo drains the backlog in submission order, so the trailing minority class is \
         never admitted and its p99 wait is censored at the run length (starvation that \
         grows with the budget); equal-weight dwrr alternates classes, keeping every \
         class's p99 within 2x its weight-proportional fair drain"
            .to_string(),
    );

    let summary = results
        .iter()
        .map(|r| {
            let fm = r.fifo_minority();
            let dm = r.dwrr_minority();
            (
                r.cell.sessions,
                r.cell.overload,
                r.run_ticks,
                fm.wait_p99,
                fm.admitted,
                dm.wait_p99,
                dm.admitted,
                r.dwrr_bounded(),
            )
        })
        .collect();
    (out, summary)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_admission_sweep() {
        let (rendered, summary) = run(Scale::Smoke);
        assert!(!summary.is_empty());
        for &(sessions, overload, run_ticks, fifo_p99, fifo_adm, dwrr_p99, dwrr_adm, bounded) in
            &summary
        {
            // FIFO starves the trailing minority outright: nothing is
            // admitted and the p99 backlog wait is censored at the run
            // length.
            assert_eq!(
                fifo_adm, 0,
                "{sessions}x{overload}: fifo admitted part of the trailing minority"
            );
            assert!(
                fifo_p99 as f64 >= 0.9 * run_ticks as f64,
                "{sessions}x{overload}: fifo minority p99 {fifo_p99} not censored at {run_ticks}"
            );
            // DWRR admits the minority and keeps every class inside its
            // fairness bound.
            assert!(
                dwrr_adm > 0,
                "{sessions}x{overload}: dwrr admitted none of the minority"
            );
            assert!(
                bounded,
                "{sessions}x{overload}: dwrr p99 {dwrr_p99} exceeded the fairness bound"
            );
        }
        // The acceptance gate: at 1024 sessions and 4x overload DWRR
        // admits the whole minority class with p99 wait well under the
        // FIFO censoring point.
        let at4 = acceptance_row(&summary).expect("sweep carries the acceptance cell");
        let (_, _, run4, fifo4, _, dwrr4, dwrr4_adm, _) = at4;
        let minority = ACCEPTANCE_SESSIONS / MINORITY_DENOM;
        assert_eq!(
            dwrr4_adm, minority,
            "dwrr must admit the whole minority at 4x"
        );
        assert!(
            (dwrr4 as f64) <= 0.75 * run4 as f64,
            "dwrr minority p99 {dwrr4} not well under the {run4}-tick censoring point"
        );
        assert!(
            dwrr4 < fifo4,
            "dwrr minority p99 must beat fifo's censored {fifo4}"
        );
        // Starvation is unbounded in the budget: the same 1024-session
        // mix censors the minority wait at whatever the run length is,
        // so a larger budget (lower overload) means a *larger* p99.
        let at8 = summary
            .iter()
            .find(|&&(s, o, ..)| s == ACCEPTANCE_SESSIONS && o == 8)
            .copied()
            .expect("sweep carries the 8x cell");
        assert!(
            at4.3 > at8.3,
            "fifo minority p99 must grow with the run length: {} at 4x vs {} at 8x",
            at4.3,
            at8.3
        );
        // The output is deterministic: a second run renders identically.
        let (again, _) = run(Scale::Smoke);
        assert_eq!(rendered.stable_string(), again.stable_string());
    }
}
