//! The system-on-chip: CPU + bus + peripherals + statistics.
//!
//! [`Soc`] wires an RV32IM core to RAM, the PUF peripheral, the
//! accelerator window and a UART, runs firmware to completion and
//! reports gem5-style statistics including a simple energy model —
//! the "holistic approach to modeling and simulating a heterogeneous
//! system … including RISC-V CPUs and electronic or photonic
//! accelerators" of §V.

use crate::asm::{assemble, AsmError};
use crate::bus::{Bus, Ram};
use crate::peripherals::{AccelPeripheral, PufPeripheral, PufTelemetry, Uart};
use crate::riscv::{Cpu, Trap};
use crate::stats::StatRegistry;
use neuropuls_accel::engine::PhotonicEngine;
use neuropuls_puf::photonic::PhotonicPuf;
use std::sync::Arc;
use std::sync::Mutex;

/// Canonical memory map of the reference SoC.
pub mod memory_map {
    /// RAM base.
    pub const RAM_BASE: u32 = 0x8000_0000;
    /// RAM size in bytes.
    pub const RAM_SIZE: usize = 256 * 1024;
    /// PUF peripheral base.
    pub const PUF_BASE: u32 = 0x1000_0000;
    /// Accelerator peripheral base.
    pub const ACCEL_BASE: u32 = 0x1000_1000;
    /// UART base.
    pub const UART_BASE: u32 = 0x1000_2000;
}

/// Why the simulation stopped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StopReason {
    /// Firmware executed the halt syscall (`ecall` with a7 = 0); the
    /// payload is a0.
    Halted(u32),
    /// The instruction budget ran out.
    BudgetExhausted,
    /// An unrecoverable trap.
    Trapped(Trap),
}

/// Energy coefficients of the simple power model (picojoules).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyModel {
    /// Per retired CPU instruction.
    pub per_instruction_pj: f64,
    /// Per CPU cycle (static/clock tree).
    pub per_cycle_pj: f64,
}

impl Default for EnergyModel {
    fn default() -> Self {
        EnergyModel {
            per_instruction_pj: 2.0,
            per_cycle_pj: 0.5,
        }
    }
}

/// The reference SoC.
pub struct Soc {
    cpu: Cpu,
    bus: Bus,
    stats: StatRegistry,
    energy: EnergyModel,
    puf_telemetry: Arc<Mutex<PufTelemetry>>,
    uart_buffer: Arc<Mutex<Vec<u8>>>,
}

impl std::fmt::Debug for Soc {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Soc")
            .field("pc", &self.cpu.pc)
            .field("instret", &self.cpu.instret)
            .finish()
    }
}

impl Soc {
    /// Builds the SoC around a photonic PUF and an (already loaded)
    /// accelerator engine.
    pub fn new(puf: PhotonicPuf, accel: Option<PhotonicEngine>) -> Self {
        let mut bus = Bus::new(Ram::new(memory_map::RAM_BASE, memory_map::RAM_SIZE));
        let (puf_dev, puf_telemetry) = PufPeripheral::new(puf);
        // invariant: memory_map constants are statically disjoint, so
        // these mappings cannot overlap.
        bus.map(memory_map::PUF_BASE, Box::new(puf_dev))
            .expect("static memory map");
        if let Some(engine) = accel {
            bus.map(
                memory_map::ACCEL_BASE,
                Box::new(AccelPeripheral::new(engine)),
            )
            .expect("static memory map");
        }
        let (uart, uart_buffer) = Uart::new();
        // invariant: UART_BASE is disjoint from every mapping above.
        bus.map(memory_map::UART_BASE, Box::new(uart))
            .expect("static memory map");
        Soc {
            cpu: Cpu::new(memory_map::RAM_BASE),
            bus,
            stats: StatRegistry::new(),
            energy: EnergyModel::default(),
            puf_telemetry,
            uart_buffer,
        }
    }

    /// Assembles and loads firmware at the reset vector.
    ///
    /// # Errors
    ///
    /// Returns assembler errors with line context.
    pub fn load_firmware(&mut self, source: &str) -> Result<(), AsmError> {
        let code = assemble(source, memory_map::RAM_BASE)?;
        self.bus
            .load(memory_map::RAM_BASE, &code)
            .map_err(|e| AsmError {
                line: 0,
                message: format!("firmware does not fit in RAM: {e}"),
            })
    }

    /// Loads raw bytes at an address (data sections).
    ///
    /// # Errors
    ///
    /// [`crate::bus::BusFault::Unmapped`] when the range falls outside
    /// RAM.
    pub fn load_bytes(&mut self, addr: u32, bytes: &[u8]) -> Result<(), crate::bus::BusFault> {
        self.bus.load(addr, bytes)
    }

    /// The UART output so far.
    pub fn console(&self) -> Vec<u8> {
        // invariant: lock holders never panic while holding the buffer.
        self.uart_buffer
            .lock()
            .expect("uart buffer mutex poisoned")
            .clone()
    }

    /// CPU state (read-only view).
    pub fn cpu(&self) -> &Cpu {
        &self.cpu
    }

    /// The statistics registry.
    pub fn stats(&self) -> &StatRegistry {
        &self.stats
    }

    /// Runs until halt, trap or `max_instructions`.
    pub fn run(&mut self, max_instructions: u64) -> StopReason {
        let reason = loop {
            if self.cpu.instret >= max_instructions {
                break StopReason::BudgetExhausted;
            }
            let cycles_before = self.cpu.cycles;
            match self.cpu.step(&mut self.bus) {
                Ok(()) => {
                    self.bus.tick(self.cpu.cycles - cycles_before);
                }
                Err(Trap::Ecall) => {
                    let a7 = self.cpu.regs[17];
                    let a0 = self.cpu.regs[10];
                    match a7 {
                        0 => {
                            self.cpu.advance_past_trap();
                            break StopReason::Halted(a0);
                        }
                        1 => {
                            // invariant: lock holders never panic while
                            // holding the buffer.
                            self.uart_buffer
                                .lock()
                                .expect("uart buffer mutex poisoned")
                                .push(a0 as u8);
                            self.cpu.advance_past_trap();
                        }
                        _ => break StopReason::Trapped(Trap::Ecall),
                    }
                }
                Err(trap) => break StopReason::Trapped(trap),
            }
        };
        self.collect_stats();
        reason
    }

    fn collect_stats(&mut self) {
        let instret = self.cpu.instret as f64;
        let cycles = self.cpu.cycles as f64;
        self.stats
            .set("cpu.instructions", instret, "retired instructions");
        self.stats.set("cpu.cycles", cycles, "simulated cycles");
        self.stats.set(
            "cpu.ipc",
            if cycles > 0.0 { instret / cycles } else { 0.0 },
            "instructions per cycle",
        );
        // Bus transaction counters. `BusStats` is cumulative, so the
        // bus-side tally is reset after folding: each `run` contributes
        // its delta and the registry counters stay monotone even when
        // firmware is run in several bursts.
        let bus = self.bus.stats();
        self.stats.counter("bus.ram_reads", bus.ram_reads);
        self.stats.counter("bus.ram_writes", bus.ram_writes);
        self.stats.counter("bus.device_reads", bus.device_reads);
        self.stats.counter("bus.device_writes", bus.device_writes);
        self.stats.counter("bus.faults", bus.faults);
        self.bus.reset_stats();
        // invariant: telemetry lock holders never panic while holding
        // the lock.
        let t = self
            .puf_telemetry
            .lock()
            .expect("telemetry mutex poisoned")
            .clone();
        self.stats
            .set("puf.evaluations", t.evaluations as f64, "PUF evaluations");
        self.stats
            .set("puf.busy_cycles", t.busy_cycles as f64, "PUF busy cycles");
        self.stats
            .set("puf.energy_pj", t.energy_pj, "PUF energy (pJ)");
        let cpu_energy =
            instret * self.energy.per_instruction_pj + cycles * self.energy.per_cycle_pj;
        self.stats
            .set("cpu.energy_pj", cpu_energy, "CPU energy (pJ)");
        self.stats.set(
            "soc.energy_pj",
            cpu_energy + t.energy_pj,
            "total energy (pJ)",
        );
        // At the 1 GHz reference clock, cycles are nanoseconds.
        self.stats
            .set("soc.sim_time_ns", cycles, "simulated time (ns)");
    }
}

/// Firmware library used by tests, examples and benches.
pub mod firmware {
    /// Interrogates the PUF once: writes the challenge from a0/a1,
    /// starts, busy-waits, returns the response in a0/a1, halts with
    /// a0 = response word 0.
    pub const PUF_READ: &str = "
        li   t0, 0x10000000      # PUF base
        li   a0, 0x0DDC0FFE      # challenge word 0
        li   a1, 0x12345678      # challenge word 1
        sw   a0, 0(t0)
        sw   a1, 4(t0)
        li   t1, 1
        sw   t1, 8(t0)           # CTRL: start
    wait:
        lw   t2, 12(t0)          # STATUS
        andi t2, t2, 2
        beqz t2, wait
        lw   a0, 16(t0)          # RESPONSE0
        lw   a1, 20(t0)          # RESPONSE1
        li   a7, 0
        ecall
    ";

    /// Hashes 1 KiB of RAM with a toy rolling checksum, self-timing with
    /// rdcycle, then halts with the checksum in a0 (the firmware analog
    /// of the mutual-auth memory-hash evidence).
    pub const MEMORY_CHECK: &str = "
        rdcycle s0
        li   t0, 0x80010000      # region base
        li   t1, 0x80010400      # region end
        li   a0, 0
    loop:
        lw   t2, 0(t0)
        add  a0, a0, t2
        slli t3, a0, 7
        srli t4, a0, 25
        or   a0, t3, t4          # rotate left 7
        xor  a0, a0, t2
        addi t0, t0, 4
        bltu t0, t1, loop
        rdcycle s1
        sub  s2, s1, s0          # clock count evidence
        li   a7, 0
        ecall
    ";
}

#[cfg(test)]
mod tests {
    use super::*;
    use neuropuls_accel::config::NetworkConfig;
    use neuropuls_photonic::process::DieId;

    fn soc() -> Soc {
        Soc::new(PhotonicPuf::reference(DieId(1), 1), None)
    }

    #[test]
    fn halts_on_syscall_zero() {
        let mut s = soc();
        s.load_firmware("li a0, 42\nli a7, 0\necall").unwrap();
        assert_eq!(s.run(1000), StopReason::Halted(42));
    }

    #[test]
    fn putchar_syscall_writes_console() {
        let mut s = soc();
        s.load_firmware(
            "li a0, 72
             li a7, 1
             ecall
             li a0, 105
             ecall
             li a7, 0
             ecall",
        )
        .unwrap();
        assert!(matches!(s.run(1000), StopReason::Halted(_)));
        assert_eq!(s.console(), b"Hi");
    }

    #[test]
    fn budget_exhaustion_is_reported() {
        let mut s = soc();
        s.load_firmware("spin: j spin").unwrap();
        assert_eq!(s.run(100), StopReason::BudgetExhausted);
    }

    #[test]
    fn firmware_reads_puf_through_mmio() {
        let mut s = soc();
        s.load_firmware(firmware::PUF_READ).unwrap();
        let reason = s.run(100_000);
        let StopReason::Halted(r0) = reason else {
            panic!("unexpected stop: {reason:?}");
        };
        assert_ne!(r0, 0, "PUF response word 0 should be nontrivial");
        assert_eq!(s.stats().scalar("puf.evaluations"), 1.0);
        assert!(s.stats().scalar("puf.energy_pj") > 0.0);
    }

    #[test]
    fn puf_response_via_firmware_is_reproducible() {
        let run_once = |die: u64, seed: u64| -> u32 {
            let mut s = Soc::new(PhotonicPuf::reference(DieId(die), seed), None);
            s.load_firmware(firmware::PUF_READ).unwrap();
            match s.run(100_000) {
                StopReason::Halted(r0) => r0,
                other => panic!("{other:?}"),
            }
        };
        let a = run_once(3, 1);
        let b = run_once(3, 2); // same die, different noise stream
        let flips = (a ^ b).count_ones();
        assert!(flips <= 4, "same die diverged by {flips} bits");
        let c = run_once(4, 1);
        assert!((a ^ c).count_ones() > 6, "different die too similar");
    }

    #[test]
    fn memory_check_firmware_self_times() {
        let mut s = soc();
        let data: Vec<u8> = (0..1024).map(|i| (i % 256) as u8).collect();
        s.load_bytes(0x8001_0000, &data).unwrap();
        s.load_firmware(firmware::MEMORY_CHECK).unwrap();
        let reason = s.run(100_000);
        assert!(matches!(reason, StopReason::Halted(_)));
        // s2 holds the rdcycle delta.
        assert!(s.cpu().regs[18] > 1000, "clock count {}", s.cpu().regs[18]);
    }

    #[test]
    fn memory_check_detects_corruption() {
        let checksum = |corrupt: bool| -> u32 {
            let mut s = soc();
            let mut data: Vec<u8> = (0..1024).map(|i| (i % 256) as u8).collect();
            if corrupt {
                data[512] ^= 1;
            }
            s.load_bytes(0x8001_0000, &data).unwrap();
            s.load_firmware(firmware::MEMORY_CHECK).unwrap();
            match s.run(100_000) {
                StopReason::Halted(sum) => sum,
                other => panic!("{other:?}"),
            }
        };
        assert_ne!(checksum(false), checksum(true));
    }

    #[test]
    fn accel_peripheral_reachable_from_firmware() {
        let mut engine = PhotonicEngine::reference(1);
        engine
            .load(NetworkConfig::mlp(
                &[4, 4],
                |_, o, i| {
                    if o == i {
                        2.0
                    } else {
                        0.0
                    }
                },
            ))
            .unwrap();
        let mut s = Soc::new(PhotonicPuf::reference(DieId(5), 1), Some(engine));
        // Write 1.0f32 to input 0, run, read output 0.
        s.load_firmware(
            "li  t0, 0x10001000
             li  t1, 0x3F800000     # 1.0f32
             sw  t1, 0(t0)
             li  t2, 1
             sw  t2, 16(t0)         # CTRL
         wait:
             lw  t3, 20(t0)         # STATUS
             andi t3, t3, 2
             beqz t3, wait
             lw  a0, 24(t0)         # OUTPUT0
             li  a7, 0
             ecall",
        )
        .unwrap();
        let StopReason::Halted(bits) = s.run(100_000) else {
            panic!("did not halt");
        };
        let y = f32::from_bits(bits);
        assert!((y - 2.0).abs() < 0.2, "y = {y}");
    }

    #[test]
    fn stats_include_energy_and_time() {
        let mut s = soc();
        s.load_firmware(firmware::PUF_READ).unwrap();
        let _ = s.run(100_000);
        let dump = s.stats().dump();
        assert!(dump.contains("cpu.instructions"));
        assert!(dump.contains("soc.energy_pj"));
        assert!(s.stats().scalar("soc.sim_time_ns") > 0.0);
        assert!(s.stats().scalar("cpu.ipc") > 0.0);
        assert!(dump.contains("bus.ram_reads"));
        assert!(
            s.stats().counter_value("bus.device_writes") >= 3,
            "PUF_READ issues at least challenge/CTRL device writes"
        );
        assert_eq!(s.stats().counter_value("bus.faults"), 0);
    }

    #[test]
    fn bus_counters_accumulate_across_runs() {
        let mut s = soc();
        s.load_firmware("li a0, 1\nli a7, 0\necall").unwrap();
        let _ = s.run(1000);
        let first = s.stats().counter_value("bus.ram_reads");
        assert!(first > 0, "instruction fetches count as RAM reads");
        // Re-running the same firmware adds a delta rather than
        // re-folding the cumulative bus tally.
        let mut s2 = soc();
        s2.load_firmware("li a0, 1\nli a7, 0\necall").unwrap();
        let _ = s2.run(1000);
        let _ = s2.run(1000);
        assert!(
            s2.stats().counter_value("bus.ram_reads") >= first,
            "second run must not shrink the counter"
        );
    }
}
