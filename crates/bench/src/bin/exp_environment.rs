//! Regenerates the environmental sweep (E11).
use neuropuls_bench::{experiments, Scale};

fn main() {
    let scale = Scale::from_args();
    let (out, _, _, _) = experiments::environment::run(scale);
    print!("{out}");
}
