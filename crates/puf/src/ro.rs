//! Ring-oscillator PUF — the substrate of the Vinagrero et al. \[13\]
//! filtering study that Fig. 3 is drawn from.
//!
//! Each RO has a fabrication-fixed frequency offset (Gaussian process
//! variation) plus temperature drift and per-measurement jitter. A
//! challenge selects an RO *pair*; both are counted over a fixed window
//! and the response bit is the sign of the count difference. The raw
//! count difference is exposed because the filtering method thresholds
//! it: pairs with small |Δcount| are unreliable, pairs with huge |Δcount|
//! are biased across devices (aliased).

use crate::bits::{Challenge, Response};
use crate::traits::{Puf, PufError, PufKind};
use neuropuls_photonic::laser::gaussian;
use neuropuls_photonic::process::DieId;
use neuropuls_photonic::Environment;
use neuropuls_rt::rngs::StdRng;
use neuropuls_rt::SeedableRng;

/// Configuration of the RO array.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RoConfig {
    /// Number of ring oscillators.
    pub oscillators: usize,
    /// Nominal frequency in MHz.
    pub nominal_mhz: f64,
    /// Process σ of the per-RO frequency offset, MHz.
    pub process_sigma_mhz: f64,
    /// Per-measurement jitter σ, MHz.
    pub jitter_sigma_mhz: f64,
    /// Temperature coefficient, MHz per kelvin (ROs slow down when hot;
    /// mismatch in the coefficient is what breaks pair ordering).
    pub temp_coeff_mhz_per_k: f64,
    /// σ of the *per-RO* temperature-coefficient mismatch, MHz/K.
    pub temp_coeff_sigma: f64,
    /// σ of the *design-level* systematic pair skew, MHz. Routing and
    /// placement asymmetries give each pair a frequency offset that is
    /// the **same on every die**; pairs whose skew dwarfs the process
    /// variation answer identically across devices — the bit-aliasing
    /// phenomenon the Fig. 3 filtering method manages.
    pub pair_skew_sigma_mhz: f64,
    /// Counting window in µs.
    pub window_us: f64,
}

impl RoConfig {
    /// A 256-RO array with parameters in the range of published RO-PUF
    /// silicon (≈500 MHz, σ_process ≈ 1 %, jitter ≈ 0.05 %).
    pub fn reference() -> Self {
        RoConfig {
            oscillators: 256,
            nominal_mhz: 500.0,
            process_sigma_mhz: 5.0,
            jitter_sigma_mhz: 0.25,
            temp_coeff_mhz_per_k: -0.15,
            // Per-RO spread of the temperature coefficient: ±20 % of the
            // nominal slope, matching published RO characterization where
            // the coefficient varies by tens of percent across an array.
            // This is the term that reorders marginal pairs at temperature
            // extremes (hot-cold BER of a few percent); the common -0.15
            // MHz/K slope cancels inside a pair.
            temp_coeff_sigma: 0.03,
            pair_skew_sigma_mhz: 4.0,
            window_us: 20.0,
        }
    }
}

/// The RO PUF.
#[derive(Debug, Clone)]
pub struct RoPuf {
    die: DieId,
    config: RoConfig,
    /// Fabrication-fixed frequency offsets (MHz).
    offsets: Vec<f64>,
    /// Per-RO temperature coefficients (MHz/K).
    temp_coeffs: Vec<f64>,
    env: Environment,
    rng: StdRng,
}

impl RoPuf {
    /// Fabricates the array for `die`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration has fewer than two oscillators.
    pub fn fabricate(die: DieId, config: RoConfig, noise_seed: u64) -> Self {
        assert!(config.oscillators >= 2, "need at least two oscillators");
        let mut fab_rng = StdRng::seed_from_u64(die.0.wrapping_mul(0x9E6C_63D0_876A_68D5));
        // Design-level skew: seeded by the *design*, not the die, so all
        // devices share it.
        let mut design_rng = StdRng::seed_from_u64(0x05EE_D0F7_DE51);
        let mut offsets: Vec<f64> = (0..config.oscillators)
            .map(|_| config.process_sigma_mhz * gaussian(&mut fab_rng))
            .collect();
        for pair in 0..config.oscillators / 2 {
            let skew = config.pair_skew_sigma_mhz * gaussian(&mut design_rng);
            offsets[2 * pair] += skew / 2.0;
            offsets[2 * pair + 1] -= skew / 2.0;
        }
        let temp_coeffs = (0..config.oscillators)
            .map(|_| config.temp_coeff_mhz_per_k + config.temp_coeff_sigma * gaussian(&mut fab_rng))
            .collect();
        RoPuf {
            die,
            config,
            offsets,
            temp_coeffs,
            env: Environment::nominal(),
            rng: StdRng::seed_from_u64(noise_seed ^ die.0.rotate_left(7)),
        }
    }

    /// Reference-configuration constructor.
    pub fn reference(die: DieId, noise_seed: u64) -> Self {
        Self::fabricate(die, RoConfig::reference(), noise_seed)
    }

    /// The die this array was fabricated as.
    pub fn die(&self) -> DieId {
        self.die
    }

    /// The configuration.
    pub fn config(&self) -> &RoConfig {
        &self.config
    }

    /// Number of distinct adjacent-disjoint pairs addressable as
    /// challenges (pair `i` compares RO `2i` and RO `2i+1`, the classic
    /// Suh–Devadas arrangement which never reuses an oscillator).
    pub fn pairs(&self) -> usize {
        self.config.oscillators / 2
    }

    /// Measures the instantaneous frequency of oscillator `idx` (MHz).
    fn measure_frequency(&mut self, idx: usize) -> f64 {
        self.config.nominal_mhz
            + self.offsets[idx]
            + self.temp_coeffs[idx] * self.env.delta_t()
            + self.config.jitter_sigma_mhz * gaussian(&mut self.rng)
    }

    /// Counts both oscillators of pair `pair` over the window, returning
    /// `(count_a, count_b)`.
    ///
    /// # Errors
    ///
    /// Returns [`PufError::ChallengeOutOfRange`] on a bad pair index.
    pub fn count_pair(&mut self, pair: usize) -> Result<(u64, u64), PufError> {
        if pair >= self.pairs() {
            return Err(PufError::ChallengeOutOfRange(format!(
                "pair {pair} of {}",
                self.pairs()
            )));
        }
        let fa = self.measure_frequency(2 * pair);
        let fb = self.measure_frequency(2 * pair + 1);
        let window = self.config.window_us;
        Ok(((fa * window) as u64, (fb * window) as u64))
    }

    /// Signed count difference of a pair — the quantity the filtering
    /// method thresholds.
    ///
    /// # Errors
    ///
    /// See [`Self::count_pair`].
    pub fn count_difference(&mut self, pair: usize) -> Result<i64, PufError> {
        let (a, b) = self.count_pair(pair)?;
        Ok(a as i64 - b as i64)
    }

    /// One response bit from a pair.
    ///
    /// # Errors
    ///
    /// See [`Self::count_pair`].
    pub fn pair_bit(&mut self, pair: usize) -> Result<u8, PufError> {
        Ok(u8::from(self.count_difference(pair)? > 0))
    }

    /// The noise-free expected count difference of a pair at the current
    /// environment (enrollment-time characterization).
    pub fn expected_difference(&self, pair: usize) -> f64 {
        let dt = self.env.delta_t();
        let fa = self.offsets[2 * pair] + self.temp_coeffs[2 * pair] * dt;
        let fb = self.offsets[2 * pair + 1] + self.temp_coeffs[2 * pair + 1] * dt;
        (fa - fb) * self.config.window_us
    }
}

impl Puf for RoPuf {
    /// Challenge = pair index, log2(pairs) bits.
    fn challenge_bits(&self) -> usize {
        usize::BITS as usize - (self.pairs() - 1).leading_zeros() as usize
    }

    fn response_bits(&self) -> usize {
        1
    }

    fn kind(&self) -> PufKind {
        PufKind::Weak
    }

    fn respond(&mut self, challenge: &Challenge) -> Result<Response, PufError> {
        let mut pair = 0usize;
        for (i, &bit) in challenge.bits().iter().enumerate() {
            if i >= usize::BITS as usize {
                break;
            }
            pair |= (bit as usize) << i;
        }
        Ok(Response::from_bits([self.pair_bit(pair)?]))
    }

    fn set_environment(&mut self, env: Environment) {
        self.env = env;
    }

    fn environment(&self) -> Environment {
        self.env
    }

    /// One counting window.
    fn latency_ns(&self) -> f64 {
        self.config.window_us * 1000.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn puf(die: u64) -> RoPuf {
        RoPuf::reference(DieId(die), die * 31 + 5)
    }

    #[test]
    fn pair_bits_mostly_stable() {
        let mut p = puf(1);
        let mut flips = 0usize;
        let mut total = 0usize;
        for pair in 0..p.pairs() {
            let first = p.pair_bit(pair).unwrap();
            for _ in 0..5 {
                total += 1;
                if p.pair_bit(pair).unwrap() != first {
                    flips += 1;
                }
            }
        }
        let ber = flips as f64 / total as f64;
        assert!(ber < 0.15, "RO BER {ber}");
    }

    #[test]
    fn small_expected_difference_means_unreliable() {
        let mut p = puf(2);
        // Find the pair with the smallest and largest |expected diff|.
        let (mut min_pair, mut max_pair) = (0usize, 0usize);
        for pair in 1..p.pairs() {
            if p.expected_difference(pair).abs() < p.expected_difference(min_pair).abs() {
                min_pair = pair;
            }
            if p.expected_difference(pair).abs() > p.expected_difference(max_pair).abs() {
                max_pair = pair;
            }
        }
        let flip_rate = |p: &mut RoPuf, pair: usize| {
            let reads: Vec<u8> = (0..60).map(|_| p.pair_bit(pair).unwrap()).collect();
            let ones: usize = reads.iter().map(|&b| b as usize).sum();
            let frac = ones as f64 / reads.len() as f64;
            frac.min(1.0 - frac)
        };
        let unstable = flip_rate(&mut p, min_pair);
        let stable = flip_rate(&mut p, max_pair);
        assert!(stable <= unstable, "stable {stable} vs unstable {unstable}");
        assert!(stable < 0.05);
    }

    #[test]
    fn different_dies_have_different_orderings() {
        let mut a = puf(3);
        let mut b = puf(4);
        let bits_a: Vec<u8> = (0..a.pairs()).map(|i| a.pair_bit(i).unwrap()).collect();
        let bits_b: Vec<u8> = (0..b.pairs()).map(|i| b.pair_bit(i).unwrap()).collect();
        let diff =
            bits_a.iter().zip(&bits_b).filter(|(x, y)| x != y).count() as f64 / bits_a.len() as f64;
        assert!(diff > 0.3, "inter-die pair disagreement {diff}");
    }

    #[test]
    fn out_of_range_pair_rejected() {
        let mut p = puf(5);
        let n = p.pairs();
        assert!(p.count_pair(n).is_err());
        assert!(p.count_pair(n - 1).is_ok());
    }

    #[test]
    fn counts_scale_with_window() {
        let mut p = puf(6);
        let (a, _) = p.count_pair(0).unwrap();
        // 500 MHz over 20 µs ≈ 10_000 counts.
        assert!((9_000..11_000).contains(&a), "count {a}");
    }

    #[test]
    fn temperature_flips_marginal_pairs() {
        let mut p = puf(7);
        let cold: Vec<u8> = (0..p.pairs()).map(|i| p.pair_bit(i).unwrap()).collect();
        p.set_environment(Environment::at_temperature(85.0));
        let hot: Vec<u8> = (0..p.pairs()).map(|i| p.pair_bit(i).unwrap()).collect();
        let flips = cold.iter().zip(&hot).filter(|(a, b)| a != b).count();
        assert!(flips > 0, "temperature never flipped any pair");
        assert!(flips < p.pairs() / 2, "temperature destroyed the PUF");
    }

    #[test]
    fn trait_respond_matches_pair_indexing() {
        let mut p = puf(8);
        let c = Challenge::from_u64(10, p.challenge_bits());
        let r = p.respond(&c).unwrap();
        assert_eq!(r.len(), 1);
    }
}
