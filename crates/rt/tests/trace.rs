//! Property tests for the `neuropuls_rt::trace` histogram and registry.
//!
//! Pinned by CI as `cargo test -q -p neuropuls-rt --test trace`. The
//! three properties the observability layer's determinism contract
//! rests on:
//!
//! 1. histogram merge is commutative: merge(a, b) == merge(b, a);
//! 2. bucket counts are conserved when shards are aggregated under
//!    `pool::par_map`, regardless of thread count;
//! 3. quantile estimates are within one bucket width of the exact
//!    order statistic for seeded in-range inputs.

use neuropuls_rt::pool;
use neuropuls_rt::prelude::*;
use neuropuls_rt::trace::{Histogram, Registry, Tracer, Value};
use neuropuls_rt::{Rng, SeedableRng};

fn fill(h: &mut Histogram, seed: u64, n: usize, hi: f64) {
    let mut rng = neuropuls_rt::rngs::StdRng::seed_from_u64(seed);
    for _ in 0..n {
        h.record(rng.gen_range(0.0..hi));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn histogram_merge_commutes(
        seed_a in 0u64..4096,
        seed_b in 0u64..4096,
        n_a in 0usize..300,
        n_b in 0usize..300,
    ) {
        let mut a = Histogram::default_bounds();
        let mut b = Histogram::default_bounds();
        fill(&mut a, seed_a, n_a, 1.0e7);
        fill(&mut b, seed_b, n_b, 1.0e7);
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        prop_assert_eq!(&ab, &ba);
        prop_assert_eq!(ab.count(), (n_a + n_b) as u64);
    }

    #[test]
    fn bucket_counts_conserved_under_par_map(
        seed in 0u64..4096,
        shards in 1usize..12,
        per_shard in 0usize..200,
    ) {
        // Serial reference: everything recorded into one histogram.
        let mut serial = Histogram::default_bounds();
        for s in 0..shards {
            fill(&mut serial, seed ^ s as u64, per_shard, 1.0e6);
        }

        // Parallel: one histogram per shard via par_map (the pool may
        // run these on any number of worker threads), merged in input
        // order afterwards.
        let items: Vec<u64> = (0..shards).map(|s| seed ^ s as u64).collect();
        let parts = pool::par_map(items, |shard_seed| {
            let mut h = Histogram::default_bounds();
            fill(&mut h, shard_seed, per_shard, 1.0e6);
            h
        });
        let mut merged = Histogram::default_bounds();
        for p in &parts {
            merged.merge(p);
        }

        // Bucket counts, totals and extrema are exactly conserved; the
        // f64 sum only to rounding (shard-sum association differs).
        prop_assert_eq!(merged.bucket_counts(), serial.bucket_counts());
        prop_assert_eq!(merged.count(), serial.count());
        if merged.count() > 0 {
            prop_assert_eq!(merged.min(), serial.min());
            prop_assert_eq!(merged.max(), serial.max());
            prop_assert!((merged.sum() - serial.sum()).abs() <= serial.sum().abs() * 1e-12);
        }
        let total: u64 = merged.bucket_counts().iter().sum();
        prop_assert_eq!(total, (shards * per_shard) as u64);
        prop_assert_eq!(total, merged.count());
    }

    #[test]
    fn quantile_within_one_bucket_width_of_exact(
        seed in 0u64..4096,
        n in 1usize..400,
        q in 0.0f64..1.0,
    ) {
        // Uniform bucket width 2.0 over [0, 100); samples in range.
        let bounds: Vec<f64> = (1..=50).map(|i| f64::from(i) * 2.0).collect();
        let mut h = Histogram::with_bounds(bounds);
        let mut rng = neuropuls_rt::rngs::StdRng::seed_from_u64(seed);
        let mut values: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0..100.0)).collect();
        for &v in &values {
            h.record(v);
        }
        values.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let rank = ((q * n as f64).ceil() as usize).max(1) - 1;
        let exact = values[rank.min(n - 1)];
        let est = h.quantile(q);
        prop_assert!(
            (est - exact).abs() <= 2.0 + 1e-9,
            "q={} est={} exact={}", q, est, exact
        );
    }

    #[test]
    fn registry_merge_matches_serial_recording(
        seed in 0u64..4096,
        shards in 1usize..8,
        per_shard in 1usize..100,
    ) {
        // Shared registry written from par_map workers must agree with
        // a serial recording: every op commutes.
        let shared = Registry::new();
        let items: Vec<u64> = (0..shards as u64).collect();
        pool::par_map(items.clone(), |s| {
            let mut rng = neuropuls_rt::rngs::StdRng::seed_from_u64(seed ^ s);
            for _ in 0..per_shard {
                shared.counter("events", 1);
                shared.observe("lat", rng.gen_range(0.0..1.0e4));
            }
        });
        let serial = Registry::new();
        for s in 0..shards as u64 {
            let mut rng = neuropuls_rt::rngs::StdRng::seed_from_u64(seed ^ s);
            for _ in 0..per_shard {
                serial.counter("events", 1);
                serial.observe("lat", rng.gen_range(0.0..1.0e4));
            }
        }
        prop_assert_eq!(shared.counter_value("events"), (shards * per_shard) as u64);
        let a = shared.histogram("lat").unwrap();
        let b = serial.histogram("lat").unwrap();
        prop_assert_eq!(a.bucket_counts(), b.bucket_counts());
        prop_assert_eq!(a.count(), b.count());
    }
}

#[test]
fn tracer_merge_in_input_order_is_thread_count_independent() {
    let items: Vec<u64> = (0..16).collect();
    let shards = pool::par_map(items, |i| {
        let mut t = Tracer::new();
        let s = t.span_start(i, "work", vec![("item", Value::from(i))]);
        t.span_end(i + 3, s, vec![]);
        t
    });
    let mut merged = Tracer::new();
    for t in shards {
        merged.merge(t);
    }
    // Input-order merge: event n belongs to item n/2, so the log is
    // identical no matter how the pool scheduled the shards.
    let ticks: Vec<u64> = merged.events().iter().map(|e| e.tick).collect();
    let expect: Vec<u64> = (0..16).flat_map(|i| [i, i + 3]).collect();
    assert_eq!(ticks, expect);
}
