//! E5 — §III-B: attestation latency vs. memory size, detection of
//! compromised and hiding devices, and the slow-PUF ablation showing why
//! the pPUF's ≥5 Gb/s rate matters.

use crate::{Rendered, Scale};
use neuropuls_photonic::process::DieId;
use neuropuls_protocols::attestation::{AttestationVerifier, AttestingDevice, TimingModel};
use neuropuls_protocols::error::ProtocolError;
use neuropuls_puf::photonic::PhotonicPuf;

/// One row of the sweep.
#[derive(Debug, Clone, Copy)]
pub struct Row {
    /// Memory size in KiB.
    pub memory_kib: usize,
    /// Honest walk duration (µs).
    pub honest_us: f64,
    /// Whether the honest device was accepted.
    pub honest_ok: bool,
    /// Whether the single-byte compromise was detected.
    pub compromise_detected: bool,
    /// Whether the hide-and-seek adversary was caught by the time bound.
    pub hiding_caught: bool,
}

/// Runs the sweep; also returns whether the slow-PUF ablation admits the
/// hiding adversary.
pub fn run(scale: Scale) -> (Rendered, Vec<Row>, bool) {
    let sizes_kib: Vec<usize> = scale.pick(vec![4, 16], vec![64, 256, 1024, 4096]);
    let die = DieId(0xE5);
    let timing = TimingModel::photonic();

    let mut rows = Vec::new();
    for &kib in &sizes_kib {
        let memory: Vec<u8> = (0..kib * 1024).map(|i| (i * 97 % 251) as u8).collect();
        let mut verifier =
            AttestationVerifier::new(PhotonicPuf::reference(die, 2), memory.clone(), timing);

        let mut honest =
            AttestingDevice::new(PhotonicPuf::reference(die, 1), memory.clone(), timing);
        let request = verifier.begin();
        let report = honest.attest(&request).expect("attest");
        let honest_us = report.elapsed_ns / 1000.0;
        let honest_ok = verifier.verify(&request, &report).is_ok();

        let mut compromised =
            AttestingDevice::new(PhotonicPuf::reference(die, 1), memory.clone(), timing);
        compromised.corrupt_memory(kib * 512, 0xFF);
        let request = verifier.begin();
        let report = compromised.attest(&request).expect("attest");
        let compromise_detected = matches!(
            verifier.verify(&request, &report),
            Err(ProtocolError::AttestationDigestMismatch)
        );

        let mut hiding = AttestingDevice::new(PhotonicPuf::reference(die, 1), memory, timing);
        hiding.adversary_overhead_ns = timing.chunk_ns();
        let request = verifier.begin();
        let report = hiding.attest(&request).expect("attest");
        let hiding_caught = matches!(
            verifier.verify(&request, &report),
            Err(ProtocolError::AttestationTimeout { .. })
        );

        rows.push(Row {
            memory_kib: kib,
            honest_us,
            honest_ok,
            compromise_detected,
            hiding_caught,
        });
    }

    // Slow-PUF ablation at the smallest size.
    let kib = sizes_kib[0];
    let memory: Vec<u8> = vec![0xAA; kib * 1024];
    let slow = TimingModel::slow_electronic();
    let mut verifier =
        AttestationVerifier::new(PhotonicPuf::reference(die, 2), memory.clone(), slow);
    let mut hiding = AttestingDevice::new(PhotonicPuf::reference(die, 1), memory, slow);
    hiding.adversary_overhead_ns = TimingModel::photonic().chunk_ns();
    let request = verifier.begin();
    let report = hiding.attest(&request).expect("attest");
    let slow_puf_admits_attack = verifier.verify(&request, &report).is_ok();

    let mut out = Rendered::new("E5 (§III-B) — software attestation with temporal constraints");
    out.push(format!(
        "{:>8} {:>12} {:>8} {:>12} {:>12}",
        "mem KiB", "honest µs", "accept", "compromise", "hide&seek"
    ));
    for r in &rows {
        out.push(format!(
            "{:>8} {:>12.1} {:>8} {:>12} {:>12}",
            r.memory_kib,
            r.honest_us,
            if r.honest_ok { "yes" } else { "NO" },
            if r.compromise_detected {
                "detected"
            } else {
                "MISSED"
            },
            if r.hiding_caught { "caught" } else { "MISSED" }
        ));
    }
    out.push(format!(
        "slow-PUF ablation ({} ns/link, unpipelined): hide-and-seek adversary {}",
        slow.puf_latency_ns,
        if slow_puf_admits_attack {
            "fits inside the loosened bound (attack succeeds)"
        } else {
            "still caught"
        }
    ));
    (out, rows, slow_puf_admits_attack)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_attestation_sweep() {
        let (_, rows, slow_admits) = run(Scale::Smoke);
        for r in &rows {
            assert!(r.honest_ok, "honest rejected at {} KiB", r.memory_kib);
            assert!(r.compromise_detected);
            assert!(r.hiding_caught);
        }
        // Latency scales with memory.
        assert!(rows.last().unwrap().honest_us > rows[0].honest_us);
        assert!(slow_admits, "slow-PUF ablation should admit the attack");
    }
}
