//! Challenge and response bit strings.
//!
//! Newtypes keep challenges and responses from being mixed up at compile
//! time (a challenge must never be stored where a response belongs — the
//! whole point of the authentication protocol is which of the two is
//! secret). Bits are stored one per byte.

use neuropuls_rt::codec::{CodecError, FromBytes, Reader, ToBytes, Writer};
use neuropuls_rt::Rng;
use std::fmt;

macro_rules! bitstring_type {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(Debug, Clone, PartialEq, Eq, Hash)]
        pub struct $name(Vec<u8>);

        impl ToBytes for $name {
            fn write_into(&self, out: &mut Writer) {
                // Packed form on the wire: 8x smaller than the in-memory
                // bit-per-byte layout, plus the exact bit length.
                out.u64(self.0.len() as u64);
                out.bytes(&self.to_packed());
            }
        }

        impl FromBytes for $name {
            fn read_from(r: &mut Reader<'_>) -> Result<Self, CodecError> {
                let bits = r.u64()? as usize;
                let packed = r.bytes()?;
                if packed.len() != bits.div_ceil(8) {
                    return Err(CodecError::Invalid("bit length / packed length mismatch"));
                }
                Ok(Self::from_packed(packed, bits))
            }
        }

        impl $name {
            /// Wraps raw bits (values are masked to 0/1).
            pub fn from_bits(bits: impl IntoIterator<Item = u8>) -> Self {
                $name(bits.into_iter().map(|b| b & 1).collect())
            }

            /// The low `len` bits of `value`, LSB first.
            pub fn from_u64(value: u64, len: usize) -> Self {
                assert!(len <= 64, "from_u64 supports at most 64 bits");
                $name((0..len).map(|i| ((value >> i) & 1) as u8).collect())
            }

            /// Unpacks `len` bits from packed bytes (LSB first).
            pub fn from_packed(bytes: &[u8], len: usize) -> Self {
                assert!(
                    len <= bytes.len() * 8,
                    "packed buffer too short: {} bits requested from {} bytes",
                    len,
                    bytes.len()
                );
                $name((0..len).map(|i| (bytes[i / 8] >> (i % 8)) & 1).collect())
            }

            /// Uniformly random bits from `rng`.
            pub fn random<R: Rng + ?Sized>(len: usize, rng: &mut R) -> Self {
                $name((0..len).map(|_| rng.gen::<bool>() as u8).collect())
            }

            /// Number of bits.
            pub fn len(&self) -> usize {
                self.0.len()
            }

            /// True when the string holds no bits.
            pub fn is_empty(&self) -> bool {
                self.0.is_empty()
            }

            /// Read-only view of the bits (one per byte).
            pub fn bits(&self) -> &[u8] {
                &self.0
            }

            /// Packs into bytes, LSB first.
            pub fn to_packed(&self) -> Vec<u8> {
                let mut out = vec![0u8; self.0.len().div_ceil(8)];
                for (i, &bit) in self.0.iter().enumerate() {
                    out[i / 8] |= bit << (i % 8);
                }
                out
            }

            /// Bitwise XOR with another string of the same length.
            ///
            /// # Panics
            ///
            /// Panics on length mismatch.
            pub fn xor(&self, other: &Self) -> Self {
                assert_eq!(self.len(), other.len(), "xor length mismatch");
                $name(
                    self.0
                        .iter()
                        .zip(other.0.iter())
                        .map(|(a, b)| a ^ b)
                        .collect(),
                )
            }

            /// Hamming distance to another string of the same length.
            ///
            /// # Panics
            ///
            /// Panics on length mismatch.
            pub fn hamming(&self, other: &Self) -> usize {
                assert_eq!(self.len(), other.len(), "hamming length mismatch");
                self.0
                    .iter()
                    .zip(other.0.iter())
                    .filter(|(a, b)| (**a ^ **b) & 1 == 1)
                    .count()
            }

            /// Fractional Hamming distance in `[0, 1]`.
            pub fn fhd(&self, other: &Self) -> f64 {
                self.hamming(other) as f64 / self.len().max(1) as f64
            }

            /// Number of one bits.
            pub fn weight(&self) -> usize {
                self.0.iter().filter(|&&b| b == 1).count()
            }

            /// Consumes into the raw bit vector.
            pub fn into_bits(self) -> Vec<u8> {
                self.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                for &bit in &self.0 {
                    write!(f, "{}", bit)?;
                }
                Ok(())
            }
        }

        impl FromIterator<u8> for $name {
            fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Self {
                Self::from_bits(iter)
            }
        }

        impl AsRef<[u8]> for $name {
            fn as_ref(&self) -> &[u8] {
                &self.0
            }
        }
    };
}

bitstring_type! {
    /// A PUF challenge bit string.
    Challenge
}

bitstring_type! {
    /// A PUF response bit string.
    Response
}

impl Response {
    /// Majority vote across repeated readings — the enrollment "golden"
    /// response.
    ///
    /// # Panics
    ///
    /// Panics if `readings` is empty or lengths differ.
    pub fn majority(readings: &[Response]) -> Response {
        assert!(!readings.is_empty(), "majority of zero readings");
        let len = readings[0].len();
        let bits = (0..len)
            .map(|i| {
                let ones: usize = readings
                    .iter()
                    .map(|r| {
                        assert_eq!(r.len(), len, "reading lengths differ");
                        r.bits()[i] as usize
                    })
                    .sum();
                u8::from(ones * 2 > readings.len())
            })
            .collect::<Vec<_>>();
        Response::from_bits(bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neuropuls_rt::rngs::StdRng;
    use neuropuls_rt::SeedableRng;

    #[test]
    fn from_u64_lsb_first() {
        let c = Challenge::from_u64(0b1011, 6);
        assert_eq!(c.bits(), &[1, 1, 0, 1, 0, 0]);
    }

    #[test]
    fn pack_roundtrip() {
        let c = Challenge::from_bits([1, 0, 0, 1, 1, 1, 0, 1, 1]);
        let packed = c.to_packed();
        assert_eq!(Challenge::from_packed(&packed, 9), c);
    }

    #[test]
    fn xor_and_hamming() {
        let a = Response::from_bits([1, 0, 1, 0]);
        let b = Response::from_bits([1, 1, 0, 0]);
        assert_eq!(a.xor(&b).bits(), &[0, 1, 1, 0]);
        assert_eq!(a.hamming(&b), 2);
        assert!((a.fhd(&b) - 0.5).abs() < 1e-15);
    }

    #[test]
    fn xor_is_involution() {
        let mut rng = StdRng::seed_from_u64(1);
        let a = Response::random(64, &mut rng);
        let b = Response::random(64, &mut rng);
        assert_eq!(a.xor(&b).xor(&b), a);
    }

    #[test]
    fn majority_vote() {
        let readings = vec![
            Response::from_bits([1, 0, 1]),
            Response::from_bits([1, 1, 0]),
            Response::from_bits([1, 0, 0]),
        ];
        assert_eq!(Response::majority(&readings).bits(), &[1, 0, 0]);
    }

    #[test]
    fn random_is_roughly_balanced() {
        let mut rng = StdRng::seed_from_u64(2);
        let r = Response::random(10_000, &mut rng);
        let w = r.weight() as f64 / 10_000.0;
        assert!((w - 0.5).abs() < 0.03);
    }

    #[test]
    fn masks_nonbinary_input() {
        let c = Challenge::from_bits([0xFF, 0x02, 0x03]);
        assert_eq!(c.bits(), &[1, 0, 1]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn xor_rejects_mismatch() {
        let a = Response::from_bits([1]);
        let b = Response::from_bits([1, 0]);
        let _ = a.xor(&b);
    }

    #[test]
    fn display_renders_bits() {
        assert_eq!(Challenge::from_bits([1, 0, 1]).to_string(), "101");
    }
}
