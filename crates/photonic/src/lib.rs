// Indexed loops over parallel arrays are the clearest form for the
// numeric kernels in this crate.
#![allow(clippy::needless_range_loop)]

//! Coherent photonic-integrated-circuit simulator — the substituted
//! hardware root of the NEUROPULS reproduction.
//!
//! The paper's security primitives live on a silicon-photonic chip that
//! this workspace cannot fabricate, so this crate simulates it at the
//! transfer-function level (see `DESIGN.md` for the substitution
//! rationale): complex optical fields, directional couplers, phase
//! shifters, microring resonators with time-domain memory, a Mach–Zehnder
//! modulator, square-law photodiodes, TIA and ADC, all perturbed by
//! per-die manufacturing variation and environmental conditions.
//!
//! The crate is intentionally PUF-agnostic: it knows about light, not
//! about challenges and responses. The `neuropuls-puf` crate composes
//! these parts into weak and strong PUFs.
//!
//! # Example — interrogating a die-unique mesh
//!
//! ```
//! use neuropuls_photonic::circuit::{MeshSpec, ScramblerMesh};
//! use neuropuls_photonic::complex::Complex64;
//! use neuropuls_photonic::environment::Environment;
//! use neuropuls_photonic::process::{DieId, DieSampler, ProcessVariation};
//!
//! let mut die = DieSampler::new(DieId(1), ProcessVariation::typical_soi());
//! let mut mesh = ScramblerMesh::build(MeshSpec::reference(), &mut die);
//! let waveform = vec![Complex64::ONE; 8];
//! let energies = mesh.port_energies(&waveform, 16, &Environment::nominal());
//! assert_eq!(energies.len(), 8);
//! ```

pub mod circuit;
pub mod complex;
pub mod components;
pub mod detector;
pub mod environment;
pub mod laser;
pub mod modulator;
pub mod process;
pub mod ring;
pub mod spectrum;

pub use circuit::{MeshSpec, ScramblerMesh};
pub use complex::Complex64;
pub use environment::Environment;
pub use process::{DieId, DieSampler, ProcessVariation};
