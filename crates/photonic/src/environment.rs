//! Operating environment: temperature, laser power, noise.
//!
//! §II-B and §V of the paper require the simulator to model
//! "environmental factors, including temperature, voltage, and variations
//! in the manufacturing process … noise and other sources of variability".
//! Temperature acts on silicon photonics through the thermo-optic effect
//! (dn/dT ≈ 1.8·10⁻⁴ K⁻¹ — large for silicon), shifting every phase and
//! every ring resonance; laser power scales the launched field and the
//! detected photocurrent.

/// Ambient/operating conditions for one evaluation of the photonic
/// circuit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Environment {
    /// Die temperature in °C. Nominal 25 °C.
    pub temperature_c: f64,
    /// Laser output power in mW at the chip facet. Nominal 1 mW.
    pub laser_power_mw: f64,
    /// Laser relative intensity noise (RIN) expressed as the standard
    /// deviation of the per-sample relative power fluctuation.
    pub rin: f64,
    /// Electronics supply-voltage deviation from nominal (fractional);
    /// scales TIA gain slightly.
    pub supply_deviation: f64,
}

impl Environment {
    /// Nominal laboratory conditions (25 °C, 1 mW, quiet laser).
    pub fn nominal() -> Self {
        Environment {
            temperature_c: 25.0,
            laser_power_mw: 1.0,
            rin: 1e-3,
            supply_deviation: 0.0,
        }
    }

    /// Nominal conditions at a given temperature.
    pub fn at_temperature(temperature_c: f64) -> Self {
        Environment {
            temperature_c,
            ..Self::nominal()
        }
    }

    /// Nominal conditions with laser power scaled by `factor` (used by the
    /// laser-power attack experiments of §IV).
    pub fn with_laser_scale(self, factor: f64) -> Self {
        Environment {
            laser_power_mw: self.laser_power_mw * factor,
            ..self
        }
    }

    /// Temperature delta from the 25 °C reference, in kelvin.
    pub fn delta_t(&self) -> f64 {
        self.temperature_c - 25.0
    }

    /// Thermo-optic phase shift for a waveguide of effective length
    /// `length_um` at this temperature (radians, relative to 25 °C).
    ///
    /// Uses dn/dT = 1.8·10⁻⁴ K⁻¹ and λ = 1550 nm:
    /// Δφ = 2π · dn/dT · ΔT · L / λ.
    pub fn thermo_optic_phase(&self, length_um: f64) -> f64 {
        const DN_DT: f64 = 1.8e-4; // per kelvin
        const LAMBDA_UM: f64 = 1.55;
        2.0 * std::f64::consts::PI * DN_DT * self.delta_t() * length_um / LAMBDA_UM
    }
}

impl Default for Environment {
    fn default() -> Self {
        Self::nominal()
    }
}

/// On-chip photonic temperature sensor (§II-B: "introducing a photonic
/// sensor for temperature measurement and considering this additional
/// parameter when evaluating the genuinity of the responses").
///
/// Modeled as a reference ring whose resonance shift is read with a small
/// Gaussian measurement error.
#[derive(Debug, Clone, Copy)]
pub struct TemperatureSensor {
    /// 1-σ measurement error in kelvin.
    pub accuracy_k: f64,
}

impl TemperatureSensor {
    /// A realistic integrated sensor (±0.1 K).
    pub fn new() -> Self {
        TemperatureSensor { accuracy_k: 0.1 }
    }

    /// Reads the environment temperature with sensor noise drawn from the
    /// supplied standard-Gaussian sample.
    pub fn read(&self, env: &Environment, gaussian_noise: f64) -> f64 {
        env.temperature_c + gaussian_noise * self.accuracy_k
    }
}

impl Default for TemperatureSensor {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nominal_has_reference_temperature() {
        let env = Environment::nominal();
        assert_eq!(env.delta_t(), 0.0);
        assert_eq!(env.thermo_optic_phase(100.0), 0.0);
    }

    #[test]
    fn thermo_optic_shift_scales_linearly() {
        let hot = Environment::at_temperature(35.0);
        let hotter = Environment::at_temperature(45.0);
        let p1 = hot.thermo_optic_phase(50.0);
        let p2 = hotter.thermo_optic_phase(50.0);
        assert!((p2 - 2.0 * p1).abs() < 1e-12);
        assert!(p1 > 0.0);
    }

    #[test]
    fn thermo_optic_magnitude_is_realistic() {
        // 10 K over 100 µm at 1550 nm → ~0.73 rad.
        let phase = Environment::at_temperature(35.0).thermo_optic_phase(100.0);
        assert!((phase - 0.7297).abs() < 0.01, "phase {phase}");
    }

    #[test]
    fn laser_scaling() {
        let env = Environment::nominal().with_laser_scale(1.5);
        assert!((env.laser_power_mw - 1.5).abs() < 1e-12);
    }

    #[test]
    fn sensor_reads_close_to_truth() {
        let env = Environment::at_temperature(60.0);
        let sensor = TemperatureSensor::new();
        let reading = sensor.read(&env, 1.0); // one sigma of error
        assert!((reading - 60.0).abs() <= 0.1 + 1e-12);
    }
}
