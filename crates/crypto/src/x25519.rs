//! X25519 Diffie–Hellman (RFC 7748).
//!
//! The EKE-style authentication-and-key-agreement protocol of §IV treats
//! the PUF challenge–response pair as a low-entropy shared secret that
//! encrypts an ephemeral Diffie–Hellman exchange, giving mutual
//! authentication plus perfect forward secrecy for the derived data
//! encryption keys. This module supplies the underlying group operation:
//! scalar multiplication on Curve25519, implemented with 51-bit limbs.

use crate::CryptoError;

/// Length of scalars and points in bytes.
pub const KEY_LEN: usize = 32;

/// The canonical base point (u = 9).
pub const BASE_POINT: [u8; KEY_LEN] = {
    let mut b = [0u8; KEY_LEN];
    b[0] = 9;
    b
};

// Field element mod p = 2^255 - 19, five 51-bit limbs.
#[derive(Clone, Copy, Debug)]
struct Fe([u64; 5]);

const MASK51: u64 = (1 << 51) - 1;

impl Fe {
    const ZERO: Fe = Fe([0; 5]);
    const ONE: Fe = Fe([1, 0, 0, 0, 0]);

    fn from_bytes(bytes: &[u8; 32]) -> Fe {
        let load = |range: core::ops::Range<usize>| -> u64 {
            let mut v = 0u64;
            for (i, &b) in bytes[range].iter().enumerate() {
                v |= (b as u64) << (8 * i);
            }
            v
        };
        let mut limbs = [0u64; 5];
        let l0 = load(0..8);
        let l1 = load(6..14);
        let l2 = load(12..20);
        let l3 = load(19..27);
        let l4 = load(24..32);
        limbs[0] = l0 & MASK51;
        limbs[1] = (l1 >> 3) & MASK51;
        limbs[2] = (l2 >> 6) & MASK51;
        limbs[3] = (l3 >> 1) & MASK51;
        limbs[4] = (l4 >> 12) & MASK51;
        Fe(limbs)
    }

    fn to_bytes(self) -> [u8; 32] {
        // Fully reduce.
        let mut t = self;
        t = t.carry();
        t = t.carry();
        // Compute t + 19, and if that overflows 2^255, subtract p by keeping
        // the wrapped value; branch-free canonical reduction.
        let mut q = (t.0[0].wrapping_add(19)) >> 51;
        q = (t.0[1].wrapping_add(q)) >> 51;
        q = (t.0[2].wrapping_add(q)) >> 51;
        q = (t.0[3].wrapping_add(q)) >> 51;
        q = (t.0[4].wrapping_add(q)) >> 51;

        let mut l0 = t.0[0].wrapping_add(19u64.wrapping_mul(q));
        let mut l1 = t.0[1].wrapping_add(l0 >> 51);
        l0 &= MASK51;
        let mut l2 = t.0[2].wrapping_add(l1 >> 51);
        l1 &= MASK51;
        let mut l3 = t.0[3].wrapping_add(l2 >> 51);
        l2 &= MASK51;
        let mut l4 = t.0[4].wrapping_add(l3 >> 51);
        l3 &= MASK51;
        l4 &= MASK51;

        // Limbs sit at bit offsets 0, 51, 102, 153, 204 — pack via a bit
        // accumulator.
        let mut out = [0u8; 32];
        let mut acc: u128 = 0;
        let mut acc_bits = 0u32;
        let limbs = [l0, l1, l2, l3, l4];
        let mut idx = 0usize;
        for limb in limbs {
            acc |= (limb as u128) << acc_bits;
            acc_bits += 51;
            while acc_bits >= 8 {
                out[idx] = (acc & 0xFF) as u8;
                acc >>= 8;
                acc_bits -= 8;
                idx += 1;
            }
        }
        if idx < 32 {
            out[idx] = (acc & 0xFF) as u8;
        }
        out
    }

    fn add(self, rhs: Fe) -> Fe {
        let mut out = [0u64; 5];
        for i in 0..5 {
            out[i] = self.0[i] + rhs.0[i];
        }
        Fe(out)
    }

    fn sub(self, rhs: Fe) -> Fe {
        // Add 4*p (≡ 0 mod p) before subtracting so limbs never underflow,
        // even when `self` has un-carried limbs up to ~2^52.
        const FOUR_P: [u64; 5] = [
            0xF_FFFF_FFFF_FFDA * 2,
            0xF_FFFF_FFFF_FFFE * 2,
            0xF_FFFF_FFFF_FFFE * 2,
            0xF_FFFF_FFFF_FFFE * 2,
            0xF_FFFF_FFFF_FFFE * 2,
        ];
        let mut out = [0u64; 5];
        for i in 0..5 {
            out[i] = self.0[i] + FOUR_P[i] - rhs.0[i];
        }
        Fe(out).carry()
    }

    fn carry(self) -> Fe {
        let mut l = self.0;
        let mut c: u64;
        c = l[0] >> 51;
        l[0] &= MASK51;
        l[1] += c;
        c = l[1] >> 51;
        l[1] &= MASK51;
        l[2] += c;
        c = l[2] >> 51;
        l[2] &= MASK51;
        l[3] += c;
        c = l[3] >> 51;
        l[3] &= MASK51;
        l[4] += c;
        c = l[4] >> 51;
        l[4] &= MASK51;
        l[0] += c * 19;
        c = l[0] >> 51;
        l[0] &= MASK51;
        l[1] += c;
        Fe(l)
    }

    fn mul(self, rhs: Fe) -> Fe {
        let [a0, a1, a2, a3, a4] = self.0;
        let [b0, b1, b2, b3, b4] = rhs.0;
        let m = |x: u64, y: u64| x as u128 * y as u128;

        let b1_19 = b1 * 19;
        let b2_19 = b2 * 19;
        let b3_19 = b3 * 19;
        let b4_19 = b4 * 19;

        let mut c0 = m(a0, b0) + m(a1, b4_19) + m(a2, b3_19) + m(a3, b2_19) + m(a4, b1_19);
        let mut c1 = m(a0, b1) + m(a1, b0) + m(a2, b4_19) + m(a3, b3_19) + m(a4, b2_19);
        let mut c2 = m(a0, b2) + m(a1, b1) + m(a2, b0) + m(a3, b4_19) + m(a4, b3_19);
        let mut c3 = m(a0, b3) + m(a1, b2) + m(a2, b1) + m(a3, b0) + m(a4, b4_19);
        let mut c4 = m(a0, b4) + m(a1, b3) + m(a2, b2) + m(a3, b1) + m(a4, b0);

        c1 += c0 >> 51;
        c0 &= MASK51 as u128;
        c2 += c1 >> 51;
        c1 &= MASK51 as u128;
        c3 += c2 >> 51;
        c2 &= MASK51 as u128;
        c4 += c3 >> 51;
        c3 &= MASK51 as u128;
        let carry = (c4 >> 51) as u64;
        c4 &= MASK51 as u128;
        let mut l0 = c0 as u64 + carry * 19;
        let mut l1 = c1 as u64;
        let c = l0 >> 51;
        l0 &= MASK51;
        l1 += c;

        Fe([l0, l1, c2 as u64, c3 as u64, c4 as u64])
    }

    fn square(self) -> Fe {
        self.mul(self)
    }

    fn mul_small(self, n: u64) -> Fe {
        let mut c: u128 = 0;
        let mut l = [0u64; 5];
        for i in 0..5 {
            let v = self.0[i] as u128 * n as u128 + c;
            l[i] = (v & MASK51 as u128) as u64;
            c = v >> 51;
        }
        let mut l0 = l[0] + (c as u64) * 19;
        let carry = l0 >> 51;
        l0 &= MASK51;
        Fe([l0, l[1] + carry, l[2], l[3], l[4]])
    }

    /// Inversion via Fermat: x^(p-2).
    fn invert(self) -> Fe {
        // Exponent p-2 = 2^255 - 21. Use the standard addition chain.
        let z = self;
        let z2 = z.square(); // 2
        let z4 = z2.square(); // 4
        let z8 = z4.square(); // 8
        let z9 = z8.mul(z); // 9
        let z11 = z9.mul(z2); // 11
        let z22 = z11.square(); // 22
        let z_5_0 = z22.mul(z9); // 2^5 - 1
        let mut t = z_5_0;
        for _ in 0..5 {
            t = t.square();
        }
        let z_10_0 = t.mul(z_5_0); // 2^10 - 1
        t = z_10_0;
        for _ in 0..10 {
            t = t.square();
        }
        let z_20_0 = t.mul(z_10_0); // 2^20 - 1
        t = z_20_0;
        for _ in 0..20 {
            t = t.square();
        }
        let z_40_0 = t.mul(z_20_0); // 2^40 - 1
        t = z_40_0;
        for _ in 0..10 {
            t = t.square();
        }
        let z_50_0 = t.mul(z_10_0); // 2^50 - 1
        t = z_50_0;
        for _ in 0..50 {
            t = t.square();
        }
        let z_100_0 = t.mul(z_50_0); // 2^100 - 1
        t = z_100_0;
        for _ in 0..100 {
            t = t.square();
        }
        let z_200_0 = t.mul(z_100_0); // 2^200 - 1
        t = z_200_0;
        for _ in 0..50 {
            t = t.square();
        }
        let z_250_0 = t.mul(z_50_0); // 2^250 - 1
        t = z_250_0;
        for _ in 0..5 {
            t = t.square();
        }
        t.mul(z11) // 2^255 - 21
    }

    fn cswap(swap: u64, a: &mut Fe, b: &mut Fe) {
        let mask = swap.wrapping_neg();
        for i in 0..5 {
            let x = mask & (a.0[i] ^ b.0[i]);
            a.0[i] ^= x;
            b.0[i] ^= x;
        }
    }
}

/// Clamps a 32-byte scalar per RFC 7748.
#[must_use]
pub fn clamp_scalar(mut scalar: [u8; KEY_LEN]) -> [u8; KEY_LEN] {
    scalar[0] &= 248;
    scalar[31] &= 127;
    scalar[31] |= 64;
    scalar
}

/// Scalar multiplication: computes `scalar * point` on Curve25519.
///
/// The scalar is clamped internally, so any 32 random bytes form a valid
/// private key.
#[must_use]
pub fn scalar_mult(scalar: &[u8; KEY_LEN], point: &[u8; KEY_LEN]) -> [u8; KEY_LEN] {
    let scalar = clamp_scalar(*scalar);
    let mut masked_point = *point;
    masked_point[31] &= 0x7F;
    let x1 = Fe::from_bytes(&masked_point);

    let mut x2 = Fe::ONE;
    let mut z2 = Fe::ZERO;
    let mut x3 = x1;
    let mut z3 = Fe::ONE;
    let mut swap = 0u64;

    for pos in (0..255).rev() {
        let bit = ((scalar[pos / 8] >> (pos % 8)) & 1) as u64;
        swap ^= bit;
        Fe::cswap(swap, &mut x2, &mut x3);
        Fe::cswap(swap, &mut z2, &mut z3);
        swap = bit;

        let a = x2.add(z2).carry();
        let aa = a.square();
        let b = x2.sub(z2);
        let bb = b.square();
        let e = aa.sub(bb);
        let c = x3.add(z3).carry();
        let d = x3.sub(z3);
        let da = d.mul(a);
        let cb = c.mul(b);
        x3 = da.add(cb).carry().square();
        z3 = x1.mul(da.sub(cb).square());
        x2 = aa.mul(bb);
        z2 = e.mul(aa.add(e.mul_small(121_665)).carry());
    }

    Fe::cswap(swap, &mut x2, &mut x3);
    Fe::cswap(swap, &mut z2, &mut z3);

    x2.mul(z2.invert()).to_bytes()
}

/// Computes the public key for a private scalar.
#[must_use]
pub fn public_key(private: &[u8; KEY_LEN]) -> [u8; KEY_LEN] {
    scalar_mult(private, &BASE_POINT)
}

/// Computes the shared secret and rejects the all-zero output that results
/// from low-order input points.
///
/// # Errors
///
/// Returns [`CryptoError::LowOrderPoint`] if the computed secret is all
/// zeros (the peer sent a low-order point).
pub fn shared_secret(
    private: &[u8; KEY_LEN],
    peer_public: &[u8; KEY_LEN],
) -> Result<[u8; KEY_LEN], CryptoError> {
    let secret = scalar_mult(private, peer_public);
    if secret.iter().all(|&b| b == 0) {
        return Err(CryptoError::LowOrderPoint);
    }
    Ok(secret)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn from_hex(s: &str) -> [u8; 32] {
        let mut out = [0u8; 32];
        for i in 0..32 {
            out[i] = u8::from_str_radix(&s[2 * i..2 * i + 2], 16).unwrap();
        }
        out
    }

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    // RFC 7748 §5.2 test vector 1.
    #[test]
    fn rfc7748_vector1() {
        let scalar = from_hex("a546e36bf0527c9d3b16154b82465edd62144c0ac1fc5a18506a2244ba449ac4");
        let point = from_hex("e6db6867583030db3594c1a424b15f7c726624ec26b3353b10a903a6d0ab1c4c");
        let out = scalar_mult(&scalar, &point);
        assert_eq!(
            hex(&out),
            "c3da55379de9c6908e94ea4df28d084f32eccf03491c71f754b4075577a28552"
        );
    }

    // RFC 7748 §5.2 test vector 2.
    #[test]
    fn rfc7748_vector2() {
        let scalar = from_hex("4b66e9d4d1b4673c5ad22691957d6af5c11b6421e0ea01d42ca4169e7918ba0d");
        let point = from_hex("e5210f12786811d3f4b7959d0538ae2c31dbe7106fc03c3efc4cd549c715a493");
        let out = scalar_mult(&scalar, &point);
        assert_eq!(
            hex(&out),
            "95cbde9476e8907d7aade45cb4b873f88b595a68799fa152e6f8f7647aac7957"
        );
    }

    // RFC 7748 §6.1 Diffie–Hellman test.
    #[test]
    fn rfc7748_dh() {
        let alice_priv =
            from_hex("77076d0a7318a57d3c16c17251b26645df4c2f87ebc0992ab177fba51db92c2a");
        let bob_priv = from_hex("5dab087e624a8a4b79e17f8b83800ee66f3bb1292618b6fd1c2f8b27ff88e0eb");
        let alice_pub = public_key(&alice_priv);
        assert_eq!(
            hex(&alice_pub),
            "8520f0098930a754748b7ddcb43ef75a0dbf3a0d26381af4eba4a98eaa9b4e6a"
        );
        let bob_pub = public_key(&bob_priv);
        assert_eq!(
            hex(&bob_pub),
            "de9edb7d7b7dc1b4d35b61c2ece435373f8343c85b78674dadfc7e146f882b4f"
        );
        let k1 = shared_secret(&alice_priv, &bob_pub).unwrap();
        let k2 = shared_secret(&bob_priv, &alice_pub).unwrap();
        assert_eq!(k1, k2);
        assert_eq!(
            hex(&k1),
            "4a5d9d5ba4ce2de1728e3bf480350f25e07e21c947d19e3376f09b3c1e161742"
        );
    }

    // RFC 7748 iterated test (1000 iterations kept out of CI; 1 iteration).
    #[test]
    fn rfc7748_iterated_once() {
        let k = from_hex("0900000000000000000000000000000000000000000000000000000000000000");
        let u = k;
        let out = scalar_mult(&k, &u);
        assert_eq!(
            hex(&out),
            "422c8e7a6227d7bca1350b3e2bb7279f7897b87bb6854b783c60e80311ae3079"
        );
    }

    #[test]
    fn rejects_low_order_zero_point() {
        let private = [0x42; 32];
        let zero_point = [0u8; 32];
        assert_eq!(
            shared_secret(&private, &zero_point),
            Err(CryptoError::LowOrderPoint)
        );
    }

    #[test]
    fn clamping_is_idempotent() {
        let s = [0xFF; 32];
        assert_eq!(clamp_scalar(clamp_scalar(s)), clamp_scalar(s));
    }
}
