//! Challenge encryption in front of the strong PUF — the architectural
//! hardening of Vatajelu et al. \[30\] that §IV says NEUROPULS will adopt:
//! "architectural solutions that rely on the combination of a strong and
//! a weak PUF to encrypt the challenges before entering the photonic
//! PUF".
//!
//! An attacker who harvests (challenge, response) pairs at the external
//! interface never sees the *internal* challenge: the device derives it
//! by a keyed one-way function (HMAC under a weak-PUF-derived key), so
//! every internal bit is a nonlinear function of all external bits. A
//! model trained on external pairs must learn `PUF ∘ PRF`, which destroys
//! the linear (parity-feature) structure that modeling attacks on
//! arbiter-style PUFs exploit. Note an XOR *mask* would not suffice —
//! masking challenge bits keeps an arbiter PUF linearly separable; the
//! derivation must be nonlinear, hence the PRF.

use crate::bits::{Challenge, Response};
use crate::traits::{Puf, PufError, PufKind};
use neuropuls_crypto::hmac::HmacSha256;
use neuropuls_photonic::Environment;

/// A strong PUF whose external challenges are passed through a keyed PRF
/// before reaching the physical primitive.
#[derive(Debug)]
pub struct ChallengeEncryptedPuf<P: Puf> {
    inner: P,
    key: [u8; 32],
}

impl<P: Puf> ChallengeEncryptedPuf<P> {
    /// Wraps `inner` with challenge encryption under `key` (in the real
    /// device the key comes from the weak PUF via the fuzzy extractor —
    /// see `neuropuls-protocols`).
    pub fn new(inner: P, key: [u8; 32]) -> Self {
        ChallengeEncryptedPuf { inner, key }
    }

    /// Returns the inner PUF.
    pub fn into_inner(self) -> P {
        self.inner
    }

    /// The internal challenge actually applied for an external one
    /// (exposed for tests and the attack experiments; a real device never
    /// reveals this).
    ///
    /// Derivation: HMAC-SHA-256 blocks under the device key, expanded
    /// until the challenge width is covered.
    pub fn internal_challenge(&self, external: &Challenge) -> Challenge {
        let packed = external.to_packed();
        let mut bits = Vec::with_capacity(external.len());
        let mut counter = 0u32;
        while bits.len() < external.len() {
            let tag = HmacSha256::mac_parts(&self.key, &[&counter.to_le_bytes(), &packed]);
            for byte in tag {
                for i in 0..8 {
                    if bits.len() == external.len() {
                        break;
                    }
                    bits.push((byte >> i) & 1);
                }
            }
            counter += 1;
        }
        Challenge::from_bits(bits)
    }
}

impl<P: Puf> Puf for ChallengeEncryptedPuf<P> {
    fn challenge_bits(&self) -> usize {
        self.inner.challenge_bits()
    }

    fn response_bits(&self) -> usize {
        self.inner.response_bits()
    }

    fn kind(&self) -> PufKind {
        PufKind::Strong
    }

    fn respond(&mut self, challenge: &Challenge) -> Result<Response, PufError> {
        if challenge.len() != self.inner.challenge_bits() {
            return Err(PufError::ChallengeLength {
                expected: self.inner.challenge_bits(),
                actual: challenge.len(),
            });
        }
        let internal = self.internal_challenge(challenge);
        self.inner.respond(&internal)
    }

    fn set_environment(&mut self, env: Environment) {
        self.inner.set_environment(env);
    }

    fn environment(&self) -> Environment {
        self.inner.environment()
    }

    /// Adds a small cipher latency on top of the inner PUF.
    fn latency_ns(&self) -> f64 {
        self.inner.latency_ns() + 1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arbiter::ArbiterPuf;
    use neuropuls_photonic::process::DieId;
    use neuropuls_rt::rngs::StdRng;
    use neuropuls_rt::{Rng, SeedableRng};

    fn wrapped(key_byte: u8) -> ChallengeEncryptedPuf<ArbiterPuf> {
        ChallengeEncryptedPuf::new(ArbiterPuf::fabricate(DieId(1), 64, 5), [key_byte; 32])
    }

    fn challenge(seed: u64) -> Challenge {
        let mut rng = StdRng::seed_from_u64(seed);
        Challenge::from_bits((0..64).map(|_| rng.gen::<u8>() & 1))
    }

    #[test]
    fn mapping_is_deterministic() {
        let p = wrapped(7);
        let c = challenge(1);
        assert_eq!(p.internal_challenge(&c), p.internal_challenge(&c));
    }

    #[test]
    fn mapping_depends_on_key() {
        let a = wrapped(1);
        let b = wrapped(2);
        let c = challenge(2);
        assert_ne!(a.internal_challenge(&c), b.internal_challenge(&c));
    }

    #[test]
    fn internal_differs_from_external() {
        let p = wrapped(3);
        let c = challenge(3);
        assert_ne!(p.internal_challenge(&c), c);
    }

    #[test]
    fn responses_remain_reproducible() {
        let mut p = wrapped(4);
        let c = challenge(4);
        let golden = p.respond_golden(&c, 15).unwrap();
        let again = p.respond_golden(&c, 15).unwrap();
        assert!(golden.fhd(&again) < 0.2);
    }

    #[test]
    fn single_external_bit_flip_avalanches_internally() {
        let p = wrapped(5);
        let c1 = challenge(5);
        let mut bits = c1.bits().to_vec();
        bits[63] ^= 1;
        let c2 = Challenge::from_bits(bits);
        let i1 = p.internal_challenge(&c1);
        let i2 = p.internal_challenge(&c2);
        // PRF avalanche: roughly half the internal bits must change.
        let flips = i1.hamming(&i2);
        assert!((16..=48).contains(&flips), "avalanche {flips}/64");
    }

    #[test]
    fn internal_challenge_covers_any_width() {
        // Widths beyond one HMAC block (256 bits) exercise the counter
        // expansion.
        let inner = ArbiterPuf::fabricate(DieId(2), 300, 5);
        let p = ChallengeEncryptedPuf::new(inner, [9; 32]);
        let mut rng = StdRng::seed_from_u64(10);
        let c = Challenge::random(300, &mut rng);
        assert_eq!(p.internal_challenge(&c).len(), 300);
    }

    #[test]
    fn rejects_wrong_width() {
        let mut p = wrapped(6);
        assert!(p.respond(&Challenge::from_u64(1, 8)).is_err());
    }
}
