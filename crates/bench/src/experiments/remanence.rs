//! E8 — §IV: remanence decay. SRAM arrays leak written secrets across
//! short power cuts; the photonic response exists for <100 ns and leaves
//! nothing to probe.

use crate::{Rendered, Scale};
use neuropuls_attacks::remanence::{photonic_exposure, remanence_decay_curve, RemanenceOutcome};
use neuropuls_photonic::process::DieId;
use neuropuls_puf::photonic::PhotonicPuf;
use neuropuls_puf::sram::SramPuf;

/// Runs the decay-curve comparison.
pub fn run(scale: Scale) -> (Rendered, Vec<RemanenceOutcome>, f64) {
    let off_times: Vec<f64> = scale.pick(
        vec![0.1, 5.0, 50.0],
        vec![0.05, 0.2, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0],
    );
    let mut sram = SramPuf::reference(DieId(0xE8), 1);
    let secret: Vec<u8> = (0..sram.config().cells)
        .map(|i| ((i * 31 + 5) % 7 < 3) as u8)
        .collect();
    let curve = remanence_decay_curve(&mut sram, &secret, &off_times);

    let window_ns = PhotonicPuf::reference(DieId(0xE8 + 1), 1).response_window_ns();

    let mut out = Rendered::new("E8 (§IV) — remanence decay: SRAM vs photonic time-domain");
    out.push(format!("{:>12} {:>18}", "off-time ms", "SRAM recovery"));
    for p in &curve {
        out.push(format!(
            "{:>12.2} {:>17.1}%",
            p.off_time_ms,
            p.recovery * 100.0
        ));
    }
    out.push(format!(
        "photonic PUF response window: {window_ns:.2} ns; any power-cycle probe (≥1 ms) \
         arrives {:.0}x too late → recovery {:.0}% (chance)",
        1e6 / window_ns,
        photonic_exposure(1e6, window_ns) * 100.0
    ));
    (out, curve, window_ns)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_remanence_contrast() {
        let (_, curve, window_ns) = run(Scale::Smoke);
        assert!(curve[0].recovery > 0.9, "short cut should leak");
        assert!(
            (curve.last().unwrap().recovery - 0.5).abs() < 0.15,
            "long cut should erase"
        );
        assert!(window_ns < 100.0);
        assert_eq!(photonic_exposure(1e6, window_ns), 0.5);
    }
}
