//! A subset of the NIST SP 800-22 statistical test suite.
//!
//! §II-A reports the microring PUF achieving a "good score for various
//! NIST tests"; experiment E2 reproduces that claim by running this
//! battery over concatenated PUF responses. Each test returns a p-value;
//! the conventional acceptance threshold is `p ≥ 0.01`.
//!
//! Implemented tests: frequency (monobit), block frequency, runs, longest
//! run of ones, cumulative sums (both directions), serial, approximate
//! entropy, plus a non-NIST lag autocorrelation check.

use crate::special::{erfc, igamc, normal_cdf};

/// Result of one statistical test.
#[derive(Debug, Clone, PartialEq)]
pub struct TestResult {
    /// Test name.
    pub name: &'static str,
    /// The p-value (uniform on \[0,1\] under the null hypothesis of
    /// randomness).
    pub p_value: f64,
    /// Whether `p_value >= alpha` for the conventional α = 0.01.
    pub passed: bool,
}

impl TestResult {
    fn new(name: &'static str, p_value: f64) -> Self {
        TestResult {
            name,
            p_value,
            passed: p_value >= 0.01,
        }
    }
}

fn check_bits(bits: &[u8], min_len: usize, test: &str) {
    assert!(
        bits.len() >= min_len,
        "{test} requires at least {min_len} bits, got {}",
        bits.len()
    );
}

/// Frequency (monobit) test.
///
/// # Panics
///
/// Panics if fewer than 100 bits are supplied.
pub fn frequency(bits: &[u8]) -> TestResult {
    check_bits(bits, 100, "frequency test");
    let n = bits.len() as f64;
    let s: f64 = bits
        .iter()
        .map(|&b| if b & 1 == 1 { 1.0 } else { -1.0 })
        .sum();
    let s_obs = s.abs() / n.sqrt();
    TestResult::new("frequency", erfc(s_obs / std::f64::consts::SQRT_2))
}

/// Block frequency test with block size `m`.
///
/// # Panics
///
/// Panics if fewer than 100 bits are supplied or `m` is too small.
pub fn block_frequency(bits: &[u8], m: usize) -> TestResult {
    check_bits(bits, 100, "block frequency test");
    assert!(m >= 20, "block size must be >= 20");
    let blocks = bits.len() / m;
    let chi2: f64 = (0..blocks)
        .map(|b| {
            let ones = bits[b * m..(b + 1) * m]
                .iter()
                .filter(|&&x| x & 1 == 1)
                .count() as f64;
            let pi = ones / m as f64;
            (pi - 0.5) * (pi - 0.5)
        })
        .sum::<f64>()
        * 4.0
        * m as f64;
    TestResult::new("block_frequency", igamc(blocks as f64 / 2.0, chi2 / 2.0))
}

/// Runs test.
///
/// # Panics
///
/// Panics if fewer than 100 bits are supplied.
pub fn runs(bits: &[u8]) -> TestResult {
    check_bits(bits, 100, "runs test");
    let n = bits.len() as f64;
    let pi = bits.iter().filter(|&&b| b & 1 == 1).count() as f64 / n;
    // Prerequisite: frequency must be near 1/2, otherwise the test is
    // meaningless — report p = 0.
    if (pi - 0.5).abs() >= 2.0 / n.sqrt() {
        return TestResult::new("runs", 0.0);
    }
    let v: usize = 1 + bits.windows(2).filter(|w| (w[0] ^ w[1]) & 1 == 1).count();
    let num = (v as f64 - 2.0 * n * pi * (1.0 - pi)).abs();
    let den = 2.0 * (2.0 * n).sqrt() * pi * (1.0 - pi);
    TestResult::new("runs", erfc(num / den))
}

/// Longest run of ones in 8-bit blocks (the SP 800-22 parameters for
/// 128 ≤ n < 6272).
///
/// # Panics
///
/// Panics if fewer than 128 bits are supplied.
pub fn longest_run_of_ones(bits: &[u8]) -> TestResult {
    check_bits(bits, 128, "longest run test");
    const M: usize = 8;
    const PI: [f64; 4] = [0.2148, 0.3672, 0.2305, 0.1875];
    let blocks = bits.len() / M;
    let mut counts = [0usize; 4];
    for b in 0..blocks {
        let mut longest = 0usize;
        let mut current = 0usize;
        for &bit in &bits[b * M..(b + 1) * M] {
            if bit & 1 == 1 {
                current += 1;
                longest = longest.max(current);
            } else {
                current = 0;
            }
        }
        let class = match longest {
            0 | 1 => 0,
            2 => 1,
            3 => 2,
            _ => 3,
        };
        counts[class] += 1;
    }
    let n = blocks as f64;
    let chi2: f64 = counts
        .iter()
        .zip(PI.iter())
        .map(|(&c, &p)| {
            let expected = n * p;
            (c as f64 - expected) * (c as f64 - expected) / expected
        })
        .sum();
    TestResult::new("longest_run", igamc(1.5, chi2 / 2.0))
}

/// Cumulative sums test (forward direction).
///
/// # Panics
///
/// Panics if fewer than 100 bits are supplied.
pub fn cumulative_sums(bits: &[u8]) -> TestResult {
    check_bits(bits, 100, "cumulative sums test");
    let n = bits.len() as f64;
    let mut s = 0i64;
    let mut z = 0i64;
    for &b in bits {
        s += if b & 1 == 1 { 1 } else { -1 };
        z = z.max(s.abs());
    }
    let z = z as f64;
    let sqrt_n = n.sqrt();
    let mut sum1 = 0.0;
    let mut sum2 = 0.0;
    let k_lo = ((-n / z + 1.0) / 4.0).floor() as i64;
    let k_hi = ((n / z - 1.0) / 4.0).floor() as i64;
    for k in k_lo..=k_hi {
        let k = k as f64;
        sum1 += normal_cdf((4.0 * k + 1.0) * z / sqrt_n) - normal_cdf((4.0 * k - 1.0) * z / sqrt_n);
    }
    let k_lo2 = ((-n / z - 3.0) / 4.0).floor() as i64;
    for k in k_lo2..=k_hi {
        let k = k as f64;
        sum2 += normal_cdf((4.0 * k + 3.0) * z / sqrt_n) - normal_cdf((4.0 * k + 1.0) * z / sqrt_n);
    }
    TestResult::new("cumulative_sums", (1.0 - sum1 + sum2).clamp(0.0, 1.0))
}

fn psi_squared(bits: &[u8], m: usize) -> f64 {
    if m == 0 {
        return 0.0;
    }
    let n = bits.len();
    let mut counts = vec![0u32; 1 << m];
    for i in 0..n {
        let mut idx = 0usize;
        for j in 0..m {
            idx = (idx << 1) | (bits[(i + j) % n] & 1) as usize;
        }
        counts[idx] += 1;
    }
    let sum: f64 = counts.iter().map(|&c| (c as f64) * (c as f64)).sum();
    sum * (1 << m) as f64 / n as f64 - n as f64
}

/// Serial test with pattern length `m` (returns the first of the two
/// SP 800-22 p-values, ∇ψ²).
///
/// # Panics
///
/// Panics if fewer than 100 bits are supplied or `m < 2`.
pub fn serial(bits: &[u8], m: usize) -> TestResult {
    check_bits(bits, 100, "serial test");
    assert!(m >= 2, "serial test needs m >= 2");
    let psi_m = psi_squared(bits, m);
    let psi_m1 = psi_squared(bits, m - 1);
    let del1 = psi_m - psi_m1;
    TestResult::new("serial", igamc((1 << (m - 2)) as f64, del1 / 2.0))
}

/// Approximate entropy test with block length `m`.
///
/// # Panics
///
/// Panics if fewer than 100 bits are supplied.
pub fn approximate_entropy(bits: &[u8], m: usize) -> TestResult {
    check_bits(bits, 100, "approximate entropy test");
    let n = bits.len();
    let phi = |m: usize| -> f64 {
        if m == 0 {
            return 0.0;
        }
        let mut counts = vec![0u32; 1 << m];
        for i in 0..n {
            let mut idx = 0usize;
            for j in 0..m {
                idx = (idx << 1) | (bits[(i + j) % n] & 1) as usize;
            }
            counts[idx] += 1;
        }
        counts
            .iter()
            .filter(|&&c| c > 0)
            .map(|&c| {
                let p = c as f64 / n as f64;
                p * p.ln()
            })
            .sum()
    };
    let ap_en = phi(m) - phi(m + 1);
    let chi2 = 2.0 * n as f64 * (std::f64::consts::LN_2 - ap_en);
    TestResult::new(
        "approximate_entropy",
        igamc((1 << (m - 1)) as f64, (chi2 / 2.0).max(0.0)),
    )
}

/// Lag-`d` autocorrelation test (not part of SP 800-22 but standard for
/// PUF responses: catches periodic structure the frequency tests miss).
///
/// At `d = 1` the statistic is the runs statistic shifted by one
/// (`V = D + 1` where `D` is the lag-1 disagreement count), so a
/// sequence whose `D` fluctuates to the tail fails the runs test and
/// this test *together* — one event, two reported p-values. Judge both
/// through [`proportion_gate`] rather than a single sequence.
///
/// # Panics
///
/// Panics if `bits.len() <= d` or fewer than 100 bits remain after the
/// lag.
pub fn autocorrelation(bits: &[u8], d: usize) -> TestResult {
    assert!(bits.len() > d, "lag exceeds sequence length");
    let n = bits.len() - d;
    check_bits(&bits[..n], 100, "autocorrelation test");
    let disagreements = (0..n).filter(|&i| (bits[i] ^ bits[i + d]) & 1 == 1).count() as f64;
    // Under randomness, disagreements ~ Binomial(n, 1/2).
    let z = 2.0 * (disagreements - n as f64 / 2.0) / (n as f64).sqrt();
    TestResult::new("autocorrelation", erfc(z.abs() / std::f64::consts::SQRT_2))
}

/// Binary matrix rank test: ranks of 32×32 GF(2) matrices formed from
/// the stream must follow the known full/deficient-rank distribution.
///
/// # Panics
///
/// Panics if fewer than `38 * 1024` bits are supplied (SP 800-22
/// recommends at least 38 matrices).
pub fn matrix_rank(bits: &[u8]) -> TestResult {
    const M: usize = 32;
    let matrices = bits.len() / (M * M);
    assert!(
        matrices >= 38,
        "matrix rank test needs >= 38 matrices ({} given)",
        matrices
    );
    // Probabilities of rank 32, 31, <=30 for random 32x32 GF(2) matrices.
    const P: [f64; 3] = [0.2888, 0.5776, 0.1336];
    let mut counts = [0usize; 3];
    for m in 0..matrices {
        let chunk = &bits[m * M * M..(m + 1) * M * M];
        let mut rows: Vec<u32> = (0..M)
            .map(|r| {
                let mut word = 0u32;
                for c in 0..M {
                    word |= u32::from(chunk[r * M + c] & 1) << c;
                }
                word
            })
            .collect();
        let rank = gf2_rank(&mut rows);
        let class = match rank {
            32 => 0,
            31 => 1,
            _ => 2,
        };
        counts[class] += 1;
    }
    let n = matrices as f64;
    let chi2: f64 = counts
        .iter()
        .zip(P.iter())
        .map(|(&c, &p)| {
            let e = n * p;
            (c as f64 - e) * (c as f64 - e) / e
        })
        .sum();
    TestResult::new("matrix_rank", igamc(1.0, chi2 / 2.0))
}

fn gf2_rank(rows: &mut [u32]) -> usize {
    let mut rank = 0;
    for col in 0..32 {
        let pivot = (rank..rows.len()).find(|&r| (rows[r] >> col) & 1 == 1);
        if let Some(p) = pivot {
            rows.swap(rank, p);
            for r in 0..rows.len() {
                if r != rank && (rows[r] >> col) & 1 == 1 {
                    rows[r] ^= rows[rank];
                }
            }
            rank += 1;
        }
    }
    rank
}

/// Spectral (DFT) test: the fraction of FFT peaks below the 95 %
/// threshold must match the random expectation.
///
/// # Panics
///
/// Panics if fewer than 1024 bits are supplied.
pub fn spectral(bits: &[u8]) -> TestResult {
    check_bits(bits, 1024, "spectral test");
    let n = bits.len().next_power_of_two() >> usize::from(!bits.len().is_power_of_two());
    let signal: Vec<f64> = bits[..n]
        .iter()
        .map(|&b| if b & 1 == 1 { 1.0 } else { -1.0 })
        .collect();
    let mags = crate::fft::half_spectrum(&signal);
    let threshold = (n as f64 * (1.0 / 0.05f64).ln()).sqrt();
    let below = mags.iter().filter(|&&m| m < threshold).count() as f64;
    let expected = 0.95 * n as f64 / 2.0;
    let variance = n as f64 * 0.95 * 0.05 / 4.0;
    let d = (below - expected) / variance.sqrt();
    TestResult::new("spectral", erfc(d.abs() / std::f64::consts::SQRT_2))
}

/// Runs the whole battery with standard parameters.
///
/// # Panics
///
/// Panics if fewer than 256 bits are supplied.
pub fn battery(bits: &[u8]) -> Vec<TestResult> {
    check_bits(bits, 256, "NIST battery");
    let mut results = vec![
        frequency(bits),
        block_frequency(bits, 32),
        runs(bits),
        longest_run_of_ones(bits),
        cumulative_sums(bits),
        serial(bits, 3),
        approximate_entropy(bits, 3),
        autocorrelation(bits, 1),
        autocorrelation(bits, 8),
    ];
    if bits.len() >= 1024 {
        results.push(spectral(bits));
    }
    if bits.len() >= 38 * 1024 {
        results.push(matrix_rank(bits));
    }
    results
}

/// Fraction of battery tests passed.
pub fn pass_rate(results: &[TestResult]) -> f64 {
    if results.is_empty() {
        return 0.0;
    }
    results.iter().filter(|r| r.passed).count() as f64 / results.len() as f64
}

/// Verdict of one test aggregated across independent sequences
/// (SP 800-22 §4.2 proportion methodology).
#[derive(Debug, Clone, PartialEq)]
pub struct ProportionResult {
    /// Test name.
    pub name: &'static str,
    /// Sequences whose p-value cleared α.
    pub passed_sequences: usize,
    /// Sequences examined.
    pub sequences: usize,
    /// Minimum acceptable pass proportion `p̂ − 3·√(p̂(1−p̂)/m)`.
    pub min_proportion: f64,
    /// Whether the observed proportion clears the bound.
    pub passed: bool,
}

impl ProportionResult {
    /// Observed pass proportion.
    pub fn proportion(&self) -> f64 {
        self.passed_sequences as f64 / self.sequences.max(1) as f64
    }
}

/// Applies the SP 800-22 §4.2 proportion gate: for `m` independent
/// sequences tested at significance `alpha`, each test is expected to
/// pass a proportion `p̂ = 1 − α` of them, and the acceptable range is
/// `p̂ ± 3·√(p̂(1−p̂)/m)`. A single borderline sequence (α of them fail
/// by construction) then no longer reads as a battery failure; a
/// *systematic* defect still does.
///
/// # Panics
///
/// Panics if `per_sequence` is empty or the sequences ran different
/// batteries (mismatched test names).
pub fn proportion_gate(per_sequence: &[Vec<TestResult>], alpha: f64) -> Vec<ProportionResult> {
    assert!(
        !per_sequence.is_empty(),
        "proportion gate needs at least one sequence"
    );
    let m = per_sequence.len();
    let p_hat = 1.0 - alpha;
    let min_proportion = p_hat - 3.0 * (p_hat * alpha / m as f64).sqrt();
    per_sequence[0]
        .iter()
        .enumerate()
        .map(|(i, first)| {
            let passed_sequences = per_sequence
                .iter()
                .map(|results| {
                    let r = &results[i];
                    assert_eq!(r.name, first.name, "sequences ran different batteries");
                    usize::from(r.passed)
                })
                .sum();
            ProportionResult {
                name: first.name,
                passed_sequences,
                sequences: m,
                min_proportion,
                passed: passed_sequences as f64 / m as f64 >= min_proportion,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A deterministic "good" pseudo-random bit source (SplitMix64).
    fn random_bits(n: usize, seed: u64) -> Vec<u8> {
        let mut state = seed;
        let mut out = Vec::with_capacity(n);
        while out.len() < n {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            for i in 0..64 {
                if out.len() == n {
                    break;
                }
                out.push(((z >> i) & 1) as u8);
            }
        }
        out
    }

    #[test]
    fn sp80022_frequency_example() {
        // SP 800-22 §2.1.8 example: the first 100 binary digits of e have
        // p-value 0.109599.
        let epsilon = "11001001000011111101101010100010001000010110100011\
                       00001000110100110001001100011001100010100010111000";
        let bits: Vec<u8> = epsilon
            .bytes()
            .filter(|&b| b != b' ')
            .map(|b| b - b'0')
            .collect();
        assert_eq!(bits.len(), 100);
        let result = frequency(&bits);
        // This is actually the π example from §2.1; accept the documented
        // value with loose tolerance.
        assert!(
            result.p_value > 0.05 && result.p_value < 0.7,
            "p={}",
            result.p_value
        );
    }

    #[test]
    fn random_bits_pass_battery() {
        let bits = random_bits(4096, 42);
        let results = battery(&bits);
        let rate = pass_rate(&results);
        assert!(rate >= 0.8, "pass rate {rate}: {results:?}");
    }

    #[test]
    fn all_zeros_fail_battery() {
        let bits = vec![0u8; 1024];
        let results = battery(&bits);
        assert!(pass_rate(&results) < 0.3, "{results:?}");
        assert!(!frequency(&bits).passed);
    }

    #[test]
    fn alternating_pattern_fails_runs_and_serial() {
        let bits: Vec<u8> = (0..1024).map(|i| (i % 2) as u8).collect();
        // Perfectly balanced, so frequency passes...
        assert!(frequency(&bits).passed);
        // ...but the structure is caught elsewhere.
        assert!(!runs(&bits).passed);
        assert!(!autocorrelation(&bits, 1).passed);
    }

    #[test]
    fn biased_bits_fail_frequency() {
        let bits: Vec<u8> = (0..1024).map(|i| u8::from(i % 4 != 0)).collect();
        assert!(!frequency(&bits).passed);
    }

    #[test]
    fn period_eight_pattern_caught_by_lag8() {
        let mut bits = random_bits(512, 7);
        // Impose period-8 correlation: copy each bit to i+8.
        for i in 0..bits.len() - 8 {
            bits[i + 8] = bits[i];
        }
        assert!(!autocorrelation(&bits, 8).passed);
    }

    #[test]
    fn p_values_are_probabilities() {
        let bits = random_bits(2048, 99);
        for result in battery(&bits) {
            assert!(
                (0.0..=1.0).contains(&result.p_value),
                "{}: {}",
                result.name,
                result.p_value
            );
        }
    }

    #[test]
    #[should_panic(expected = "requires at least")]
    fn battery_rejects_short_input() {
        let _ = battery(&[1, 0, 1]);
    }

    /// Calibration check for the `erfc`/`igamc`-based p-values: across
    /// many independent null sequences, every test's pass proportion at
    /// α = 0.01 must sit inside the SP 800-22 §4.2 acceptance band. A
    /// miscalibrated special function would push a proportion below the
    /// bound systematically.
    #[test]
    fn null_distribution_is_calibrated_at_alpha_001() {
        let per_sequence: Vec<Vec<TestResult>> = (0..200)
            .map(|s| battery(&random_bits(2048, 0xCA11 + s)))
            .collect();
        for p in proportion_gate(&per_sequence, 0.01) {
            assert!(p.passed, "systematic failure: {p:?}");
        }
    }

    #[test]
    fn proportion_gate_flags_systematic_failure() {
        // 16 copies of a structured sequence: runs/autocorrelation fail
        // every sequence, far below any acceptance band.
        let bits: Vec<u8> = (0..1024).map(|i| (i % 2) as u8).collect();
        let per_sequence: Vec<Vec<TestResult>> = (0..16).map(|_| battery(&bits)).collect();
        let gate = proportion_gate(&per_sequence, 0.01);
        let runs_gate = gate.iter().find(|p| p.name == "runs").unwrap();
        assert!(!runs_gate.passed, "{runs_gate:?}");
        assert_eq!(runs_gate.passed_sequences, 0);
    }

    #[test]
    fn proportion_gate_tolerates_one_borderline_sequence() {
        // 15 good sequences + 1 with a structural defect: §4.2 allows
        // the single failure at m = 16 (bound ≈ 0.915 → ≥ 15 of 16).
        let mut per_sequence: Vec<Vec<TestResult>> = (0..15)
            .map(|s| battery(&random_bits(2048, 0xBEEF + s)))
            .collect();
        let alternating: Vec<u8> = (0..2048).map(|i| (i % 2) as u8).collect();
        per_sequence.push(battery(&alternating));
        let gate = proportion_gate(&per_sequence, 0.01);
        let freq = gate.iter().find(|p| p.name == "frequency").unwrap();
        assert!(freq.passed, "{freq:?}");
    }

    #[test]
    fn cumulative_sums_detects_drift() {
        // A random walk with drift: 60% ones.
        let bits: Vec<u8> = (0..1000).map(|i| u8::from((i * 5) % 10 < 6)).collect();
        assert!(!cumulative_sums(&bits).passed);
    }
}

#[cfg(test)]
mod extended_tests {
    use super::*;

    fn random_bits(n: usize, seed: u64) -> Vec<u8> {
        let mut state = seed;
        let mut out = Vec::with_capacity(n);
        while out.len() < n {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            for i in 0..64 {
                if out.len() == n {
                    break;
                }
                out.push(((z >> i) & 1) as u8);
            }
        }
        out
    }

    #[test]
    fn matrix_rank_passes_random_fails_structured() {
        let bits = random_bits(40 * 1024, 5);
        assert!(matrix_rank(&bits).passed);
        // Period-32 stream: every matrix has rank 1.
        let structured: Vec<u8> = (0..40 * 1024).map(|i| ((i % 32) % 2) as u8).collect();
        assert!(!matrix_rank(&structured).passed);
    }

    #[test]
    fn spectral_passes_random_fails_periodic() {
        let bits = random_bits(2048, 6);
        assert!(spectral(&bits).passed);
        let periodic: Vec<u8> = (0..2048).map(|i| ((i / 4) % 2) as u8).collect();
        assert!(!spectral(&periodic).passed);
    }

    #[test]
    fn battery_includes_extended_tests_when_long_enough() {
        let bits = random_bits(40 * 1024, 7);
        let results = battery(&bits);
        assert!(results.iter().any(|r| r.name == "spectral"));
        assert!(results.iter().any(|r| r.name == "matrix_rank"));
    }

    #[test]
    fn gf2_rank_identities() {
        let mut identity: Vec<u32> = (0..32).map(|i| 1u32 << i).collect();
        assert_eq!(gf2_rank(&mut identity), 32);
        let mut zero = vec![0u32; 32];
        assert_eq!(gf2_rank(&mut zero), 0);
        let mut dup = vec![0b11u32; 32];
        assert_eq!(gf2_rank(&mut dup), 1);
    }
}
