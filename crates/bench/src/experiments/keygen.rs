//! E10 — §II-B + §III: key-generation pipeline ablation. Key failure
//! rate and FAR/FRR with raw responses, with margin filtering, and with
//! filtering + ECC of increasing strength.

use crate::{Rendered, Scale};
use neuropuls_crypto::ecc::{BlockCode, ConcatenatedCode};
use neuropuls_crypto::fuzzy::FuzzyExtractor;
use neuropuls_crypto::prng::CsPrng;
use neuropuls_metrics::far_frr::{decidability, equal_error_rate, sweep};
use neuropuls_photonic::process::DieId;
use neuropuls_puf::bits::Challenge;
use neuropuls_puf::photonic::PhotonicPuf;
use neuropuls_rt::rngs::StdRng;
use neuropuls_rt::SeedableRng;

/// One pipeline configuration's result.
#[derive(Debug, Clone)]
pub struct PipelineResult {
    /// Label.
    pub label: String,
    /// Fraction of key reproductions that failed.
    pub key_failure_rate: f64,
}

/// Runs the ablation.
pub fn run(scale: Scale) -> (Rendered, Vec<PipelineResult>, f64, f64) {
    let attempts = scale.pick(20, 300);
    let mut rng = StdRng::seed_from_u64(0xE10);
    let challenge = Challenge::random(64, &mut rng);

    // Characterize margins once for the filtering variant.
    let mut enroll_puf = PhotonicPuf::reference(DieId(0xE10), 100);
    let reads = scale.pick(7, 25);
    let mut margin_sums = vec![0.0f64; 64];
    let mut goldens: Vec<Vec<u8>> = Vec::new();
    for _ in 0..reads {
        let (r, m) = enroll_puf.respond_with_margins(&challenge).expect("eval");
        for (s, &v) in margin_sums.iter_mut().zip(&m) {
            *s += v;
        }
        goldens.push(r.into_bits());
    }
    let golden: Vec<u8> = (0..64)
        .map(|i| {
            let ones: usize = goldens.iter().map(|g| g[i] as usize).sum();
            u8::from(ones * 2 > goldens.len())
        })
        .collect();
    // Keep the 42 highest-|margin| bits (yield chosen to fit 2 ECC
    // blocks of the repetition-3 concatenated code).
    let mut order: Vec<usize> = (0..64).collect();
    order.sort_by(|&a, &b| {
        margin_sums[b]
            .abs()
            .partial_cmp(&margin_sums[a].abs())
            .expect("finite margins")
    });
    let kept: Vec<usize> = order[..42].to_vec();

    let mut results = Vec::new();
    for (label, filter, repetition) in [
        ("raw response, no ECC", false, 0usize),
        ("filtered (top-margin bits), no ECC", true, 0),
        ("raw + ECC (rep 3)", false, 3),
        ("filtered + ECC (rep 3)", true, 3),
        ("filtered + ECC (rep 5)", true, 5),
    ] {
        let mut failures = 0usize;
        // Enrollment reference bits for this pipeline.
        let reference: Vec<u8> = if filter {
            kept.iter().map(|&i| golden[i]).collect()
        } else {
            golden.clone()
        };
        let (helper, key) = if repetition > 0 {
            let code = ConcatenatedCode::new(repetition);
            let block = code.code_bits();
            let usable = reference.len() / block * block;
            let fx = FuzzyExtractor::new(code);
            let mut crng = CsPrng::from_seed_bytes(label.as_bytes());
            let enrollment = fx
                .generate(&reference[..usable], &mut crng)
                .expect("enroll");
            (Some((fx, enrollment.helper, usable)), enrollment.key)
        } else {
            (None, [0u8; 32])
        };

        let mut field_puf = PhotonicPuf::reference(DieId(0xE10), 999);
        for _ in 0..attempts {
            let (r, _) = field_puf.respond_with_margins(&challenge).expect("eval");
            let bits = r.into_bits();
            let reading: Vec<u8> = if filter {
                kept.iter().map(|&i| bits[i]).collect()
            } else {
                bits
            };
            let ok = match &helper {
                Some((fx, helper_data, usable)) => fx
                    .reproduce(&reading[..*usable], helper_data)
                    .map(|k| k == key)
                    .unwrap_or(false),
                None => reading == reference,
            };
            if !ok {
                failures += 1;
            }
        }
        results.push(PipelineResult {
            label: label.to_string(),
            key_failure_rate: failures as f64 / attempts as f64,
        });
    }

    // FAR/FRR: genuine rereads vs impostor devices, FHD matching. The
    // genuine series re-reads one die's evolving noise stream and stays
    // serial; each impostor is its own die, so that side fans out.
    let genuine: Vec<f64> = (0..attempts)
        .map(|_| {
            let bits = field_fhd_reading(&mut enroll_puf, &challenge);
            fhd(&golden, &bits)
        })
        .collect();
    let impostor: Vec<f64> = neuropuls_rt::pool::par_map((0..attempts).collect(), |k| {
        let mut other = PhotonicPuf::reference(DieId(50_000 + k as u64), 1);
        let bits = field_fhd_reading(&mut other, &challenge);
        fhd(&golden, &bits)
    });
    let curve = sweep(&genuine, &impostor, 100);
    let eer = equal_error_rate(&curve);
    let d_prime = decidability(&genuine, &impostor);

    let mut out = Rendered::new("E10 — key-generation pipeline ablation");
    out.push(format!("{:<38} {:>16}", "pipeline", "key failure rate"));
    for r in &results {
        out.push(format!(
            "{:<38} {:>15.1}%",
            r.label,
            r.key_failure_rate * 100.0
        ));
    }
    out.push(format!(
        "authentication-by-matching: EER {:.4}, decidability d' = {:.2}",
        eer, d_prime
    ));
    (out, results, eer, d_prime)
}

fn field_fhd_reading(puf: &mut PhotonicPuf, challenge: &Challenge) -> Vec<u8> {
    puf.respond_with_margins(challenge)
        .expect("eval")
        .0
        .into_bits()
}

fn fhd(a: &[u8], b: &[u8]) -> f64 {
    a.iter().zip(b).filter(|(x, y)| x != y).count() as f64 / a.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_keygen_ablation() {
        let (_, results, eer, d_prime) = run(Scale::Smoke);
        let rate = |label: &str| {
            results
                .iter()
                .find(|r| r.label.starts_with(label))
                .unwrap()
                .key_failure_rate
        };
        // ECC + filtering must beat raw matching.
        assert!(rate("filtered + ECC (rep 5)") <= rate("raw response"));
        assert!(eer < 0.1, "EER {eer}");
        assert!(d_prime > 3.0, "d' {d_prime}");
    }
}
