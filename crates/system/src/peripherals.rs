//! Memory-mapped peripherals: the PUF, the accelerator and a UART.
//!
//! The PUF peripheral is the "peripheral module connected to the RISC-V
//! microprocessor, providing the essential infrastructure for the
//! delivery of the programming API" (§V). Firmware writes a 64-bit
//! challenge, pulses CTRL, polls STATUS for the evaluation latency, and
//! reads the 64-bit response — exactly the flow of Fig. 1's
//! hardware/software boundary.

use crate::bus::MmioDevice;
use neuropuls_accel::engine::PhotonicEngine;
use neuropuls_puf::bits::Challenge;
use neuropuls_puf::photonic::PhotonicPuf;
use neuropuls_puf::traits::Puf;
use std::sync::Arc;
use std::sync::Mutex;

/// Register map of [`PufPeripheral`] (word offsets).
pub mod puf_regs {
    /// Challenge word 0 (bits 0..32), write.
    pub const CHALLENGE0: u32 = 0x00;
    /// Challenge word 1 (bits 32..64), write.
    pub const CHALLENGE1: u32 = 0x04;
    /// Control: write 1 to start an evaluation.
    pub const CTRL: u32 = 0x08;
    /// Status: bit 0 = busy, bit 1 = response valid, bit 2 = challenge
    /// fault (width mismatch; sticky until the next CTRL pulse).
    pub const STATUS: u32 = 0x0C;
    /// Response word 0, read.
    pub const RESPONSE0: u32 = 0x10;
    /// Response word 1, read.
    pub const RESPONSE1: u32 = 0x14;
    /// Evaluation latency in cycles, read.
    pub const LATENCY: u32 = 0x18;
    /// Evaluations performed (telemetry), read.
    pub const COUNT: u32 = 0x1C;
}

/// Shared telemetry of the PUF peripheral.
#[derive(Debug, Default, Clone)]
pub struct PufTelemetry {
    /// Number of completed evaluations.
    pub evaluations: u64,
    /// Total busy cycles.
    pub busy_cycles: u64,
    /// Energy consumed, picojoules.
    pub energy_pj: f64,
}

/// The pPUF MMIO peripheral.
pub struct PufPeripheral {
    puf: PhotonicPuf,
    challenge: [u32; 2],
    response: [u32; 2],
    busy_remaining: u64,
    response_valid: bool,
    fault: bool,
    latency_cycles: u64,
    energy_per_eval_pj: f64,
    telemetry: Arc<Mutex<PufTelemetry>>,
}

impl PufPeripheral {
    /// Wraps a photonic PUF. At a 1 GHz core clock one cycle is 1 ns, so
    /// the latency register mirrors the PUF's physical latency.
    pub fn new(puf: PhotonicPuf) -> (Self, Arc<Mutex<PufTelemetry>>) {
        let latency_cycles = puf.latency_ns().ceil() as u64;
        let telemetry = Arc::new(Mutex::new(PufTelemetry::default()));
        (
            PufPeripheral {
                puf,
                challenge: [0; 2],
                response: [0; 2],
                busy_remaining: 0,
                response_valid: false,
                fault: false,
                latency_cycles,
                energy_per_eval_pj: 50.0,
                telemetry: Arc::clone(&telemetry),
            },
            telemetry,
        )
    }

    fn start_evaluation(&mut self) {
        self.fault = false;
        // The register file holds exactly 64 challenge bits; a PUF
        // configured wider cannot be driven from this window, and
        // `Challenge::from_packed` would panic on the short buffer —
        // latch the fault bit instead of bringing the whole SoC down on
        // a register write.
        if self.puf.challenge_bits() > 64 {
            self.fault = true;
            self.busy_remaining = 0;
            self.response_valid = false;
            return;
        }
        let mut packed = Vec::with_capacity(8);
        packed.extend_from_slice(&self.challenge[0].to_le_bytes());
        packed.extend_from_slice(&self.challenge[1].to_le_bytes());
        let challenge = Challenge::from_packed(&packed, self.puf.challenge_bits());
        // The evaluation result is captured now; it becomes visible when
        // the busy countdown ends (models the pipeline latency). A PUF
        // that rejects the challenge (width mismatch) latches the fault
        // bit instead of bringing the whole SoC down.
        let response = match self.puf.respond(&challenge) {
            Ok(r) => r,
            Err(_) => {
                self.fault = true;
                self.busy_remaining = 0;
                self.response_valid = false;
                return;
            }
        };
        let bytes = response.to_packed();
        let mut words = [0u32; 2];
        for (i, chunk) in bytes.chunks(4).take(2).enumerate() {
            let mut w = [0u8; 4];
            w[..chunk.len()].copy_from_slice(chunk);
            words[i] = u32::from_le_bytes(w);
        }
        self.response = words;
        self.busy_remaining = self.latency_cycles;
        self.response_valid = false;

        // invariant: only this peripheral and read-only telemetry
        // consumers hold the lock, and neither panics while holding it.
        let mut t = self.telemetry.lock().expect("telemetry mutex poisoned");
        t.evaluations += 1;
        t.busy_cycles += self.latency_cycles;
        t.energy_pj += self.energy_per_eval_pj;
    }
}

impl std::fmt::Debug for PufPeripheral {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PufPeripheral")
            .field("busy_remaining", &self.busy_remaining)
            .field("response_valid", &self.response_valid)
            .finish()
    }
}

impl MmioDevice for PufPeripheral {
    fn size(&self) -> u32 {
        0x20
    }

    fn read32(&mut self, offset: u32) -> u32 {
        match offset {
            puf_regs::STATUS => {
                u32::from(self.busy_remaining > 0)
                    | (u32::from(self.response_valid) << 1)
                    | (u32::from(self.fault) << 2)
            }
            puf_regs::RESPONSE0 if self.response_valid => self.response[0],
            puf_regs::RESPONSE1 if self.response_valid => self.response[1],
            puf_regs::LATENCY => self.latency_cycles as u32,
            // invariant: telemetry lock holders never panic while
            // holding the lock.
            puf_regs::COUNT => {
                self.telemetry
                    .lock()
                    .expect("telemetry mutex poisoned")
                    .evaluations as u32
            }
            _ => 0,
        }
    }

    fn write32(&mut self, offset: u32, value: u32) {
        match offset {
            puf_regs::CHALLENGE0 => self.challenge[0] = value,
            puf_regs::CHALLENGE1 => self.challenge[1] = value,
            puf_regs::CTRL if value & 1 == 1 => self.start_evaluation(),
            _ => {}
        }
    }

    fn tick(&mut self, ticks: u64) {
        if self.busy_remaining > 0 {
            self.busy_remaining = self.busy_remaining.saturating_sub(ticks);
            if self.busy_remaining == 0 {
                self.response_valid = true;
            }
        }
    }
}

/// Register map of [`AccelPeripheral`] (word offsets).
pub mod accel_regs {
    /// Input values (f32 bit patterns), words 0..4, write.
    pub const INPUT0: u32 = 0x00;
    /// Control: write 1 to run one inference.
    pub const CTRL: u32 = 0x10;
    /// Status: bit 0 = busy, bit 1 = output valid, bit 2 = inference
    /// fault (sticky until the next CTRL pulse).
    pub const STATUS: u32 = 0x14;
    /// Output values (f32 bit patterns), words 0..4, read.
    pub const OUTPUT0: u32 = 0x18;
}

/// A 4-in/4-out accelerator window over a pre-loaded [`PhotonicEngine`].
pub struct AccelPeripheral {
    engine: PhotonicEngine,
    input: [u32; 4],
    output: [u32; 4],
    busy_remaining: u64,
    output_valid: bool,
    fault: bool,
}

impl AccelPeripheral {
    /// Wraps an engine that already has a 4→4 network loaded.
    ///
    /// # Panics
    ///
    /// Panics if no network is loaded.
    pub fn new(engine: PhotonicEngine) -> Self {
        assert!(
            engine.is_loaded(),
            "accelerator peripheral needs a loaded network"
        );
        AccelPeripheral {
            engine,
            input: [0; 4],
            output: [0; 4],
            busy_remaining: 0,
            output_valid: false,
            fault: false,
        }
    }
}

impl std::fmt::Debug for AccelPeripheral {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AccelPeripheral")
            .field("busy_remaining", &self.busy_remaining)
            .finish()
    }
}

impl MmioDevice for AccelPeripheral {
    fn size(&self) -> u32 {
        0x28
    }

    fn read32(&mut self, offset: u32) -> u32 {
        match offset {
            accel_regs::STATUS => {
                u32::from(self.busy_remaining > 0)
                    | (u32::from(self.output_valid) << 1)
                    | (u32::from(self.fault) << 2)
            }
            o if (accel_regs::OUTPUT0..accel_regs::OUTPUT0 + 16).contains(&o)
                && self.output_valid =>
            {
                self.output[((o - accel_regs::OUTPUT0) / 4) as usize]
            }
            _ => 0,
        }
    }

    fn write32(&mut self, offset: u32, value: u32) {
        match offset {
            o if (accel_regs::INPUT0..accel_regs::INPUT0 + 16).contains(&o) => {
                self.input[(o / 4) as usize] = value;
            }
            accel_regs::CTRL if value & 1 == 1 => {
                let input: Vec<f64> = self
                    .input
                    .iter()
                    .map(|&w| f32::from_bits(w) as f64)
                    .collect();
                // The constructor guarantees a loaded network, but the
                // engine can still refuse (e.g. a reconfigured network
                // with a different fan-in); latch the fault bit rather
                // than panic inside a bus write.
                self.fault = false;
                let Ok(output) = self.engine.infer(&input) else {
                    self.fault = true;
                    self.busy_remaining = 0;
                    self.output_valid = false;
                    return;
                };
                for (slot, value) in self.output.iter_mut().zip(output.iter()) {
                    *slot = (*value as f32).to_bits();
                }
                self.busy_remaining = 8; // optical transit + conversions
                self.output_valid = false;
            }
            _ => {}
        }
    }

    fn tick(&mut self, ticks: u64) {
        if self.busy_remaining > 0 {
            self.busy_remaining = self.busy_remaining.saturating_sub(ticks);
            if self.busy_remaining == 0 {
                self.output_valid = true;
            }
        }
    }
}

/// A write-only console UART.
#[derive(Debug)]
pub struct Uart {
    buffer: Arc<Mutex<Vec<u8>>>,
}

impl Uart {
    /// Creates the UART and hands back the shared output buffer.
    pub fn new() -> (Self, Arc<Mutex<Vec<u8>>>) {
        let buffer = Arc::new(Mutex::new(Vec::new()));
        (
            Uart {
                buffer: Arc::clone(&buffer),
            },
            buffer,
        )
    }
}

impl MmioDevice for Uart {
    fn size(&self) -> u32 {
        8
    }

    fn read32(&mut self, offset: u32) -> u32 {
        match offset {
            4 => 1, // always ready
            _ => 0,
        }
    }

    fn write32(&mut self, offset: u32, value: u32) {
        if offset == 0 {
            // invariant: buffer lock holders never panic while holding
            // the lock.
            self.buffer
                .lock()
                .expect("uart buffer mutex poisoned")
                .push(value as u8);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neuropuls_accel::config::NetworkConfig;
    use neuropuls_photonic::process::DieId;

    #[test]
    fn puf_peripheral_full_handshake() {
        let (mut p, telemetry) = PufPeripheral::new(PhotonicPuf::reference(DieId(1), 1));
        p.write32(puf_regs::CHALLENGE0, 0xDEAD_BEEF);
        p.write32(puf_regs::CHALLENGE1, 0x1234_5678);
        assert_eq!(p.read32(puf_regs::STATUS), 0, "idle before start");
        p.write32(puf_regs::CTRL, 1);
        assert_eq!(p.read32(puf_regs::STATUS) & 1, 1, "busy after start");
        assert_eq!(
            p.read32(puf_regs::RESPONSE0),
            0,
            "response hidden while busy"
        );
        let latency = u64::from(p.read32(puf_regs::LATENCY));
        p.tick(latency);
        assert_eq!(p.read32(puf_regs::STATUS), 2, "valid after latency");
        let r0 = p.read32(puf_regs::RESPONSE0);
        let r1 = p.read32(puf_regs::RESPONSE1);
        assert!(r0 != 0 || r1 != 0, "response should be nontrivial");
        assert_eq!(
            telemetry
                .lock()
                .expect("telemetry mutex poisoned")
                .evaluations,
            1
        );
    }

    #[test]
    fn puf_peripheral_same_challenge_similar_response() {
        let (mut p, _) = PufPeripheral::new(PhotonicPuf::reference(DieId(2), 2));
        let mut read_response = |c0: u32| {
            p.write32(puf_regs::CHALLENGE0, c0);
            p.write32(puf_regs::CHALLENGE1, 0xAAAA_5555);
            p.write32(puf_regs::CTRL, 1);
            p.tick(1000);
            (p.read32(puf_regs::RESPONSE0), p.read32(puf_regs::RESPONSE1))
        };
        let a = read_response(1);
        let b = read_response(1);
        let flips = (a.0 ^ b.0).count_ones() + (a.1 ^ b.1).count_ones();
        assert!(flips < 6, "same challenge too noisy: {flips} flips");
        let c = read_response(0xFFFF_0000);
        let diff = (a.0 ^ c.0).count_ones() + (a.1 ^ c.1).count_ones();
        assert!(diff > 6, "different challenge too similar: {diff} flips");
    }

    #[test]
    fn puf_peripheral_latches_fault_on_wide_challenge() {
        // The register window exposes exactly 64 challenge bits; a PUF
        // fabricated wider must latch STATUS bit 2 on CTRL instead of
        // panicking inside the register write.
        use neuropuls_photonic::process::ProcessVariation;
        use neuropuls_puf::photonic::PhotonicPufConfig;
        let config = PhotonicPufConfig {
            challenge_bits: 128,
            ..PhotonicPufConfig::reference()
        };
        let puf = PhotonicPuf::fabricate(DieId(9), config, ProcessVariation::typical_soi(), 9);
        let (mut p, telemetry) = PufPeripheral::new(puf);
        p.write32(puf_regs::CHALLENGE0, 0xDEAD_BEEF);
        p.write32(puf_regs::CHALLENGE1, 0x1234_5678);
        p.write32(puf_regs::CTRL, 1);
        assert_eq!(
            p.read32(puf_regs::STATUS),
            4,
            "fault bit set, not busy/valid"
        );
        p.tick(1000);
        assert_eq!(
            p.read32(puf_regs::STATUS),
            4,
            "fault is sticky across ticks"
        );
        assert_eq!(p.read32(puf_regs::RESPONSE0), 0, "no response exposed");
        assert_eq!(p.read32(puf_regs::RESPONSE1), 0, "no response exposed");
        assert_eq!(
            telemetry
                .lock()
                .expect("telemetry mutex poisoned")
                .evaluations,
            0,
            "faulted start is not an evaluation"
        );
    }

    #[test]
    fn accel_peripheral_runs_inference() {
        let mut engine = PhotonicEngine::reference(1);
        engine
            .load(NetworkConfig::mlp(
                &[4, 4],
                |_, o, i| {
                    if o == i {
                        1.0
                    } else {
                        0.0
                    }
                },
            ))
            .unwrap();
        let mut p = AccelPeripheral::new(engine);
        p.write32(accel_regs::INPUT0, 1.0f32.to_bits());
        p.write32(accel_regs::INPUT0 + 4, 0.5f32.to_bits());
        p.write32(accel_regs::CTRL, 1);
        p.tick(8);
        assert_eq!(p.read32(accel_regs::STATUS), 2);
        let y0 = f32::from_bits(p.read32(accel_regs::OUTPUT0));
        assert!((y0 - 1.0).abs() < 0.1, "y0 = {y0}");
    }

    #[test]
    fn accel_peripheral_latches_fault_on_bad_network_shape() {
        // A loaded network that does not accept the peripheral's fixed
        // 4-wide input: CTRL must latch STATUS bit 2 instead of panic.
        let mut engine = PhotonicEngine::reference(2);
        engine
            .load(NetworkConfig::mlp(
                &[2, 2],
                |_, o, i| {
                    if o == i {
                        1.0
                    } else {
                        0.0
                    }
                },
            ))
            .unwrap();
        let mut p = AccelPeripheral::new(engine);
        p.write32(accel_regs::INPUT0, 1.0f32.to_bits());
        p.write32(accel_regs::CTRL, 1);
        assert_eq!(
            p.read32(accel_regs::STATUS),
            4,
            "fault bit set, not busy/valid"
        );
        p.tick(64);
        assert_eq!(p.read32(accel_regs::STATUS), 4, "fault is sticky");
        assert_eq!(p.read32(accel_regs::OUTPUT0), 0, "no stale output exposed");
    }

    #[test]
    fn uart_collects_bytes() {
        let (mut uart, buffer) = Uart::new();
        for b in b"ok" {
            uart.write32(0, u32::from(*b));
        }
        assert_eq!(&*buffer.lock().expect("uart buffer mutex poisoned"), b"ok");
        assert_eq!(uart.read32(4), 1);
    }
}
