//! E9 — §V: system-level simulation. Firmware on the RV32IM SoC drives
//! the PUF peripheral; the gem5-style stats report throughput, latency
//! and energy.

use crate::{Rendered, Scale};
use neuropuls_photonic::process::DieId;
use neuropuls_puf::photonic::PhotonicPuf;
use neuropuls_system::soc::{Soc, StopReason};

fn interrogation_firmware(rounds: u32) -> String {
    format!(
        "
    li   s0, 0x10000000
    li   s1, {rounds}
    li   s2, 0
    li   s3, 0x0DDC0FFE
loop:
    sw   s3, 0(s0)
    sw   s1, 4(s0)
    li   t1, 1
    sw   t1, 8(s0)
wait:
    lw   t2, 12(s0)
    andi t2, t2, 2
    beqz t2, wait
    lw   t3, 16(s0)
    xor  s2, s2, t3
    slli s3, s3, 1
    xor  s3, s3, t3
    addi s1, s1, -1
    bnez s1, loop
    mv   a0, s2
    li   a7, 0
    ecall
"
    )
}

/// Key stats extracted for assertions.
#[derive(Debug, Clone, Copy)]
pub struct Outcome {
    /// PUF evaluations performed by firmware.
    pub evaluations: f64,
    /// Simulated nanoseconds.
    pub sim_time_ns: f64,
    /// Total SoC energy (pJ).
    pub energy_pj: f64,
    /// Authentication-primitive throughput: evaluations per µs.
    pub evals_per_us: f64,
}

/// Runs the SoC workload and dumps stats.
pub fn run(scale: Scale) -> (Rendered, Outcome) {
    let rounds = scale.pick(4u32, 64);
    let mut soc = Soc::new(PhotonicPuf::reference(DieId(0xE9), 1), None);
    soc.load_firmware(&interrogation_firmware(rounds))
        .expect("firmware assembles");
    let reason = soc.run(10_000_000);
    assert!(
        matches!(reason, StopReason::Halted(_)),
        "firmware did not halt: {reason:?}"
    );

    let stats = soc.stats();
    let outcome = Outcome {
        evaluations: stats.scalar("puf.evaluations"),
        sim_time_ns: stats.scalar("soc.sim_time_ns"),
        energy_pj: stats.scalar("soc.energy_pj"),
        evals_per_us: stats.scalar("puf.evaluations") / (stats.scalar("soc.sim_time_ns") / 1000.0),
    };

    let mut out = Rendered::new(format!(
        "E9 (§V) — RV32IM SoC running {rounds} PUF interrogations"
    ));
    for line in soc.stats().dump().lines() {
        out.push(line.to_string());
    }
    out.push(format!(
        "derived: {:.2} PUF evaluations/µs end-to-end (firmware + peripheral latency)",
        outcome.evals_per_us
    ));
    (out, outcome)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_soc_workload() {
        let (rendered, o) = run(Scale::Smoke);
        assert_eq!(o.evaluations, 4.0);
        assert!(o.sim_time_ns > 0.0);
        assert!(o.energy_pj > 0.0);
        assert!(o.evals_per_us > 0.0);
        // The gem5-style dump now carries the bus transaction counters.
        let stable = rendered.stable_string();
        assert!(stable.contains("bus.ram_reads"), "{stable}");
        assert!(stable.contains("bus.device_writes"), "{stable}");
    }
}
