//! Enrollment-time CRP filtering (§II-B / Fig. 3): sweep the counter
//! threshold on an RO-PUF population and the photocurrent threshold on
//! the photonic PUF, printing the reliability / bit-aliasing / yield
//! trade-off curves.
//!
//! ```sh
//! cargo run --example enrollment_filtering --release
//! ```

use neuropuls::filtering::photocurrent::PhotocurrentStudy;
use neuropuls::filtering::ro_filter::RoFilterStudy;

fn main() {
    println!("== RO-PUF counter-threshold sweep (Fig. 3) ==");
    println!(
        "{:>9} {:>12} {:>18} {:>10}",
        "threshold", "reliability", "aliasing entropy", "CRP yield"
    );
    let study = RoFilterStudy::generate(20, 15, 2024);
    let thresholds: Vec<f64> = (0..=10).map(|i| i as f64 * 20.0).collect();
    for point in study.threshold_sweep(&thresholds) {
        println!(
            "{:>9.0} {:>12.4} {:>18.4} {:>9.1}%",
            point.threshold,
            point.reliability,
            point.aliasing_entropy,
            point.surviving_fraction * 100.0
        );
    }
    match study.trade_off_window(&thresholds, 0.999, 0.55) {
        Some((lo, hi)) => println!(
            "trade-off window (reliability ≥ 0.999, entropy ≥ 0.55): thresholds {lo:.0}..{hi:.0}"
        ),
        None => println!("no threshold satisfies both targets"),
    }

    println!("\n== photonic PUF photocurrent-threshold sweep (§II-B adaptation) ==");
    println!(
        "{:>9} {:>12} {:>18} {:>10}",
        "threshold", "reliability", "aliasing entropy", "bit yield"
    );
    let study = PhotocurrentStudy::generate(6, 3, 9, 4242);
    for point in study.threshold_sweep(&[0.0, 2.0, 5.0, 10.0, 20.0, 40.0]) {
        println!(
            "{:>9.0} {:>12.4} {:>18.4} {:>9.1}%",
            point.threshold,
            point.reliability,
            point.aliasing_entropy,
            point.surviving_fraction * 100.0
        );
    }
}
