//! E3 — Table I: the `load_network` / `execute_network` hardware API
//! with end-to-end confidentiality, plus the encryption overhead.

use crate::{Rendered, Scale};
use neuropuls_accel::config::NetworkConfig;
use neuropuls_accel::engine::PhotonicEngine;
use neuropuls_protocols::secure_nn::{NetworkOwner, SecureAccelerator};
use std::time::Instant;

/// Outcome for assertions.
#[derive(Debug)]
pub struct Outcome {
    /// Inferences that decrypted correctly at the owner.
    pub successful_inferences: usize,
    /// Inferences attempted.
    pub attempted: usize,
    /// True when no plaintext fragment appeared in any wire blob.
    pub no_plaintext_on_wire: bool,
    /// Mean per-inference wall time with encryption (µs).
    pub encrypted_us: f64,
    /// Mean per-inference wall time without encryption (µs).
    pub plain_us: f64,
}

/// Runs the Table-I service end to end.
pub fn run(scale: Scale) -> (Rendered, Outcome) {
    let inferences = scale.pick(20, 500);
    let key = [0x7E; 32];
    let mut owner = NetworkOwner::new(key, b"table1-owner");
    let mut accel = SecureAccelerator::new(PhotonicEngine::reference(1), key);

    let network = NetworkConfig::mlp(&[16, 8, 4], |l, o, i| {
        (((l * 13 + o * 7 + i * 3) % 11) as f32 - 5.0) * 0.1
    });
    let network_bytes = network.to_bytes();
    let ciphered_network = owner.cipher_network(&network);

    // Confidentiality: no 16-byte plaintext window on the wire.
    let mut no_leak = true;
    for window in network_bytes.windows(16) {
        if ciphered_network.windows(16).any(|w| w == window) {
            no_leak = false;
        }
    }
    accel.load_network(&ciphered_network).expect("load_network");

    let mut successful = 0usize;
    let start = Instant::now();
    for k in 0..inferences {
        let input: Vec<f64> = (0..16).map(|i| ((i + k) % 5) as f64 * 0.2 - 0.4).collect();
        let blob = owner.cipher_input(&input);
        if blob.windows(16).any(|w| {
            crate::experiments::table1::encode_probe(&input)
                .windows(16)
                .any(|p| p == w)
        }) {
            no_leak = false;
        }
        let out = accel.execute_network(&blob).expect("execute_network");
        if owner.decipher_output(&out).is_ok() {
            successful += 1;
        }
    }
    let encrypted_us = start.elapsed().as_micros() as f64 / inferences as f64;

    // Baseline: the same engine without the crypto path.
    let mut plain_engine = PhotonicEngine::reference(1);
    plain_engine.load(network.clone()).expect("plain load");
    let start = Instant::now();
    for k in 0..inferences {
        let input: Vec<f64> = (0..16).map(|i| ((i + k) % 5) as f64 * 0.2 - 0.4).collect();
        let _ = plain_engine.infer(&input).expect("plain infer");
    }
    let plain_us = start.elapsed().as_micros() as f64 / inferences as f64;

    let mut out = Rendered::new("E3 (Table I) — secure NN load/execute");
    out.push(format!(
        "network: {} layers, {} weights, ciphered blob {} bytes",
        network.layers.len(),
        network
            .layers
            .iter()
            .map(|l| l.weights.len())
            .sum::<usize>(),
        ciphered_network.len()
    ));
    out.push(format!(
        "encrypted inferences: {successful}/{inferences} round-tripped correctly"
    ));
    out.push(format!(
        "plaintext fragments on the wire: {}",
        if no_leak {
            "none detected"
        } else {
            "LEAK DETECTED"
        }
    ));
    out.push_volatile(format!(
        "per-inference cost: {encrypted_us:.1} µs encrypted vs {plain_us:.1} µs plain \
         ({:.2}x overhead)",
        encrypted_us / plain_us.max(0.001)
    ));
    (
        out,
        Outcome {
            successful_inferences: successful,
            attempted: inferences,
            no_plaintext_on_wire: no_leak,
            encrypted_us,
            plain_us,
        },
    )
}

/// The tensor encoding used for leak probing (mirrors the wire codec).
pub fn encode_probe(values: &[f64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + values.len() * 4);
    out.extend_from_slice(&(values.len() as u32).to_le_bytes());
    for &v in values {
        out.extend_from_slice(&(v as f32).to_le_bytes());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_table1() {
        let (_, outcome) = run(Scale::Smoke);
        assert_eq!(outcome.successful_inferences, outcome.attempted);
        assert!(outcome.no_plaintext_on_wire);
    }
}
