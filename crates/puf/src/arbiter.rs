//! Arbiter PUF and XOR-arbiter composition — the classical electronic
//! strong PUFs the paper compares against.
//!
//! §IV: ML modeling attacks "have been particularly successful against
//! common types of PUF, such as PUFs with ring oscillators (ROs) or
//! arbiters \[28\]. The main weakness of this type of PUF lies in the
//! relatively small number of components and variables that participate".
//!
//! The additive delay model: each stage contributes a delay difference
//! depending on its challenge bit; the arbiter outputs the sign of the
//! accumulated difference. In the standard parity parametrization the
//! response is `sign(w · Φ(c))` with feature vector
//! `Φ_i(c) = Π_{j≥i} (1-2c_j)` — *linearly separable*, which is exactly
//! why logistic regression breaks it (experiment E6).

use crate::bits::{Challenge, Response};
use crate::traits::{Puf, PufError, PufKind};
use neuropuls_photonic::laser::gaussian;
use neuropuls_photonic::process::DieId;
use neuropuls_photonic::Environment;
use neuropuls_rt::rngs::StdRng;
use neuropuls_rt::SeedableRng;

/// A single arbiter chain.
#[derive(Debug, Clone)]
pub struct ArbiterPuf {
    stages: usize,
    /// Per-stage delay-difference weights plus the final arbiter bias
    /// (the physical secret), in arbitrary time units.
    weights: Vec<f64>,
    /// Measurement noise σ on the accumulated delay difference.
    noise_sigma: f64,
    env: Environment,
    rng: StdRng,
}

impl ArbiterPuf {
    /// Fabricates a `stages`-stage chain for `die`.
    ///
    /// # Panics
    ///
    /// Panics if `stages == 0`.
    pub fn fabricate(die: DieId, stages: usize, noise_seed: u64) -> Self {
        assert!(stages > 0, "arbiter chain needs at least one stage");
        let mut fab_rng = StdRng::seed_from_u64(die.0.wrapping_mul(0xA24B_AED4_963E_E407));
        let weights = (0..=stages).map(|_| gaussian(&mut fab_rng)).collect();
        ArbiterPuf {
            stages,
            weights,
            noise_sigma: 0.05,
            env: Environment::nominal(),
            rng: StdRng::seed_from_u64(noise_seed ^ die.0.rotate_left(29)),
        }
    }

    /// The parity feature vector Φ(c) of length `stages + 1` (the
    /// representation a modeling attacker would use).
    pub fn features(challenge: &Challenge) -> Vec<f64> {
        let n = challenge.len();
        let mut phi = vec![1.0; n + 1];
        for i in (0..n).rev() {
            let sign = 1.0 - 2.0 * challenge.bits()[i] as f64;
            phi[i] = phi[i + 1] * sign;
        }
        phi
    }

    /// Noise-free delay difference for a challenge (ground truth for the
    /// attack experiments).
    pub fn delay_difference(&self, challenge: &Challenge) -> f64 {
        Self::features(challenge)
            .iter()
            .zip(self.weights.iter())
            .map(|(phi, w)| phi * w)
            .sum()
    }
}

impl Puf for ArbiterPuf {
    fn challenge_bits(&self) -> usize {
        self.stages
    }

    fn response_bits(&self) -> usize {
        1
    }

    fn kind(&self) -> PufKind {
        PufKind::Strong
    }

    fn respond(&mut self, challenge: &Challenge) -> Result<Response, PufError> {
        if challenge.len() != self.stages {
            return Err(PufError::ChallengeLength {
                expected: self.stages,
                actual: challenge.len(),
            });
        }
        // Temperature widens the noise (delay lines drift together, so
        // only the noise term grows appreciably).
        let sigma = self.noise_sigma * (1.0 + 0.01 * self.env.delta_t().abs());
        let delta = self.delay_difference(challenge) + sigma * gaussian(&mut self.rng);
        Ok(Response::from_bits([u8::from(delta > 0.0)]))
    }

    fn set_environment(&mut self, env: Environment) {
        self.env = env;
    }

    fn environment(&self) -> Environment {
        self.env
    }

    /// A single race through the chain: ~1 ns per 64 stages.
    fn latency_ns(&self) -> f64 {
        self.stages as f64 / 64.0
    }
}

/// k parallel arbiter chains whose bits are XORed — harder to model but
/// noisier (noise accumulates through the XOR).
#[derive(Debug, Clone)]
pub struct XorArbiterPuf {
    chains: Vec<ArbiterPuf>,
}

impl XorArbiterPuf {
    /// Fabricates `k` chains of `stages` stages.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or `stages == 0`.
    pub fn fabricate(die: DieId, stages: usize, k: usize, noise_seed: u64) -> Self {
        assert!(k > 0, "need at least one chain");
        let chains = (0..k)
            .map(|i| {
                ArbiterPuf::fabricate(
                    DieId(die.0.wrapping_add((i as u64) << 48)),
                    stages,
                    noise_seed.wrapping_add(i as u64),
                )
            })
            .collect();
        XorArbiterPuf { chains }
    }

    /// Number of XORed chains.
    pub fn k(&self) -> usize {
        self.chains.len()
    }
}

impl Puf for XorArbiterPuf {
    fn challenge_bits(&self) -> usize {
        self.chains[0].challenge_bits()
    }

    fn response_bits(&self) -> usize {
        1
    }

    fn kind(&self) -> PufKind {
        PufKind::Strong
    }

    fn respond(&mut self, challenge: &Challenge) -> Result<Response, PufError> {
        let mut acc = 0u8;
        for chain in &mut self.chains {
            acc ^= chain.respond(challenge)?.bits()[0];
        }
        Ok(Response::from_bits([acc]))
    }

    fn set_environment(&mut self, env: Environment) {
        for chain in &mut self.chains {
            chain.set_environment(env);
        }
    }

    fn environment(&self) -> Environment {
        self.chains[0].environment()
    }

    fn latency_ns(&self) -> f64 {
        self.chains[0].latency_ns()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neuropuls_rt::Rng;

    fn challenge(seed: u64, n: usize) -> Challenge {
        let mut rng = StdRng::seed_from_u64(seed);
        Challenge::from_bits((0..n).map(|_| rng.gen::<u8>() & 1))
    }

    #[test]
    fn response_is_sign_of_delay() {
        let mut p = ArbiterPuf::fabricate(DieId(1), 64, 7);
        for s in 0..20 {
            let c = challenge(s, 64);
            let delta = p.delay_difference(&c);
            if delta.abs() > 0.5 {
                // Far from the decision boundary: noise cannot flip it.
                let r = p.respond(&c).unwrap();
                assert_eq!(r.bits()[0], u8::from(delta > 0.0));
            }
        }
    }

    #[test]
    fn features_are_plus_minus_one() {
        let c = challenge(1, 16);
        for phi in ArbiterPuf::features(&c) {
            assert!(phi == 1.0 || phi == -1.0);
        }
    }

    #[test]
    fn feature_parity_structure() {
        // All-zero challenge → all features +1.
        let c = Challenge::from_bits(vec![0u8; 8]);
        assert!(ArbiterPuf::features(&c).iter().all(|&p| p == 1.0));
        // Challenge with a single 1 at the last stage flips every feature
        // except the trailing bias term.
        let mut bits = vec![0u8; 8];
        bits[7] = 1;
        let c = Challenge::from_bits(bits);
        let phi = ArbiterPuf::features(&c);
        assert!(phi[..8].iter().all(|&p| p == -1.0));
        assert_eq!(phi[8], 1.0);
    }

    #[test]
    fn different_dies_differ() {
        let mut a = ArbiterPuf::fabricate(DieId(2), 64, 1);
        let mut b = ArbiterPuf::fabricate(DieId(3), 64, 1);
        let mut diff = 0usize;
        for s in 0..200 {
            let c = challenge(s, 64);
            if a.respond(&c).unwrap() != b.respond(&c).unwrap() {
                diff += 1;
            }
        }
        assert!(diff > 50, "only {diff}/200 differing responses");
    }

    #[test]
    fn rejects_wrong_width() {
        let mut p = ArbiterPuf::fabricate(DieId(4), 64, 1);
        assert!(p.respond(&challenge(1, 32)).is_err());
    }

    #[test]
    fn xor_arbiter_noisier_than_single() {
        let c = challenge(9, 64);
        let mut single = ArbiterPuf::fabricate(DieId(5), 64, 3);
        let mut xored = XorArbiterPuf::fabricate(DieId(5), 64, 4, 3);
        let flip_rate = |reads: Vec<u8>| {
            let ones: usize = reads.iter().map(|&b| b as usize).sum();
            let frac = ones as f64 / reads.len() as f64;
            frac.min(1.0 - frac)
        };
        let n = 200;
        let fr_single = flip_rate(
            (0..n)
                .map(|_| single.respond(&c).unwrap().bits()[0])
                .collect(),
        );
        let fr_xor = flip_rate(
            (0..n)
                .map(|_| xored.respond(&c).unwrap().bits()[0])
                .collect(),
        );
        assert!(fr_xor >= fr_single, "single {fr_single} xor {fr_xor}");
    }

    #[test]
    fn xor_arbiter_balanced() {
        let mut p = XorArbiterPuf::fabricate(DieId(6), 64, 4, 11);
        let ones: usize = (0..400)
            .map(|s| p.respond(&challenge(s, 64)).unwrap().bits()[0] as usize)
            .sum();
        let frac = ones as f64 / 400.0;
        assert!((frac - 0.5).abs() < 0.1, "bias {frac}");
    }
}
