//! Regenerates the aging sweep (E15).
use neuropuls_bench::{experiments, Scale};

fn main() {
    let (out, _) = experiments::aging::run(Scale::from_args());
    print!("{out}");
}
