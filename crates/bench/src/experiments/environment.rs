//! E11 — §II-B: reliability under temperature and laser-power
//! excursions, comparing the paper's two mitigation levels:
//!
//! * **calibration bank** — a photonic temperature sensor selects the
//!   enrollment golden nearest to the sensed die temperature
//!   ("considering this additional parameter when evaluating the
//!   genuinity of the responses"). Works *at* the calibration points
//!   but the deep interferometric cascade decorrelates within a few
//!   kelvin, so midpoints between 25 K-spaced calibrations fail — an
//!   honest negative result that motivates the second level;
//! * **sensor + TEC controller** — "hardware approaches based on the
//!   temperature controller": a thermo-electric cooler servo holds the
//!   die at the 25 °C setpoint within ±0.2 K regardless of ambient.

use crate::{Rendered, Scale};
use neuropuls_photonic::environment::{Environment, TemperatureSensor};
use neuropuls_photonic::process::DieId;
use neuropuls_puf::bits::{Challenge, Response};
use neuropuls_puf::photonic::PhotonicPuf;
use neuropuls_puf::traits::Puf;
use neuropuls_rt::rngs::StdRng;
use neuropuls_rt::{Rng, SeedableRng};

/// One sweep row.
#[derive(Debug, Clone, Copy)]
pub struct Row {
    /// Ambient temperature (°C).
    pub temperature_c: f64,
    /// Reliability against the 25 °C enrollment, no mitigation.
    pub uncompensated: f64,
    /// Reliability with the sensor-selected calibration golden.
    pub calibration_bank: f64,
    /// Reliability with the sensor + TEC controller holding the die at
    /// the setpoint.
    pub controlled: f64,
}

/// Runs the temperature sweep plus a laser-power excursion check.
pub fn run(scale: Scale) -> (Rendered, Vec<Row>, f64, f64) {
    let temperatures: Vec<f64> = scale.pick(
        vec![-20.0, 25.0, 85.0],
        vec![-20.0, 0.0, 25.0, 45.0, 65.0, 85.0],
    );
    let calibration_points = [-20.0, 0.0, 25.0, 50.0, 85.0];
    let reads = scale.pick(5, 30);

    // Enrollment (serial, one die): golden at 25 °C plus
    // per-calibration-point goldens.
    let mut enroll_puf = PhotonicPuf::reference(DieId(0xE11), 1);
    let mut rng = StdRng::seed_from_u64(0xE11);
    let challenge = Challenge::random(64, &mut rng);
    enroll_puf.set_environment(Environment::at_temperature(25.0));
    let golden_nominal = enroll_puf.respond_golden(&challenge, 9).expect("eval");
    let calibrated: Vec<(f64, Response)> = calibration_points
        .iter()
        .map(|&t| {
            enroll_puf.set_environment(Environment::at_temperature(t));
            (t, enroll_puf.respond_golden(&challenge, 9).expect("eval"))
        })
        .collect();

    let sensor = TemperatureSensor::new();
    // Each temperature row reads the same die with a noise stream and
    // sensor RNG derived from its own row index, so the sweep fans out
    // on the pool with byte-identical output at any thread count.
    let rows: Vec<Row> = neuropuls_rt::pool::par_map(
        temperatures.iter().copied().enumerate().collect(),
        |(row, t)| {
            let mut puf = PhotonicPuf::reference(DieId(0xE11), 1_000 + row as u64);
            let mut rng = StdRng::seed_from_u64(0xE110000 + row as u64);
            let mut uncomp = 0.0;
            let mut bank = 0.0;
            let mut controlled = 0.0;
            for _ in 0..reads {
                // Free-running die at ambient temperature.
                puf.set_environment(Environment::at_temperature(t));
                let reading = puf.respond(&challenge).expect("eval");
                uncomp += 1.0 - golden_nominal.fhd(&reading);
                // Calibration bank: sensor picks the nearest golden.
                let sensed = sensor.read(&Environment::at_temperature(t), rng.gen::<f64>() - 0.5);
                let nearest = calibrated
                    .iter()
                    .min_by(|a, b| {
                        (a.0 - sensed)
                            .abs()
                            .partial_cmp(&(b.0 - sensed).abs())
                            .expect("finite")
                    })
                    .expect("non-empty calibration");
                bank += 1.0 - nearest.1.fhd(&reading);
                // TEC servo: the die sits at the setpoint ± residual error.
                let residual = 0.2 * (rng.gen::<f64>() - 0.5);
                puf.set_environment(Environment::at_temperature(25.0 + residual));
                let servo_reading = puf.respond(&challenge).expect("eval");
                controlled += 1.0 - golden_nominal.fhd(&servo_reading);
            }
            Row {
                temperature_c: t,
                uncompensated: uncomp / reads as f64,
                calibration_bank: bank / reads as f64,
                controlled: controlled / reads as f64,
            }
        },
    );

    // Laser power excursions at nominal temperature: two independent
    // readout series, also per-item seeded.
    let power_rels = neuropuls_rt::pool::par_map(vec![(0usize, 0.8), (1, 1.2)], |(i, scale)| {
        let mut puf = PhotonicPuf::reference(DieId(0xE11), 2_000 + i as u64);
        puf.set_environment(Environment::nominal().with_laser_scale(scale));
        let mut sum = 0.0;
        for _ in 0..reads {
            sum += 1.0 - golden_nominal.fhd(&puf.respond(&challenge).expect("eval"));
        }
        sum / reads as f64
    });
    let (low_power_rel, high_power_rel) = (power_rels[0], power_rels[1]);

    let mut out = Rendered::new("E11 (§II-B) — environmental reliability");
    out.push(format!(
        "{:>8} {:>16} {:>18} {:>16}",
        "temp °C", "uncompensated", "calibration bank", "sensor + TEC"
    ));
    for r in &rows {
        out.push(format!(
            "{:>8.0} {:>16.4} {:>18.4} {:>16.4}",
            r.temperature_c, r.uncompensated, r.calibration_bank, r.controlled
        ));
    }
    out.push(
        "the calibration bank only helps at its calibration points (the cascade \
         decorrelates within a few K); the TEC servo restores reliability everywhere"
            .to_string(),
    );
    out.push(format!(
        "laser power ±20%: reliability {low_power_rel:.4} (−20%) / {high_power_rel:.4} (+20%) \
         — differential readout cancels common-mode power"
    ));
    (out, rows, low_power_rel, high_power_rel)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_environment_sweep() {
        let (_, rows, low, high) = run(Scale::Smoke);
        let worst_uncomp = rows
            .iter()
            .map(|r| r.uncompensated)
            .fold(f64::INFINITY, f64::min);
        let worst_controlled = rows
            .iter()
            .map(|r| r.controlled)
            .fold(f64::INFINITY, f64::min);
        assert!(
            worst_controlled > 0.9,
            "TEC-controlled reliability {worst_controlled}"
        );
        assert!(
            worst_controlled > worst_uncomp,
            "controller must beat free-running: {worst_controlled} vs {worst_uncomp}"
        );
        // Common-mode laser power barely matters thanks to the
        // differential comparisons.
        assert!(low > 0.93 && high > 0.93, "laser power hurt: {low}/{high}");
    }
}
