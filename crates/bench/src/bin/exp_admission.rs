//! Regenerates the class-aware admission overload study (E24) and
//! writes `BENCH_exp_admission.json`.
//!
//! Run standalone, this binary also *enforces* the fairness target: at
//! 1024 mixed-class sessions and 4x overload the FIFO policy starves
//! the trailing minority class outright (p99 backlog wait censored at
//! the run length) while equal-weight DWRR admits the whole minority
//! with every class's p99 inside 2x its weight-proportional fair
//! drain. stdout carries only the deterministic tables (CI diffs 1
//! thread against 8); the per-cell waits land in the bench JSON.

use neuropuls_bench::experiments::admission::{acceptance_row, run, CellSummary};
use neuropuls_bench::Scale;

fn write_report(summary: &[CellSummary]) {
    let mut json = String::new();
    json.push_str("{\n  \"schema\": \"neuropuls-bench-v1\",\n");
    json.push_str("  \"target\": \"exp_admission\",\n");
    json.push_str("  \"benchmarks\": [\n");
    for (i, &(sessions, overload, _, fifo_p99, _, dwrr_p99, _, _)) in summary.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"fifo_minority_wait_p99/sessions={sessions},overload={overload}x\", \
             \"samples\": 1, \"iters_per_sample\": 1, \"mean_ns\": {fifo_p99}.0, \
             \"p50_ns\": {fifo_p99}.0, \"p99_ns\": {fifo_p99}.0, \"throughput_bytes\": null, \
             \"throughput_elements\": null}},\n"
        ));
        json.push_str(&format!(
            "    {{\"name\": \"dwrr_minority_wait_p99/sessions={sessions},overload={overload}x\", \
             \"samples\": 1, \"iters_per_sample\": 1, \"mean_ns\": {dwrr_p99}.0, \
             \"p50_ns\": {dwrr_p99}.0, \"p99_ns\": {dwrr_p99}.0, \"throughput_bytes\": null, \
             \"throughput_elements\": null}}{}\n",
            if i + 1 == summary.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");
    match std::fs::write("BENCH_exp_admission.json", &json) {
        Ok(()) => eprintln!("wrote BENCH_exp_admission.json"),
        Err(e) => eprintln!("could not write BENCH_exp_admission.json: {e}"),
    }
}

fn main() {
    let (out, summary) = run(Scale::from_args());
    print!("{out}");
    write_report(&summary);

    let (_, _, run_ticks, fifo_p99, fifo_adm, dwrr_p99, _, bounded) =
        acceptance_row(&summary).expect("sweep carries the 1024-session 4x cell");
    assert_eq!(
        fifo_adm, 0,
        "fifo must starve the trailing minority outright at 4x overload"
    );
    assert!(
        bounded && dwrr_p99 < fifo_p99,
        "dwrr must bound every class's p99 inside its fair drain (minority {dwrr_p99} vs \
         fifo's censored {fifo_p99}, budget {run_ticks})"
    );
    eprintln!(
        "fairness target met: dwrr minority p99 {dwrr_p99} ticks vs fifo {fifo_p99} \
         (run length {run_ticks})"
    );
}
