//! Weak photonic PUF for key generation (Fig. 1, left branch).
//!
//! A weak PUF is simply a strong primitive restricted to a small, fixed,
//! public challenge set: the device always interrogates the same
//! challenges and concatenates the responses into a long *key response*,
//! which the fuzzy extractor (in `neuropuls-crypto`) turns into a stable
//! secret key for the encryption services of §III-C.

use crate::bits::{Challenge, Response};
use crate::traits::{Puf, PufError, PufKind};
use neuropuls_photonic::Environment;
use neuropuls_rt::rngs::StdRng;
use neuropuls_rt::SeedableRng;

/// A weak PUF view over any strong PUF: a fixed challenge set whose
/// concatenated responses form the key material.
#[derive(Debug)]
pub struct WeakPuf<P: Puf> {
    inner: P,
    challenges: Vec<Challenge>,
}

impl<P: Puf> WeakPuf<P> {
    /// Restricts `inner` to a deterministic public challenge set of
    /// `count` challenges derived from `derivation_seed` (the same seed
    /// must be used at enrollment and in the field).
    ///
    /// # Panics
    ///
    /// Panics if `count == 0`.
    pub fn with_derived_challenges(inner: P, count: usize, derivation_seed: u64) -> Self {
        assert!(count > 0, "weak PUF needs at least one challenge");
        let mut rng = StdRng::seed_from_u64(derivation_seed);
        let challenges = (0..count)
            .map(|_| Challenge::random(inner.challenge_bits(), &mut rng))
            .collect();
        WeakPuf { inner, challenges }
    }

    /// Uses an explicit challenge set.
    ///
    /// # Panics
    ///
    /// Panics if the set is empty or widths disagree with the inner PUF.
    pub fn with_challenges(inner: P, challenges: Vec<Challenge>) -> Self {
        assert!(!challenges.is_empty(), "weak PUF needs challenges");
        for c in &challenges {
            assert_eq!(c.len(), inner.challenge_bits(), "challenge width mismatch");
        }
        WeakPuf { inner, challenges }
    }

    /// The fixed challenge set (public).
    pub fn challenges(&self) -> &[Challenge] {
        &self.challenges
    }

    /// Total key-response width in bits.
    pub fn key_bits(&self) -> usize {
        self.challenges.len() * self.inner.response_bits()
    }

    /// Reads the full key response (one noisy evaluation per fixed
    /// challenge, concatenated).
    ///
    /// # Errors
    ///
    /// Propagates inner PUF errors.
    pub fn read_key_response(&mut self) -> Result<Response, PufError> {
        let mut bits = Vec::with_capacity(self.key_bits());
        for c in &self.challenges {
            bits.extend_from_slice(self.inner.respond(c)?.bits());
        }
        Ok(Response::from_bits(bits))
    }

    /// Majority-voted golden key response over `reads` full readings.
    ///
    /// # Errors
    ///
    /// Propagates inner PUF errors.
    pub fn golden_key_response(&mut self, reads: usize) -> Result<Response, PufError> {
        let readings: Result<Vec<Response>, PufError> =
            (0..reads).map(|_| self.read_key_response()).collect();
        Ok(Response::majority(&readings?))
    }

    /// Access to the wrapped primitive.
    pub fn inner_mut(&mut self) -> &mut P {
        &mut self.inner
    }
}

impl<P: Puf> Puf for WeakPuf<P> {
    /// Challenge = index into the fixed set.
    fn challenge_bits(&self) -> usize {
        usize::BITS as usize - (self.challenges.len() - 1).leading_zeros() as usize
    }

    fn response_bits(&self) -> usize {
        self.inner.response_bits()
    }

    fn kind(&self) -> PufKind {
        PufKind::Weak
    }

    fn respond(&mut self, challenge: &Challenge) -> Result<Response, PufError> {
        let mut idx = 0usize;
        for (i, &bit) in challenge.bits().iter().enumerate() {
            if i >= usize::BITS as usize {
                break;
            }
            idx |= (bit as usize) << i;
        }
        let fixed = self
            .challenges
            .get(idx)
            .ok_or_else(|| {
                PufError::ChallengeOutOfRange(format!("index {idx} of {}", self.challenges.len()))
            })?
            .clone();
        self.inner.respond(&fixed)
    }

    fn set_environment(&mut self, env: Environment) {
        self.inner.set_environment(env);
    }

    fn environment(&self) -> Environment {
        self.inner.environment()
    }

    fn latency_ns(&self) -> f64 {
        self.inner.latency_ns()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::photonic::PhotonicPuf;
    use neuropuls_photonic::process::DieId;

    fn weak(die: u64) -> WeakPuf<PhotonicPuf> {
        WeakPuf::with_derived_challenges(PhotonicPuf::reference(DieId(die), die + 50), 4, 0xABCD)
    }

    #[test]
    fn key_width() {
        let w = weak(1);
        assert_eq!(w.key_bits(), 4 * 64);
        assert_eq!(w.kind(), PufKind::Weak);
    }

    #[test]
    fn key_response_is_mostly_stable() {
        let mut w = weak(2);
        let golden = w.golden_key_response(7).unwrap();
        let reread = w.read_key_response().unwrap();
        assert!(
            golden.fhd(&reread) < 0.12,
            "key FHD {}",
            golden.fhd(&reread)
        );
    }

    #[test]
    fn different_dies_give_different_keys() {
        let mut a = weak(3);
        let mut b = weak(4);
        let fhd = a
            .golden_key_response(5)
            .unwrap()
            .fhd(&b.golden_key_response(5).unwrap());
        assert!(fhd > 0.25, "inter-die key FHD {fhd}");
    }

    #[test]
    fn same_derivation_seed_same_challenge_set() {
        let a = weak(5);
        let b = weak(6);
        assert_eq!(a.challenges(), b.challenges());
    }

    #[test]
    fn respond_indexes_fixed_set() {
        // Five challenges → 3 index bits → indices 5..=7 are invalid.
        let mut w =
            WeakPuf::with_derived_challenges(PhotonicPuf::reference(DieId(7), 57), 5, 0xABCD);
        let r = w
            .respond(&Challenge::from_u64(2, w.challenge_bits()))
            .unwrap();
        assert_eq!(r.len(), 64);
        let beyond = Challenge::from_u64(6, w.challenge_bits());
        assert!(w.respond(&beyond).is_err());
    }

    #[test]
    #[should_panic(expected = "at least one challenge")]
    fn empty_set_rejected() {
        let _ = WeakPuf::with_derived_challenges(PhotonicPuf::reference(DieId(8), 1), 0, 1);
    }
}
