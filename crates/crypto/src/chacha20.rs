//! ChaCha20 stream cipher (RFC 7539 / RFC 8439).
//!
//! Used by the secure NN service (Table I of the paper) to keep the network
//! configuration and the input/output tensors confidential between the
//! external party and the accelerator hardware, so plaintext never reaches
//! the software layer.

use crate::CryptoError;

/// Key length in bytes.
pub const KEY_LEN: usize = 32;
/// Nonce length in bytes.
pub const NONCE_LEN: usize = 12;

const SIGMA: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

fn block(key: &[u8; KEY_LEN], counter: u32, nonce: &[u8; NONCE_LEN]) -> [u8; 64] {
    let mut state = [0u32; 16];
    state[..4].copy_from_slice(&SIGMA);
    for (i, chunk) in key.chunks_exact(4).enumerate() {
        state[4 + i] = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
    }
    state[12] = counter;
    for (i, chunk) in nonce.chunks_exact(4).enumerate() {
        state[13 + i] = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
    }

    let mut working = state;
    for _ in 0..10 {
        // Column rounds.
        quarter_round(&mut working, 0, 4, 8, 12);
        quarter_round(&mut working, 1, 5, 9, 13);
        quarter_round(&mut working, 2, 6, 10, 14);
        quarter_round(&mut working, 3, 7, 11, 15);
        // Diagonal rounds.
        quarter_round(&mut working, 0, 5, 10, 15);
        quarter_round(&mut working, 1, 6, 11, 12);
        quarter_round(&mut working, 2, 7, 8, 13);
        quarter_round(&mut working, 3, 4, 9, 14);
    }

    let mut out = [0u8; 64];
    for i in 0..16 {
        let word = working[i].wrapping_add(state[i]);
        out[4 * i..4 * i + 4].copy_from_slice(&word.to_le_bytes());
    }
    out
}

/// ChaCha20 keystream cipher.
///
/// Encryption and decryption are the same XOR operation.
///
/// # Example
///
/// ```
/// use neuropuls_crypto::chacha20::ChaCha20;
///
/// let key = [7u8; 32];
/// let nonce = [1u8; 12];
/// let mut data = b"network weights".to_vec();
/// ChaCha20::new(&key, &nonce).apply(&mut data);
/// assert_ne!(&data, b"network weights");
/// ChaCha20::new(&key, &nonce).apply(&mut data);
/// assert_eq!(&data, b"network weights");
/// ```
#[derive(Debug, Clone)]
pub struct ChaCha20 {
    key: [u8; KEY_LEN],
    nonce: [u8; NONCE_LEN],
    counter: u32,
    keystream: [u8; 64],
    offset: usize,
}

impl ChaCha20 {
    /// Creates a cipher with block counter 1 (the RFC 8439 AEAD convention,
    /// reserving block 0 for a one-time MAC key if needed).
    pub fn new(key: &[u8; KEY_LEN], nonce: &[u8; NONCE_LEN]) -> Self {
        Self::with_counter(key, nonce, 1)
    }

    /// Creates a cipher starting at an explicit block counter.
    pub fn with_counter(key: &[u8; KEY_LEN], nonce: &[u8; NONCE_LEN], counter: u32) -> Self {
        ChaCha20 {
            key: *key,
            nonce: *nonce,
            counter,
            keystream: [0; 64],
            offset: 64,
        }
    }

    /// Builds a cipher from arbitrary-length slices.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::InvalidLength`] if `key` is not 32 bytes or
    /// `nonce` is not 12 bytes.
    pub fn from_slices(key: &[u8], nonce: &[u8]) -> Result<Self, CryptoError> {
        let key: [u8; KEY_LEN] = key.try_into().map_err(|_| CryptoError::InvalidLength {
            expected: KEY_LEN,
            actual: key.len(),
        })?;
        let nonce: [u8; NONCE_LEN] = nonce.try_into().map_err(|_| CryptoError::InvalidLength {
            expected: NONCE_LEN,
            actual: nonce.len(),
        })?;
        Ok(Self::new(&key, &nonce))
    }

    /// XORs the keystream into `data` in place (encrypts or decrypts).
    pub fn apply(&mut self, data: &mut [u8]) {
        for byte in data.iter_mut() {
            if self.offset == 64 {
                self.keystream = block(&self.key, self.counter, &self.nonce);
                self.counter = self.counter.wrapping_add(1);
                self.offset = 0;
            }
            *byte ^= self.keystream[self.offset];
            self.offset += 1;
        }
    }

    /// Convenience: encrypts `plaintext` into a fresh buffer.
    #[must_use]
    pub fn encrypt(key: &[u8; KEY_LEN], nonce: &[u8; NONCE_LEN], plaintext: &[u8]) -> Vec<u8> {
        let mut out = plaintext.to_vec();
        ChaCha20::new(key, nonce).apply(&mut out);
        out
    }

    /// Convenience: decrypts `ciphertext` into a fresh buffer.
    #[must_use]
    pub fn decrypt(key: &[u8; KEY_LEN], nonce: &[u8; NONCE_LEN], ciphertext: &[u8]) -> Vec<u8> {
        Self::encrypt(key, nonce, ciphertext)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    // RFC 8439 §2.3.2 block function test vector.
    #[test]
    fn rfc8439_block() {
        let key: [u8; 32] = core::array::from_fn(|i| i as u8);
        let nonce = [0, 0, 0, 0x09, 0, 0, 0, 0x4a, 0, 0, 0, 0];
        let out = block(&key, 1, &nonce);
        assert_eq!(
            hex(&out),
            "10f1e7e4d13b5915500fdd1fa32071c4c7d1f4c733c068030422aa9ac3d46c4e\
             d2826446079faa0914c2d705d98b02a2b5129cd1de164eb9cbd083e8a2503c4e"
        );
    }

    // RFC 8439 §2.4.2 encryption test vector.
    #[test]
    fn rfc8439_encrypt() {
        let key: [u8; 32] = core::array::from_fn(|i| i as u8);
        let nonce = [0, 0, 0, 0, 0, 0, 0, 0x4a, 0, 0, 0, 0];
        let plaintext = b"Ladies and Gentlemen of the class of '99: If I could offer you \
                          only one tip for the future, sunscreen would be it.";
        // The RFC plaintext has no double spaces; normalize ours.
        let plaintext: Vec<u8> = String::from_utf8_lossy(plaintext)
            .split_whitespace()
            .collect::<Vec<_>>()
            .join(" ")
            .into_bytes();
        let ciphertext = ChaCha20::encrypt(&key, &nonce, &plaintext);
        assert_eq!(
            hex(&ciphertext),
            "6e2e359a2568f98041ba0728dd0d6981e97e7aec1d4360c20a27afccfd9fae0b\
             f91b65c5524733ab8f593dabcd62b3571639d624e65152ab8f530c359f0861d8\
             07ca0dbf500d6a6156a38e088a22b65e52bc514d16ccf806818ce91ab7793736\
             5af90bbf74a35be6b40b8eedf2785e42874d"
        );
    }

    #[test]
    fn roundtrip_across_block_boundaries() {
        let key = [0xAB; 32];
        let nonce = [0x01; 12];
        let data: Vec<u8> = (0..1000).map(|i| (i % 251) as u8).collect();
        let ct = ChaCha20::encrypt(&key, &nonce, &data);
        assert_eq!(ChaCha20::decrypt(&key, &nonce, &ct), data);
        assert_ne!(ct, data);
    }

    #[test]
    fn incremental_matches_oneshot() {
        let key = [0x42; 32];
        let nonce = [0x24; 12];
        let mut a: Vec<u8> = (0..200u8).collect();
        let b = a.clone();
        let mut cipher = ChaCha20::new(&key, &nonce);
        cipher.apply(&mut a[..77]);
        cipher.apply(&mut a[77..]);
        let oneshot = ChaCha20::encrypt(&key, &nonce, &b);
        assert_eq!(a, oneshot);
    }

    #[test]
    fn from_slices_validates_lengths() {
        assert!(ChaCha20::from_slices(&[0; 32], &[0; 12]).is_ok());
        assert!(ChaCha20::from_slices(&[0; 31], &[0; 12]).is_err());
        assert!(ChaCha20::from_slices(&[0; 32], &[0; 8]).is_err());
    }

    #[test]
    fn different_nonce_different_keystream() {
        let key = [9u8; 32];
        let pt = [0u8; 64];
        let a = ChaCha20::encrypt(&key, &[0; 12], &pt);
        let b = ChaCha20::encrypt(&key, &[1; 12], &pt);
        assert_ne!(a, b);
    }
}
