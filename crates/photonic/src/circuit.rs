//! The passive PUF architecture of Fig. 2: a mesh that "separates the
//! initial light beam in several different paths and scrambles them
//! before the output. No active devices are present."
//!
//! [`ScramblerMesh`] is a layered network of 2×2 directional couplers,
//! process-random phase shifters and (optionally) microring resonators on
//! `channels` parallel waveguides. Light enters on channel 0, is fanned
//! out by the coupler layers, accumulates die-unique relative phases, and
//! is mixed in time by the rings. Every element's parameters are drawn
//! from the die's process variation, so the mesh *is* the physical
//! secret.
//!
//! The simulation is sample-synchronous: each call to [`ScramblerMesh::step`]
//! advances the whole mesh by one bit period.

use crate::complex::Complex64;
use crate::components::{Coupler, PhaseShifter, Waveguide};
use crate::environment::Environment;
use crate::process::DieSampler;
use crate::ring::Microring;

/// Construction parameters of a scrambler mesh.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MeshSpec {
    /// Number of parallel waveguides (output ports). Must be ≥ 2.
    pub channels: usize,
    /// Number of coupler/phase layers.
    pub depth: usize,
    /// Fraction of channel-layer sites that carry a microring (0 = pure
    /// feed-forward interferometer, 1 = ring on every site).
    pub ring_density: f64,
    /// Nominal power cross-coupling of the rings.
    pub ring_kappa2: f64,
    /// Ring round-trip loss in dB.
    pub ring_loss_db: f64,
    /// Inter-layer waveguide length in µm (sets temperature
    /// sensitivity).
    pub segment_length_um: f64,
    /// Waveguide propagation loss in dB/cm.
    pub waveguide_loss_db_cm: f64,
}

impl MeshSpec {
    /// The reference NEUROPULS-like mesh: 8 ports, 6 layers, rings on
    /// half the sites — a microring-array PUF in the spirit of \[12\].
    pub fn reference() -> Self {
        MeshSpec {
            channels: 8,
            depth: 8,
            ring_density: 0.75,
            ring_kappa2: 0.45,
            ring_loss_db: 0.3,
            segment_length_um: 150.0,
            waveguide_loss_db_cm: 2.0,
        }
    }

    /// A shallow mesh without rings — the memory-less ablation used in
    /// the ML-attack experiment (E6).
    pub fn shallow_no_rings() -> Self {
        MeshSpec {
            channels: 4,
            depth: 2,
            ring_density: 0.0,
            ..Self::reference()
        }
    }

    /// Validates the spec.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if self.channels < 2 {
            return Err(format!("channels must be >= 2, got {}", self.channels));
        }
        if self.depth == 0 {
            return Err("depth must be >= 1".to_string());
        }
        if !(0.0..=1.0).contains(&self.ring_density) {
            return Err(format!(
                "ring_density must be in [0,1], got {}",
                self.ring_density
            ));
        }
        if !(self.ring_kappa2 > 0.0 && self.ring_kappa2 < 1.0) {
            return Err(format!(
                "ring_kappa2 must be in (0,1), got {}",
                self.ring_kappa2
            ));
        }
        Ok(())
    }
}

#[derive(Debug, Clone)]
struct Layer {
    /// Couplers pair channels (offset alternates per layer for full
    /// mixing).
    couplers: Vec<Coupler>,
    offset: usize,
    phases: Vec<PhaseShifter>,
    segments: Vec<Waveguide>,
    rings: Vec<Option<Microring>>,
}

/// The passive scrambling mesh (see module docs).
#[derive(Debug, Clone)]
pub struct ScramblerMesh {
    spec: MeshSpec,
    layers: Vec<Layer>,
    scratch: Vec<Complex64>,
}

impl ScramblerMesh {
    /// Builds the mesh for one die.
    ///
    /// # Panics
    ///
    /// Panics if `spec` fails [`MeshSpec::validate`].
    pub fn build(spec: MeshSpec, die: &mut DieSampler) -> Self {
        if let Err(msg) = spec.validate() {
            panic!("invalid mesh spec: {msg}");
        }
        let n = spec.channels;
        let mut layers = Vec::with_capacity(spec.depth);
        for layer_idx in 0..spec.depth {
            let offset = layer_idx % 2;
            let pairs = (n - offset) / 2;
            let couplers = (0..pairs).map(|_| Coupler::sampled_50_50(die)).collect();
            // Layout lengths differ component-to-component (routing is
            // never perfectly balanced), which is what makes temperature
            // act *differentially* on the interference pattern instead of
            // as a cancelling common-mode phase. The mismatch is small —
            // parallel routes in a layer are length-matched by the layout
            // tool to a few µm — so the common-mode phase (which factors
            // out of the interference) dwarfs the differential part, and
            // the ambient excursion degrades the pattern gradually instead
            // of scrambling it within a couple of kelvin.
            let phases = (0..n)
                .map(|_| {
                    let length = die.uniform(20.0, 40.0);
                    PhaseShifter::sampled(length, die)
                })
                .collect();
            let segments = (0..n)
                .map(|_| {
                    let length = spec.segment_length_um * die.uniform(0.97, 1.03);
                    Waveguide::sampled(length, spec.waveguide_loss_db_cm, die)
                })
                .collect();
            let rings = (0..n)
                .map(|_| {
                    // Deterministic per-site choice from the die stream.
                    let u = (die.raw_u64() >> 11) as f64 / (1u64 << 53) as f64;
                    if u < spec.ring_density {
                        let circumference = die.uniform(40.0, 80.0);
                        Some(Microring::sampled(
                            spec.ring_kappa2,
                            spec.ring_loss_db,
                            circumference,
                            die,
                        ))
                    } else {
                        None
                    }
                })
                .collect();
            layers.push(Layer {
                couplers,
                offset,
                phases,
                segments,
                rings,
            });
        }
        ScramblerMesh {
            spec,
            layers,
            scratch: vec![Complex64::ZERO; n],
        }
    }

    /// The construction spec.
    pub fn spec(&self) -> &MeshSpec {
        &self.spec
    }

    /// Number of output ports.
    pub fn ports(&self) -> usize {
        self.spec.channels
    }

    /// Total number of microrings actually instantiated.
    pub fn ring_count(&self) -> usize {
        self.layers
            .iter()
            .map(|l| l.rings.iter().filter(|r| r.is_some()).count())
            .sum()
    }

    /// Clears all resonator memory (start of an interrogation).
    pub fn reset(&mut self) {
        for layer in &mut self.layers {
            for ring in layer.rings.iter_mut().flatten() {
                ring.reset();
            }
        }
    }

    /// Advances the mesh one sample: the input field enters channel 0,
    /// every other input port is dark. Returns the field at every output
    /// port.
    pub fn step(&mut self, input: Complex64, env: &Environment) -> Vec<Complex64> {
        let n = self.spec.channels;
        let mut fields = vec![Complex64::ZERO; n];
        fields[0] = input;

        for layer in &mut self.layers {
            // Coupler sub-layer.
            for (pair_idx, coupler) in layer.couplers.iter().enumerate() {
                let a = layer.offset + 2 * pair_idx;
                let b = a + 1;
                let (oa, ob) = coupler.transfer(fields[a], fields[b]);
                fields[a] = oa;
                fields[b] = ob;
            }
            // Phase + segment + optional ring per channel.
            for ch in 0..n {
                let mut f = layer.phases[ch].transfer(fields[ch], env);
                f = layer.segments[ch].transfer(f, env);
                if let Some(ring) = layer.rings[ch].as_mut() {
                    f = ring.step(f, env);
                }
                self.scratch[ch] = f;
            }
            fields.copy_from_slice(&self.scratch);
        }
        fields
    }

    /// Propagates a full modulated waveform, returning per-port output
    /// waveforms (`ports × samples`). The mesh is reset first, and
    /// `flush` extra dark samples are appended so resonator tails are
    /// captured.
    pub fn propagate(
        &mut self,
        waveform: &[Complex64],
        flush: usize,
        env: &Environment,
    ) -> Vec<Vec<Complex64>> {
        self.reset();
        let total = waveform.len() + flush;
        let mut outputs = vec![Vec::with_capacity(total); self.spec.channels];
        for idx in 0..total {
            let sample = waveform.get(idx).copied().unwrap_or(Complex64::ZERO);
            let fields = self.step(sample, env);
            for (port, field) in fields.into_iter().enumerate() {
                outputs[port].push(field);
            }
        }
        outputs
    }

    /// Clones the mesh with every ring detuned to a laser wavelength
    /// offset of `delta_lambda_nm` (see [`crate::spectrum`]); each
    /// ring's phase shift scales with its own circumference.
    pub fn clone_detuned(&self, delta_lambda_nm: f64) -> Self {
        let mut clone = self.clone();
        for layer in &mut clone.layers {
            for ring in layer.rings.iter_mut().flatten() {
                ring.phi += crate::spectrum::detuning_phase(ring.circumference_um, delta_lambda_nm);
            }
        }
        clone
    }

    /// Ages the mesh by `years`: every phase-carrying element picks up
    /// a random-walk drift with σ = `sigma_rad_per_sqrt_year`·√years
    /// (oxide charge trapping and slow stress relaxation — §V asks the
    /// simulator to cover "the effects of aging"). Couplers and losses
    /// age much more slowly and are left untouched.
    pub fn apply_aging<R: neuropuls_rt::Rng>(
        &mut self,
        years: f64,
        sigma_rad_per_sqrt_year: f64,
        rng: &mut R,
    ) {
        use crate::laser::gaussian;
        let sigma = sigma_rad_per_sqrt_year * years.max(0.0).sqrt();
        for layer in &mut self.layers {
            for ps in &mut layer.phases {
                ps.phase += sigma * gaussian(rng);
            }
            for wg in &mut layer.segments {
                wg.phase += sigma * gaussian(rng);
            }
            for ring in layer.rings.iter_mut().flatten() {
                ring.phi += sigma * gaussian(rng);
            }
        }
    }

    /// Per-port total output energy for a waveform (convenience for
    /// tests and enrollment).
    pub fn port_energies(
        &mut self,
        waveform: &[Complex64],
        flush: usize,
        env: &Environment,
    ) -> Vec<f64> {
        self.propagate(waveform, flush, env)
            .into_iter()
            .map(|w| w.iter().map(|s| s.norm_sqr()).sum())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::process::{DieId, ProcessVariation};

    fn mesh(die_id: u64) -> ScramblerMesh {
        let mut die = DieSampler::new(DieId(die_id), ProcessVariation::typical_soi());
        ScramblerMesh::build(MeshSpec::reference(), &mut die)
    }

    fn impulse() -> Vec<Complex64> {
        let mut w = vec![Complex64::ZERO; 16];
        w[0] = Complex64::ONE;
        w
    }

    #[test]
    fn mesh_is_passive() {
        let mut m = mesh(1);
        let energies = m.port_energies(&impulse(), 64, &Environment::nominal());
        let total: f64 = energies.iter().sum();
        assert!(total <= 1.0 + 1e-9, "output energy {total} exceeds input");
        assert!(total > 0.3, "output energy {total} suspiciously low");
    }

    #[test]
    fn light_reaches_every_port() {
        let mut m = mesh(2);
        let energies = m.port_energies(&impulse(), 64, &Environment::nominal());
        for (port, e) in energies.iter().enumerate() {
            assert!(*e > 1e-6, "port {port} is dark ({e})");
        }
    }

    #[test]
    fn same_die_is_reproducible() {
        let mut a = mesh(3);
        let mut b = mesh(3);
        let ea = a.port_energies(&impulse(), 32, &Environment::nominal());
        let eb = b.port_energies(&impulse(), 32, &Environment::nominal());
        assert_eq!(ea, eb);
    }

    #[test]
    fn different_dies_scramble_differently() {
        let mut a = mesh(4);
        let mut b = mesh(5);
        let ea = a.port_energies(&impulse(), 32, &Environment::nominal());
        let eb = b.port_energies(&impulse(), 32, &Environment::nominal());
        let diff: f64 = ea.iter().zip(&eb).map(|(x, y)| (x - y).abs()).sum::<f64>();
        assert!(diff > 1e-3, "dies too similar: {diff}");
    }

    #[test]
    fn rings_create_temporal_memory() {
        // Two waveforms that agree on the *last* bit but differ earlier
        // must give different output tails — past bits interact with
        // present ones (§II-A).
        let mut m = mesh(6);
        let env = Environment::nominal();
        let w1: Vec<Complex64> = [1.0, 0.0, 1.0, 1.0]
            .iter()
            .map(|&v| Complex64::new(v, 0.0))
            .collect();
        let w2: Vec<Complex64> = [0.0, 1.0, 0.0, 1.0]
            .iter()
            .map(|&v| Complex64::new(v, 0.0))
            .collect();
        let o1 = m.propagate(&w1, 4, &env);
        let o2 = m.propagate(&w2, 4, &env);
        // Compare the final sample (bit 3 plus tail) on port 0.
        let last1 = o1[0].last().unwrap().norm_sqr();
        let last2 = o2[0].last().unwrap().norm_sqr();
        assert!(
            (last1 - last2).abs() > 1e-12,
            "mesh output shows no memory of earlier bits"
        );
    }

    #[test]
    fn no_ring_mesh_has_no_memory_tail() {
        let mut die = DieSampler::new(DieId(7), ProcessVariation::typical_soi());
        let mut m = ScramblerMesh::build(MeshSpec::shallow_no_rings(), &mut die);
        assert_eq!(m.ring_count(), 0);
        let outputs = m.propagate(&impulse(), 8, &Environment::nominal());
        // After the impulse has passed, all ports must be dark.
        for port in &outputs {
            for sample in &port[1..] {
                assert!(
                    sample.norm_sqr() < 1e-20,
                    "feed-forward mesh leaked energy in time"
                );
            }
        }
    }

    #[test]
    fn temperature_changes_the_output_pattern() {
        let mut m = mesh(8);
        let cold = m.port_energies(&impulse(), 32, &Environment::at_temperature(25.0));
        let hot = m.port_energies(&impulse(), 32, &Environment::at_temperature(45.0));
        let diff: f64 = cold.iter().zip(&hot).map(|(x, y)| (x - y).abs()).sum();
        assert!(diff > 1e-6, "temperature had no effect");
    }

    #[test]
    #[should_panic(expected = "invalid mesh spec")]
    fn build_rejects_invalid_spec() {
        let mut die = DieSampler::new(DieId(9), ProcessVariation::typical_soi());
        let spec = MeshSpec {
            channels: 1,
            ..MeshSpec::reference()
        };
        let _ = ScramblerMesh::build(spec, &mut die);
    }

    #[test]
    fn ring_density_controls_ring_count() {
        let mut die_a = DieSampler::new(DieId(10), ProcessVariation::typical_soi());
        let dense = ScramblerMesh::build(
            MeshSpec {
                ring_density: 1.0,
                ..MeshSpec::reference()
            },
            &mut die_a,
        );
        assert_eq!(dense.ring_count(), 8 * 8);
        let mut die_b = DieSampler::new(DieId(10), ProcessVariation::typical_soi());
        let sparse = ScramblerMesh::build(
            MeshSpec {
                ring_density: 0.0,
                ..MeshSpec::reference()
            },
            &mut die_b,
        );
        assert_eq!(sparse.ring_count(), 0);
    }
}
