//! Photonic true random number generator.
//!
//! The NEUROPULS platform's second security primitive alongside the PUF:
//! with the laser held at constant power, the photocurrent fluctuates
//! with fundamentally random shot noise; the ADC's least-significant
//! bits sample that noise. The raw stream is debiased (von Neumann) and
//! conditioned (SHA-256), with SP 800-90B-style health tests — the
//! repetition count test and the adaptive proportion test — watching the
//! raw source continuously, so a failed laser or a stuck ADC is detected
//! before biased output escapes.

use neuropuls_crypto::sha256::Sha256;
use neuropuls_photonic::complex::Complex64;
use neuropuls_photonic::detector::ReceiveChain;
use neuropuls_photonic::Environment;
use neuropuls_rt::rngs::StdRng;
use neuropuls_rt::SeedableRng;
use std::error::Error;
use std::fmt;

/// Health-test failure: the entropy source looks broken.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TrngError {
    /// The repetition count test fired: too many identical consecutive
    /// raw samples (stuck source).
    RepetitionCount {
        /// Observed run length.
        run: usize,
        /// Allowed cutoff.
        cutoff: usize,
    },
    /// The adaptive proportion test fired: one value dominates the raw
    /// window (heavily biased source).
    AdaptiveProportion {
        /// Count of the dominant value in the window.
        count: usize,
        /// Allowed cutoff.
        cutoff: usize,
    },
}

impl fmt::Display for TrngError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrngError::RepetitionCount { run, cutoff } => {
                write!(
                    f,
                    "repetition count test failed: run of {run} exceeds {cutoff}"
                )
            }
            TrngError::AdaptiveProportion { count, cutoff } => {
                write!(
                    f,
                    "adaptive proportion test failed: {count} of window exceeds {cutoff}"
                )
            }
        }
    }
}

impl Error for TrngError {}

/// SP 800-90B-style continuous health tests over the raw bit stream.
#[derive(Debug, Clone)]
pub struct HealthMonitor {
    rct_cutoff: usize,
    apt_window: usize,
    apt_cutoff: usize,
    last: Option<u8>,
    run: usize,
    window: Vec<u8>,
}

impl HealthMonitor {
    /// Cutoffs for a source with ≥ 0.4 bits of min-entropy per raw bit
    /// and a 2⁻²⁰ false-positive target.
    pub fn new() -> Self {
        HealthMonitor {
            rct_cutoff: 51,
            apt_window: 512,
            apt_cutoff: 410,
            last: None,
            run: 0,
            window: Vec::with_capacity(512),
        }
    }

    /// Feeds one raw bit.
    ///
    /// # Errors
    ///
    /// Returns the failed test when either cutoff is exceeded.
    pub fn observe(&mut self, bit: u8) -> Result<(), TrngError> {
        // Repetition count test.
        if self.last == Some(bit) {
            self.run += 1;
            if self.run >= self.rct_cutoff {
                return Err(TrngError::RepetitionCount {
                    run: self.run,
                    cutoff: self.rct_cutoff,
                });
            }
        } else {
            self.last = Some(bit);
            self.run = 1;
        }
        // Adaptive proportion test over tumbling windows.
        self.window.push(bit);
        if self.window.len() == self.apt_window {
            let ones = self.window.iter().filter(|&&b| b == 1).count();
            let dominant = ones.max(self.apt_window - ones);
            self.window.clear();
            if dominant >= self.apt_cutoff {
                return Err(TrngError::AdaptiveProportion {
                    count: dominant,
                    cutoff: self.apt_cutoff,
                });
            }
        }
        Ok(())
    }
}

impl Default for HealthMonitor {
    fn default() -> Self {
        Self::new()
    }
}

/// The photonic TRNG.
#[derive(Debug)]
pub struct PhotonicTrng {
    chain: ReceiveChain,
    env: Environment,
    /// Constant illumination level (field amplitude).
    bias_field: f64,
    health: HealthMonitor,
    rng: StdRng,
}

impl PhotonicTrng {
    /// Creates a TRNG instance; `noise_seed` seeds the simulated
    /// physical noise processes.
    pub fn new(noise_seed: u64) -> Self {
        PhotonicTrng {
            chain: ReceiveChain::new(),
            env: Environment::nominal(),
            bias_field: 0.4,
            health: HealthMonitor::new(),
            rng: StdRng::seed_from_u64(noise_seed),
        }
    }

    /// A broken source (laser off): every sample sits at the dark level,
    /// so the health tests must fire. Test/demo constructor.
    pub fn broken(noise_seed: u64) -> Self {
        let mut trng = Self::new(noise_seed);
        trng.bias_field = 0.0;
        let mut quiet = Environment::nominal();
        quiet.rin = 0.0;
        trng.env = quiet;
        // Silence the electronic noise too: a truly stuck front-end.
        trng.chain.pd.shot_noise = 0.0;
        trng.chain.pd.thermal_noise_ua = 0.0;
        trng.chain.tia.input_noise_ua = 0.0;
        trng
    }

    /// Samples one raw bit: the LSB of the ADC code under constant
    /// illumination.
    fn raw_bit(&mut self) -> u8 {
        let field = Complex64::new(self.bias_field, 0.0);
        (self.chain.sample(field, &self.env, &mut self.rng) & 1) as u8
    }

    /// Collects `n` raw (unconditioned) bits, running health tests.
    ///
    /// # Errors
    ///
    /// Propagates health-test failures.
    pub fn raw_bits(&mut self, n: usize) -> Result<Vec<u8>, TrngError> {
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            let bit = self.raw_bit();
            self.health.observe(bit)?;
            out.push(bit);
        }
        Ok(out)
    }

    /// Von Neumann debiasing: consumes raw bit pairs, emits one bit per
    /// unequal pair.
    fn debiased_bits(&mut self, n: usize) -> Result<Vec<u8>, TrngError> {
        let mut out = Vec::with_capacity(n);
        // Cap the work so a heavily biased (but not stuck) source cannot
        // spin forever; the health tests normally fire first.
        let mut budget = n * 64 + 4096;
        while out.len() < n && budget > 0 {
            budget -= 2;
            let a = self.raw_bit();
            self.health.observe(a)?;
            let b = self.raw_bit();
            self.health.observe(b)?;
            if a != b {
                out.push(a);
            }
        }
        Ok(out)
    }

    /// Generates `len` conditioned output bytes: debiased bits are
    /// compressed 2:1 through SHA-256.
    ///
    /// # Errors
    ///
    /// Propagates health-test failures.
    pub fn generate(&mut self, len: usize) -> Result<Vec<u8>, TrngError> {
        let mut out = Vec::with_capacity(len);
        while out.len() < len {
            // 512 debiased bits -> 64 input bytes -> 32 output bytes.
            let bits = self.debiased_bits(512)?;
            let mut packed = vec![0u8; bits.len().div_ceil(8)];
            for (i, &b) in bits.iter().enumerate() {
                packed[i / 8] |= b << (i % 8);
            }
            let digest = Sha256::digest(&packed);
            out.extend_from_slice(&digest[..digest.len().min(len - out.len())]);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neuropuls_metrics::nist;

    #[test]
    fn output_bytes_have_requested_length() {
        let mut trng = PhotonicTrng::new(1);
        let out = trng.generate(100).unwrap();
        assert_eq!(out.len(), 100);
    }

    #[test]
    fn conditioned_output_passes_nist() {
        let mut trng = PhotonicTrng::new(2);
        let bytes = trng.generate(512).unwrap();
        let bits: Vec<u8> = bytes
            .iter()
            .flat_map(|b| (0..8).map(move |i| (b >> i) & 1))
            .collect();
        let rate = nist::pass_rate(&nist::battery(&bits));
        assert!(rate >= 0.8, "TRNG output pass rate {rate}");
    }

    /// Conditioner stitching audit: each 32-byte output block is the
    /// SHA-256 of a *disjoint* fresh 512-bit debiased block, so no two
    /// blocks of one stream (or across restarts of the entropy loop)
    /// may collide — a repeated block would mean the stitching reused
    /// input entropy.
    #[test]
    fn conditioner_blocks_are_distinct() {
        let mut trng = PhotonicTrng::new(0xB10C);
        let out = trng.generate(32 * 24).unwrap();
        let blocks: Vec<&[u8]> = out.chunks(32).collect();
        for i in 0..blocks.len() {
            for j in i + 1..blocks.len() {
                assert_ne!(
                    blocks[i], blocks[j],
                    "conditioner blocks {i} and {j} collide"
                );
            }
        }
    }

    #[test]
    fn different_seeds_different_streams() {
        let a = PhotonicTrng::new(3).generate(64).unwrap();
        let b = PhotonicTrng::new(4).generate(64).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn raw_bits_are_roughly_balanced_after_debias_stage() {
        let mut trng = PhotonicTrng::new(5);
        let raw = trng.raw_bits(4096).unwrap();
        let ones = raw.iter().filter(|&&b| b == 1).count() as f64 / raw.len() as f64;
        // Raw LSBs can carry bias; they must at least not be degenerate.
        assert!(ones > 0.2 && ones < 0.8, "raw bias {ones}");
    }

    #[test]
    fn broken_source_trips_health_tests() {
        let mut trng = PhotonicTrng::broken(6);
        let result = trng.generate(32);
        assert!(result.is_err(), "stuck source must fail health tests");
    }

    #[test]
    fn health_monitor_rct_on_stuck_stream() {
        let mut monitor = HealthMonitor::new();
        let mut tripped = None;
        for _ in 0..100 {
            if let Err(e) = monitor.observe(1) {
                tripped = Some(e);
                break;
            }
        }
        assert!(matches!(tripped, Some(TrngError::RepetitionCount { .. })));
    }

    #[test]
    fn health_monitor_apt_on_biased_stream() {
        let mut monitor = HealthMonitor::new();
        let mut tripped = None;
        // 90% ones — never 51 in a row, but dominates the APT window.
        for i in 0..2000 {
            let bit = u8::from(i % 10 != 0);
            if let Err(e) = monitor.observe(bit) {
                tripped = Some(e);
                break;
            }
        }
        assert!(matches!(
            tripped,
            Some(TrngError::AdaptiveProportion { .. })
        ));
    }

    #[test]
    fn health_monitor_passes_alternating_stream() {
        let mut monitor = HealthMonitor::new();
        for i in 0..5000 {
            monitor.observe((i % 2) as u8).unwrap();
        }
    }
}
