//! E15 — §V "effects of aging": photonic PUF reliability over deployed
//! years, with and without periodic re-enrollment, across drift rates.

use crate::{Rendered, Scale};
use neuropuls_photonic::process::DieId;
use neuropuls_puf::bits::Challenge;
use neuropuls_puf::photonic::PhotonicPuf;
use neuropuls_puf::traits::Puf;
use neuropuls_rt::rngs::StdRng;
use neuropuls_rt::SeedableRng;

/// One row of the aging sweep.
#[derive(Debug, Clone, Copy)]
pub struct Row {
    /// Deployed years.
    pub years: f64,
    /// Reliability against the day-0 enrollment.
    pub against_day0: f64,
    /// Reliability against a yearly re-enrollment.
    pub against_reenrolled: f64,
}

/// Runs the aging sweep at the default drift rate over a die
/// population; rows average across dies.
pub fn run(scale: Scale) -> (Rendered, Vec<Row>) {
    let years: Vec<f64> = scale.pick(vec![1.0, 5.0, 15.0], vec![1.0, 2.0, 5.0, 10.0, 15.0, 25.0]);
    let reads = scale.pick(5, 25);
    let dies = scale.pick(3, 8);
    let mut rng = StdRng::seed_from_u64(0xE15);
    let challenge = Challenge::random(64, &mut rng);

    // Each die's year walk is inherently serial (aging accumulates),
    // but dies are independent: every die derives its identity, noise
    // and drift from its own index, so the population fans out on the
    // pool with byte-identical output.
    let horizon = years.last().copied().unwrap_or(0.0) as usize;
    let per_die: Vec<Vec<(f64, f64)>> = neuropuls_rt::pool::par_map((0..dies).collect(), |d| {
        let mut device = PhotonicPuf::reference(DieId(0xE1500 + d as u64), 1 + d as u64);
        let day0 = device.respond_golden(&challenge, 9).expect("eval");
        let mut last_enrollment = day0.clone();
        let mut samples = Vec::new();
        for year in 1..=horizon {
            device.age(1.0);
            if years.contains(&(year as f64)) {
                let mut rel0 = 0.0;
                let mut rel_re = 0.0;
                for _ in 0..reads {
                    let reading = device.respond(&challenge).expect("eval");
                    rel0 += 1.0 - day0.fhd(&reading);
                    rel_re += 1.0 - last_enrollment.fhd(&reading);
                }
                samples.push((rel0 / reads as f64, rel_re / reads as f64));
            }
            // Yearly maintenance.
            last_enrollment = device.respond_golden(&challenge, 9).expect("eval");
        }
        samples
    });

    let sampled_years: Vec<f64> = years
        .iter()
        .copied()
        .filter(|&y| y <= horizon as f64)
        .collect();
    let rows: Vec<Row> = sampled_years
        .iter()
        .enumerate()
        .map(|(i, &year)| Row {
            years: year,
            against_day0: per_die.iter().map(|s| s[i].0).sum::<f64>() / dies as f64,
            against_reenrolled: per_die.iter().map(|s| s[i].1).sum::<f64>() / dies as f64,
        })
        .collect();

    let mut out = Rendered::new(format!(
        "E15 (§V) — aging drift and re-enrollment, {dies} dies"
    ));
    out.push(format!(
        "{:>8} {:>16} {:>20}",
        "years", "vs day-0 golden", "vs re-enrollment"
    ));
    for r in &rows {
        out.push(format!(
            "{:>8.0} {:>16.4} {:>20.4}",
            r.years, r.against_day0, r.against_reenrolled
        ));
    }
    out.push("re-enrollment (or helper-data refresh) absorbs the random-walk drift".to_string());
    (out, rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_aging_sweep() {
        let (_, rows) = run(Scale::Smoke);
        // Day-0 reliability decays with age...
        assert!(rows.last().unwrap().against_day0 <= rows[0].against_day0 + 0.01);
        // ...while the re-enrolled reference stays high.
        for r in &rows {
            assert!(
                r.against_reenrolled >= r.against_day0 - 0.02,
                "re-enrollment should not be worse: {r:?}"
            );
            assert!(r.against_reenrolled > 0.93, "{r:?}");
        }
    }
}
