//! The analog photonic inference engine.
//!
//! Weights live in phase-change-material (PCM) cells on MZI crossbars
//! (the NEUROPULS platform of \[11\]): programming quantizes each weight to
//! a finite number of transmission levels, every multiply-accumulate
//! picks up multiplicative analog noise, and the PCM levels drift slowly
//! after programming. The engine models those three effects and accounts
//! latency and energy per inference for the system-level experiments.

use crate::config::{ConfigCodecError, NetworkConfig};
use neuropuls_photonic::laser::gaussian;
use neuropuls_rt::rng::SplitMix64;
use neuropuls_rt::rngs::{SmallRng, StdRng};
use neuropuls_rt::{Rng, SeedableRng};

/// Analog non-idealities of the crossbar.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnalogModel {
    /// Bits of weight quantization (PCM programming levels = 2^bits).
    pub weight_bits: u8,
    /// Relative multiplicative noise σ per MAC.
    pub mac_noise: f64,
    /// Relative PCM drift per programmed hour (applied via
    /// [`PhotonicEngine::age`]).
    pub drift_per_hour: f64,
    /// Energy per MAC in picojoules.
    pub energy_per_mac_pj: f64,
    /// Latency per layer in nanoseconds (optical transit + conversion).
    pub layer_latency_ns: f64,
}

impl AnalogModel {
    /// The reference platform model.
    pub fn reference() -> Self {
        AnalogModel {
            weight_bits: 6,
            mac_noise: 5e-3,
            drift_per_hour: 2e-3,
            energy_per_mac_pj: 0.05,
            layer_latency_ns: 4.0,
        }
    }

    /// An ideal digital engine (for accuracy-loss ablations).
    pub fn ideal() -> Self {
        AnalogModel {
            weight_bits: 32,
            mac_noise: 0.0,
            drift_per_hour: 0.0,
            energy_per_mac_pj: 1.0,
            layer_latency_ns: 100.0,
        }
    }
}

/// Minimum usable weight bit-width.
///
/// The quantizer maps weights onto a symmetric grid with
/// `2^bits / 2 - 1` positive levels; below two bits that expression is
/// zero (grid collapses, division by zero) or negative, so
/// [`PhotonicEngine::load`] rejects such models instead of programming
/// NaN/garbage into the PCM cells.
pub const MIN_WEIGHT_BITS: u8 = 2;

/// Errors from loading or running the engine.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// No network has been loaded.
    NotLoaded,
    /// The input width disagrees with the loaded network.
    InputWidth {
        /// Expected width.
        expected: usize,
        /// Supplied width.
        actual: usize,
    },
    /// The configuration failed validation.
    BadConfig(ConfigCodecError),
    /// The analog model's weight bit-width is below
    /// [`MIN_WEIGHT_BITS`], which would degenerate the quantizer grid.
    BadBitWidth(u8),
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::NotLoaded => write!(f, "no network loaded"),
            EngineError::InputWidth { expected, actual } => {
                write!(f, "input width mismatch: expected {expected}, got {actual}")
            }
            EngineError::BadConfig(e) => write!(f, "bad network config: {e}"),
            EngineError::BadBitWidth(bits) => {
                write!(
                    f,
                    "weight_bits {bits} below the {MIN_WEIGHT_BITS}-bit quantizer minimum"
                )
            }
        }
    }
}

impl std::error::Error for EngineError {}

impl From<ConfigCodecError> for EngineError {
    fn from(e: ConfigCodecError) -> Self {
        EngineError::BadConfig(e)
    }
}

/// Cumulative execution statistics.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EngineStats {
    /// Inferences executed since load.
    pub inferences: u64,
    /// Total MAC operations.
    pub macs: u64,
    /// Total energy in picojoules.
    pub energy_pj: f64,
    /// Total busy time in nanoseconds.
    pub busy_ns: f64,
    /// Gaussian noise samples consumed by MACs.
    pub noise_draws: u64,
}

/// The photonic inference engine.
#[derive(Debug, Clone)]
pub struct PhotonicEngine {
    model: AnalogModel,
    /// Programmed (quantized) weights, one row-major matrix per layer.
    programmed: Vec<Vec<f64>>,
    config: Option<NetworkConfig>,
    drift_factor: f64,
    stats: EngineStats,
    rng: StdRng,
    noise_seed: u64,
    /// Batched calls served since construction; folded into the
    /// per-item noise seeds so successive batches draw fresh streams.
    batch_epoch: u64,
}

impl PhotonicEngine {
    /// Creates an engine with the given analog model.
    pub fn new(model: AnalogModel, noise_seed: u64) -> Self {
        PhotonicEngine {
            model,
            programmed: Vec::new(),
            config: None,
            drift_factor: 1.0,
            stats: EngineStats::default(),
            rng: StdRng::seed_from_u64(noise_seed),
            noise_seed,
            batch_epoch: 0,
        }
    }

    /// Reference-model engine.
    pub fn reference(noise_seed: u64) -> Self {
        Self::new(AnalogModel::reference(), noise_seed)
    }

    /// The analog model.
    pub fn model(&self) -> &AnalogModel {
        &self.model
    }

    /// Whether a network is loaded.
    pub fn is_loaded(&self) -> bool {
        self.config.is_some()
    }

    /// Execution statistics since the last load.
    pub fn stats(&self) -> EngineStats {
        self.stats
    }

    /// Current multiplicative PCM drift factor (1.0 when fresh).
    pub fn drift_factor(&self) -> f64 {
        self.drift_factor
    }

    /// Number of batched-inference calls served so far.
    pub fn batch_epoch(&self) -> u64 {
        self.batch_epoch
    }

    /// Programs a validated network into the PCM cells (quantizing
    /// weights).
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::BadConfig`] if the configuration fails
    /// validation, or [`EngineError::BadBitWidth`] if the analog model
    /// quantizes below [`MIN_WEIGHT_BITS`] (the symmetric level grid
    /// degenerates: `2^1 / 2 - 1 = 0` divides by zero and
    /// `2^0 / 2 - 1 < 0` flips every weight's sign).
    pub fn load(&mut self, config: NetworkConfig) -> Result<(), EngineError> {
        if self.model.weight_bits < MIN_WEIGHT_BITS {
            return Err(EngineError::BadBitWidth(self.model.weight_bits));
        }
        config.validate()?;
        let levels = (1u64 << self.model.weight_bits.min(63)) as f64;
        self.programmed = config
            .layers
            .iter()
            .map(|layer| {
                let max_abs = layer
                    .weights
                    .iter()
                    .fold(0f32, |m, w| m.max(w.abs()))
                    .max(f32::MIN_POSITIVE) as f64;
                layer
                    .weights
                    .iter()
                    .map(|&w| {
                        // Quantize to the PCM level grid over [-max, max].
                        let normalized = w as f64 / max_abs;
                        let level = (normalized * (levels / 2.0 - 1.0)).round();
                        level / (levels / 2.0 - 1.0) * max_abs
                    })
                    .collect()
            })
            .collect();
        self.config = Some(config);
        self.drift_factor = 1.0;
        self.stats = EngineStats::default();
        Ok(())
    }

    /// Unloads the network and clears the PCM cells (the hardware
    /// equivalent of zeroizing key material): programmed weights, the
    /// configuration, the accumulated drift factor and the execution
    /// statistics are all reset so nothing about the evicted workload
    /// is observable afterwards.
    pub fn unload(&mut self) {
        self.programmed.clear();
        self.config = None;
        self.drift_factor = 1.0;
        self.stats = EngineStats::default();
    }

    /// Ages the PCM cells by `hours` of drift.
    pub fn age(&mut self, hours: f64) {
        self.drift_factor *= (1.0 - self.model.drift_per_hour).powf(hours.max(0.0));
    }

    /// Runs one inference.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::NotLoaded`] or
    /// [`EngineError::InputWidth`].
    pub fn infer(&mut self, input: &[f64]) -> Result<Vec<f64>, EngineError> {
        let config = self.config.as_ref().ok_or(EngineError::NotLoaded)?;
        if input.len() != config.input_width() {
            return Err(EngineError::InputWidth {
                expected: config.input_width(),
                actual: input.len(),
            });
        }
        let noisy = self.model.mac_noise != 0.0;
        let mut activations: Vec<f64> = input.to_vec();
        let mut macs = 0u64;
        for (layer, weights) in config.layers.iter().zip(self.programmed.iter()) {
            let mut next = Vec::with_capacity(layer.outputs);
            for o in 0..layer.outputs {
                let mut acc = layer.biases[o] as f64;
                for (i, &a) in activations.iter().enumerate() {
                    let w = weights[o * layer.inputs + i] * self.drift_factor;
                    if noisy {
                        // `w * a * noise` keeps the historical
                        // evaluation order so the noisy output stream
                        // is unchanged by the noiseless fast path.
                        let noise = 1.0 + self.model.mac_noise * gaussian(&mut self.rng);
                        acc += w * a * noise;
                    } else {
                        acc += w * a;
                    }
                    macs += 1;
                }
                next.push(layer.activation.apply(acc));
            }
            activations = next;
        }
        self.stats.inferences += 1;
        self.stats.macs += macs;
        if noisy {
            self.stats.noise_draws += macs;
        }
        self.stats.energy_pj += macs as f64 * self.model.energy_per_mac_pj;
        self.stats.busy_ns += config.layers.len() as f64 * self.model.layer_latency_ns;
        Ok(activations)
    }

    /// The noise seed for item `index` of the **next** batch call.
    ///
    /// Batched noise is re-derived per item rather than drawn from the
    /// engine's sequential stream: item `i` of batch call `e` (the
    /// engine's [`batch_epoch`](Self::batch_epoch) at call time) seeds
    /// its own generator from `(noise_seed, e, i)` via two SplitMix64
    /// stretches. Re-derivation makes the fan-out order irrelevant, so
    /// batched output is byte-identical at any `NEUROPULS_THREADS`.
    pub fn batch_item_seed(&self, index: usize) -> u64 {
        derive_item_seed(self.noise_seed, self.batch_epoch, index as u64)
    }

    /// Runs one inference with an explicit noise seed, using the
    /// batched noise rule (fast per-item generator, polar Gaussian).
    ///
    /// This is the sequential reference for [`Self::infer_batch`]:
    /// `infer_batch(&inputs)[i]` equals
    /// `infer_seeded(&inputs[i], seed_i)` where `seed_i` was read from
    /// [`Self::batch_item_seed`] before the batch call. Does not
    /// advance the batch epoch or the engine's sequential noise
    /// stream.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::NotLoaded`] or
    /// [`EngineError::InputWidth`].
    pub fn infer_seeded(
        &mut self,
        input: &[f64],
        noise_seed: u64,
    ) -> Result<Vec<f64>, EngineError> {
        let config = self.config.as_ref().ok_or(EngineError::NotLoaded)?;
        if input.len() != config.input_width() {
            return Err(EngineError::InputWidth {
                expected: config.input_width(),
                actual: input.len(),
            });
        }
        let layers = config.layers.len();
        let scaled = self.scaled_weights();
        let noisy = self.model.mac_noise != 0.0;
        let (out, macs) = forward_fast(config, &scaled, self.model.mac_noise, input, noise_seed);
        self.stats.inferences += 1;
        self.stats.macs += macs;
        if noisy {
            self.stats.noise_draws += macs;
        }
        self.stats.energy_pj += macs as f64 * self.model.energy_per_mac_pj;
        self.stats.busy_ns += layers as f64 * self.model.layer_latency_ns;
        Ok(out)
    }

    /// Runs a batch of inferences, amortizing per-layer work.
    ///
    /// The drift-scaled weight matrices are hoisted once per layer
    /// (instead of one multiply per MAC), noise sampling is skipped
    /// entirely when `mac_noise == 0`, and the items fan out over
    /// [`neuropuls_rt::pool`] with per-item noise re-derivation (see
    /// [`Self::batch_item_seed`]) so the output is byte-identical at
    /// any `NEUROPULS_THREADS` setting.
    ///
    /// Latency is accounted with the wave-pipelined mesh model: a
    /// batch of `n` through `L` layers occupies the engine for
    /// `(L + n - 1)` layer slots, not `L * n`.
    ///
    /// An empty batch returns `Ok(vec![])` without consuming an epoch.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::NotLoaded`], or
    /// [`EngineError::InputWidth`] for the first item whose width
    /// disagrees with the loaded network (no inference runs and no
    /// noise stream is consumed in that case).
    pub fn infer_batch(&mut self, inputs: &[Vec<f64>]) -> Result<Vec<Vec<f64>>, EngineError> {
        let config = self.config.as_ref().ok_or(EngineError::NotLoaded)?;
        for input in inputs {
            if input.len() != config.input_width() {
                return Err(EngineError::InputWidth {
                    expected: config.input_width(),
                    actual: input.len(),
                });
            }
        }
        if inputs.is_empty() {
            return Ok(Vec::new());
        }
        let layers = config.layers.len() as u64;
        let scaled = self.scaled_weights();
        let mac_noise = self.model.mac_noise;
        let seeds: Vec<u64> = (0..inputs.len()).map(|i| self.batch_item_seed(i)).collect();
        let outputs: Vec<(Vec<f64>, u64)> =
            neuropuls_rt::pool::par_map((0..inputs.len()).collect::<Vec<usize>>(), |i| {
                forward_fast(config, &scaled, mac_noise, &inputs[i], seeds[i])
            });
        self.batch_epoch += 1;
        let n = outputs.len() as u64;
        let macs: u64 = outputs.iter().map(|(_, m)| m).sum();
        self.stats.inferences += n;
        self.stats.macs += macs;
        if mac_noise != 0.0 {
            self.stats.noise_draws += macs;
        }
        self.stats.energy_pj += macs as f64 * self.model.energy_per_mac_pj;
        self.stats.busy_ns += (layers + n - 1) as f64 * self.model.layer_latency_ns;
        Ok(outputs.into_iter().map(|(out, _)| out).collect())
    }

    /// Drift-scaled weight matrices, hoisted once per layer.
    fn scaled_weights(&self) -> Vec<Vec<f64>> {
        self.programmed
            .iter()
            .map(|weights| weights.iter().map(|&w| w * self.drift_factor).collect())
            .collect()
    }
}

/// Stretches `(noise_seed, epoch, index)` into one per-item seed.
fn derive_item_seed(noise_seed: u64, epoch: u64, index: u64) -> u64 {
    let mut outer = SplitMix64::new(noise_seed ^ epoch.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let stream = outer.next();
    let mut inner = SplitMix64::new(stream ^ index.wrapping_mul(0xD1B5_4A32_D192_ED03));
    inner.next()
}

/// Per-item Gaussian source for the batched path: a fast xoshiro
/// generator feeding the Marsaglia polar transform, keeping the spare
/// sample of each pair (the Box–Muller path in `laser::gaussian`
/// discards its sine half and runs on ChaCha20).
struct PolarGaussian {
    rng: SmallRng,
    spare: Option<f64>,
}

impl PolarGaussian {
    fn new(seed: u64) -> Self {
        PolarGaussian {
            rng: SmallRng::seed_from_u64(seed),
            spare: None,
        }
    }

    fn next(&mut self) -> f64 {
        if let Some(s) = self.spare.take() {
            return s;
        }
        loop {
            let u = 2.0 * self.rng.gen::<f64>() - 1.0;
            let v = 2.0 * self.rng.gen::<f64>() - 1.0;
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                let k = (-2.0 * s.ln() / s).sqrt();
                self.spare = Some(v * k);
                return u * k;
            }
        }
    }
}

/// Forward pass over pre-scaled weights with the batched noise rule.
/// Returns the output activations and the MAC count.
fn forward_fast(
    config: &NetworkConfig,
    scaled: &[Vec<f64>],
    mac_noise: f64,
    input: &[f64],
    noise_seed: u64,
) -> (Vec<f64>, u64) {
    let noisy = mac_noise != 0.0;
    let mut noise = PolarGaussian::new(noise_seed);
    let mut activations: Vec<f64> = input.to_vec();
    let mut macs = 0u64;
    for (layer, weights) in config.layers.iter().zip(scaled.iter()) {
        let mut next = Vec::with_capacity(layer.outputs);
        for o in 0..layer.outputs {
            let mut acc = layer.biases[o] as f64;
            let row = &weights[o * layer.inputs..(o + 1) * layer.inputs];
            if noisy {
                for (&w, &a) in row.iter().zip(activations.iter()) {
                    acc += w * a * (1.0 + mac_noise * noise.next());
                }
            } else {
                for (&w, &a) in row.iter().zip(activations.iter()) {
                    acc += w * a;
                }
            }
            macs += layer.inputs as u64;
            next.push(layer.activation.apply(acc));
        }
        activations = next;
    }
    (activations, macs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::NetworkConfig;

    fn identity_config(width: usize) -> NetworkConfig {
        NetworkConfig::mlp(&[width, width], |_, o, i| if o == i { 1.0 } else { 0.0 })
    }

    #[test]
    fn infer_requires_load() {
        let mut engine = PhotonicEngine::reference(1);
        assert_eq!(engine.infer(&[1.0]), Err(EngineError::NotLoaded));
    }

    #[test]
    fn identity_network_roughly_passes_through() {
        let mut engine = PhotonicEngine::reference(2);
        engine.load(identity_config(4)).unwrap();
        let out = engine.infer(&[0.5, -0.25, 1.0, 0.0]).unwrap();
        assert_eq!(out.len(), 4);
        for (o, e) in out.iter().zip([0.5, -0.25, 1.0, 0.0]) {
            assert!((o - e).abs() < 0.05, "out {o} expected {e}");
        }
    }

    #[test]
    fn input_width_is_checked() {
        let mut engine = PhotonicEngine::reference(3);
        engine.load(identity_config(4)).unwrap();
        assert_eq!(
            engine.infer(&[1.0]),
            Err(EngineError::InputWidth {
                expected: 4,
                actual: 1
            })
        );
    }

    #[test]
    fn invalid_config_rejected() {
        let mut engine = PhotonicEngine::reference(4);
        let mut config = identity_config(3);
        config.layers[0].biases.pop();
        assert!(matches!(
            engine.load(config),
            Err(EngineError::BadConfig(_))
        ));
    }

    #[test]
    fn analog_noise_perturbs_output() {
        let mut engine = PhotonicEngine::reference(5);
        engine.load(identity_config(4)).unwrap();
        let a = engine.infer(&[1.0, 1.0, 1.0, 1.0]).unwrap();
        let b = engine.infer(&[1.0, 1.0, 1.0, 1.0]).unwrap();
        assert_ne!(a, b, "analog engine should be noisy");
    }

    #[test]
    fn ideal_engine_is_exact_and_deterministic() {
        let mut engine = PhotonicEngine::new(AnalogModel::ideal(), 6);
        engine.load(identity_config(4)).unwrap();
        let a = engine.infer(&[1.0, 2.0, -1.0, 0.5]).unwrap();
        // Single-layer MLPs end in a linear output layer.
        assert_eq!(a, vec![1.0, 2.0, -1.0, 0.5]);
    }

    #[test]
    fn quantization_limits_precision() {
        // A 1-bit engine collapses weights to ±max.
        let mut coarse = PhotonicEngine::new(
            AnalogModel {
                weight_bits: 2,
                mac_noise: 0.0,
                ..AnalogModel::reference()
            },
            7,
        );
        let config = NetworkConfig::mlp(&[2, 1], |_, _, i| if i == 0 { 1.0 } else { 0.3 });
        coarse.load(config.clone()).unwrap();
        let mut fine = PhotonicEngine::new(AnalogModel::ideal(), 7);
        fine.load(config).unwrap();
        let x = [1.0, 1.0];
        let c = coarse.infer(&x).unwrap()[0];
        let f = fine.infer(&x).unwrap()[0];
        assert!(
            (c - f).abs() > 0.05,
            "quantization had no effect: {c} vs {f}"
        );
    }

    #[test]
    fn drift_attenuates_weights() {
        let mut engine = PhotonicEngine::new(
            AnalogModel {
                mac_noise: 0.0,
                ..AnalogModel::reference()
            },
            8,
        );
        engine.load(identity_config(2)).unwrap();
        let fresh = engine.infer(&[1.0, 1.0]).unwrap();
        engine.age(100.0);
        let aged = engine.infer(&[1.0, 1.0]).unwrap();
        assert!(aged[0] < fresh[0], "drift did not attenuate: {aged:?}");
    }

    #[test]
    fn stats_accumulate() {
        let mut engine = PhotonicEngine::reference(9);
        engine.load(identity_config(4)).unwrap();
        engine.infer(&[0.0; 4]).unwrap();
        engine.infer(&[0.0; 4]).unwrap();
        let stats = engine.stats();
        assert_eq!(stats.inferences, 2);
        assert_eq!(stats.macs, 32);
        assert!(stats.energy_pj > 0.0);
        assert!(stats.busy_ns > 0.0);
    }

    #[test]
    fn unload_clears_state() {
        let mut engine = PhotonicEngine::reference(10);
        engine.load(identity_config(2)).unwrap();
        assert!(engine.is_loaded());
        engine.unload();
        assert!(!engine.is_loaded());
        assert_eq!(engine.infer(&[1.0, 1.0]), Err(EngineError::NotLoaded));
    }

    #[test]
    fn unload_zeroizes_drift_and_stats() {
        let mut engine = PhotonicEngine::reference(11);
        engine.load(identity_config(2)).unwrap();
        engine.age(50.0);
        engine.infer(&[1.0, -1.0]).unwrap();
        assert!(engine.drift_factor() < 1.0);
        assert_ne!(engine.stats(), EngineStats::default());
        engine.unload();
        assert_eq!(engine.drift_factor(), 1.0, "drift must not survive unload");
        assert_eq!(
            engine.stats(),
            EngineStats::default(),
            "stats must not survive unload"
        );
    }

    #[test]
    fn low_bit_widths_rejected() {
        for bits in [0u8, 1] {
            let mut engine = PhotonicEngine::new(
                AnalogModel {
                    weight_bits: bits,
                    ..AnalogModel::reference()
                },
                12,
            );
            assert_eq!(
                engine.load(identity_config(2)),
                Err(EngineError::BadBitWidth(bits)),
                "weight_bits {bits} must be rejected"
            );
            assert!(!engine.is_loaded());
        }
        // The 2-bit boundary is the first usable grid and must program
        // finite weights.
        let mut engine = PhotonicEngine::new(
            AnalogModel {
                weight_bits: MIN_WEIGHT_BITS,
                mac_noise: 0.0,
                ..AnalogModel::reference()
            },
            12,
        );
        engine.load(identity_config(2)).unwrap();
        let out = engine.infer(&[0.5, -0.5]).unwrap();
        assert!(
            out.iter().all(|v| v.is_finite()),
            "2-bit weights must be finite: {out:?}"
        );
    }

    #[test]
    fn ideal_model_skips_noise_draws() {
        let mut engine = PhotonicEngine::new(AnalogModel::ideal(), 13);
        engine.load(identity_config(4)).unwrap();
        let a = engine.infer(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        let b = engine.infer(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(a, b, "noiseless inference must be bit-identical");
        assert_eq!(
            engine.stats().noise_draws,
            0,
            "mac_noise == 0 must not sample"
        );
        assert_eq!(engine.stats().macs, 32);
    }

    #[test]
    fn noisy_model_rng_stream_is_pinned() {
        // The scalar path's noise stream is part of the golden wire
        // transcripts: one Box–Muller draw from the engine's ChaCha20
        // stream per MAC, applied as `acc += w * a * (1 + σ·g)`.
        // Recompute that definition independently and require an exact
        // match, so refactors cannot silently shift the stream.
        let mut engine = PhotonicEngine::reference(14);
        engine.load(identity_config(2)).unwrap();
        let input = [0.75, -0.25];
        let got = engine.infer(&input).unwrap();

        let config = identity_config(2);
        let model = AnalogModel::reference();
        let mut rng = StdRng::seed_from_u64(14);
        let mut expected = Vec::new();
        let layer = &config.layers[0];
        // Quantized identity weights: re-quantize exactly as load does.
        let levels = (1u64 << model.weight_bits) as f64;
        let grid = levels / 2.0 - 1.0;
        for o in 0..layer.outputs {
            let mut acc = layer.biases[o] as f64;
            for (i, &a) in input.iter().enumerate() {
                let w_raw = layer.weights[o * layer.inputs + i] as f64;
                let w = (w_raw * grid).round() / grid;
                let noise = 1.0 + model.mac_noise * gaussian(&mut rng);
                acc += w * a * noise;
            }
            expected.push(layer.activation.apply(acc));
        }
        assert_eq!(got, expected, "scalar noise stream moved");
        assert_eq!(engine.stats().noise_draws, engine.stats().macs);
    }

    #[test]
    fn batch_matches_seeded_sequential() {
        let mut batch_engine = PhotonicEngine::reference(15);
        batch_engine.load(identity_config(4)).unwrap();
        let inputs: Vec<Vec<f64>> = (0..9)
            .map(|i| (0..4).map(|j| (i * 4 + j) as f64 / 10.0 - 1.0).collect())
            .collect();
        let seeds: Vec<u64> = (0..inputs.len())
            .map(|i| batch_engine.batch_item_seed(i))
            .collect();
        let batched = batch_engine.infer_batch(&inputs).unwrap();

        let mut seq_engine = PhotonicEngine::reference(15);
        seq_engine.load(identity_config(4)).unwrap();
        for (i, input) in inputs.iter().enumerate() {
            let single = seq_engine.infer_seeded(input, seeds[i]).unwrap();
            assert_eq!(batched[i], single, "item {i} diverged");
        }
    }

    #[test]
    fn batch_is_thread_count_invariant() {
        let run_at = |threads: usize| {
            neuropuls_rt::pool::with_threads(threads, || {
                let mut engine = PhotonicEngine::reference(16);
                engine.load(identity_config(4)).unwrap();
                let inputs: Vec<Vec<f64>> = (0..17).map(|i| vec![i as f64 * 0.1; 4]).collect();
                engine.infer_batch(&inputs).unwrap()
            })
        };
        assert_eq!(run_at(1), run_at(4), "batch output depends on thread count");
    }

    #[test]
    fn batch_epochs_draw_fresh_noise_deterministically() {
        let mut engine = PhotonicEngine::reference(17);
        engine.load(identity_config(2)).unwrap();
        let inputs = vec![vec![1.0, 1.0]; 3];
        let first = engine.infer_batch(&inputs).unwrap();
        let second = engine.infer_batch(&inputs).unwrap();
        assert_ne!(first, second, "epochs must not replay the same noise");
        let mut replay = PhotonicEngine::reference(17);
        replay.load(identity_config(2)).unwrap();
        assert_eq!(replay.infer_batch(&inputs).unwrap(), first);
        assert_eq!(replay.infer_batch(&inputs).unwrap(), second);
    }

    #[test]
    fn batch_accounting_is_pipelined() {
        let mut engine = PhotonicEngine::new(AnalogModel::ideal(), 18);
        engine.load(identity_config(4)).unwrap();
        assert_eq!(engine.infer_batch(&[]).unwrap(), Vec::<Vec<f64>>::new());
        assert_eq!(
            engine.batch_epoch(),
            0,
            "empty batch must not burn an epoch"
        );
        let inputs = vec![vec![0.5; 4]; 8];
        engine.infer_batch(&inputs).unwrap();
        let stats = engine.stats();
        assert_eq!(stats.inferences, 8);
        assert_eq!(stats.macs, 8 * 16);
        assert_eq!(stats.noise_draws, 0);
        // 1 layer, 8 items, wave-pipelined: (1 + 8 - 1) slots.
        let expected_ns = 8.0 * AnalogModel::ideal().layer_latency_ns;
        assert!(
            (stats.busy_ns - expected_ns).abs() < 1e-9,
            "busy_ns {}",
            stats.busy_ns
        );
        // Width errors reject the whole batch up front.
        assert_eq!(
            engine.infer_batch(&[vec![1.0; 4], vec![1.0; 3]]),
            Err(EngineError::InputWidth {
                expected: 4,
                actual: 3
            })
        );
    }
}
