//! Property-based tests over the core data structures and physical
//! invariants, using proptest.

use neuropuls::crypto::chacha20::ChaCha20;
use neuropuls::crypto::ecc::{BlockCode, ConcatenatedCode, Hamming74, RepetitionCode};
use neuropuls::crypto::hmac::HmacSha256;
use neuropuls::crypto::sha256::Sha256;
use neuropuls::metrics::bitstats::{pack_bits, unpack_bits};
use neuropuls::photonic::circuit::{MeshSpec, ScramblerMesh};
use neuropuls::photonic::complex::Complex64;
use neuropuls::photonic::process::{DieId, DieSampler, ProcessVariation};
use neuropuls::photonic::Environment;
use neuropuls::puf::bits::{Challenge, Response};
use neuropuls_rt::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn chacha_roundtrip(key in prop::array::uniform32(any::<u8>()),
                        nonce in prop::array::uniform12(any::<u8>()),
                        data in prop::collection::vec(any::<u8>(), 0..512)) {
        let ct = ChaCha20::encrypt(&key, &nonce, &data);
        prop_assert_eq!(ChaCha20::decrypt(&key, &nonce, &ct), data);
    }

    #[test]
    fn sha256_incremental_equals_oneshot(data in prop::collection::vec(any::<u8>(), 0..600),
                                         split in 0usize..600) {
        let split = split.min(data.len());
        let mut hasher = Sha256::new();
        hasher.update(&data[..split]);
        hasher.update(&data[split..]);
        prop_assert_eq!(hasher.finalize(), Sha256::digest(&data));
    }

    #[test]
    fn hmac_verifies_own_tags(key in prop::collection::vec(any::<u8>(), 0..100),
                              data in prop::collection::vec(any::<u8>(), 0..300)) {
        let tag = HmacSha256::mac(&key, &data);
        prop_assert!(HmacSha256::verify(&key, &data, &tag).is_ok());
    }

    #[test]
    fn hmac_rejects_flipped_bits(key in prop::collection::vec(any::<u8>(), 1..64),
                                 data in prop::collection::vec(any::<u8>(), 1..200),
                                 byte in 0usize..200, bit in 0u8..8) {
        let tag = HmacSha256::mac(&key, &data);
        let mut tampered = data.clone();
        let idx = byte % tampered.len();
        tampered[idx] ^= 1 << bit;
        if tampered != data {
            prop_assert!(HmacSha256::verify(&key, &tampered, &tag).is_err());
        }
    }

    #[test]
    fn repetition_corrects_within_capacity(data in prop::collection::vec(0u8..2, 1..40),
                                           flip_positions in prop::collection::vec(any::<usize>(), 0..10)) {
        let code = RepetitionCode::new(5);
        let mut coded = code.encode(&data).unwrap();
        // At most 2 flips per 5-bit block, never exceeding capacity.
        let mut flips_per_block = vec![0usize; data.len()];
        for &p in &flip_positions {
            let pos = p % coded.len();
            let block = pos / 5;
            if flips_per_block[block] < 2 {
                coded[pos] ^= 1;
                flips_per_block[block] += 1;
            }
        }
        prop_assert_eq!(code.decode(&coded).unwrap(), data);
    }

    #[test]
    fn hamming_corrects_one_flip_anywhere(nibbles in prop::collection::vec(0u8..16, 1..20),
                                          flip in any::<usize>()) {
        let data: Vec<u8> = nibbles.iter().flat_map(|n| (0..4).map(move |i| (n >> i) & 1)).collect();
        let code = Hamming74::new();
        let mut coded = code.encode(&data).unwrap();
        let pos = flip % coded.len();
        coded[pos] ^= 1;
        prop_assert_eq!(code.decode(&coded).unwrap(), data);
    }

    #[test]
    fn concatenated_roundtrip_clean(data in prop::collection::vec(0u8..2, 1..10)) {
        // Pad to a nibble multiple.
        let mut data = data;
        while data.len() % 4 != 0 { data.push(0); }
        let code = ConcatenatedCode::new(3);
        let coded = code.encode(&data).unwrap();
        prop_assert_eq!(code.decode(&coded).unwrap(), data);
    }

    #[test]
    fn bit_packing_roundtrip(bits in prop::collection::vec(0u8..2, 0..200)) {
        let packed = pack_bits(&bits);
        prop_assert_eq!(unpack_bits(&packed, bits.len()), bits);
    }

    #[test]
    fn challenge_xor_involution(a_bits in prop::collection::vec(0u8..2, 1..128)) {
        let len = a_bits.len();
        let a = Response::from_bits(a_bits);
        let b = Response::from_bits(vec![1u8; len]);
        prop_assert_eq!(a.xor(&b).xor(&b), a);
    }

    #[test]
    fn challenge_packing_roundtrip(bits in prop::collection::vec(0u8..2, 1..100)) {
        let c = Challenge::from_bits(bits.clone());
        prop_assert_eq!(Challenge::from_packed(&c.to_packed(), bits.len()), c);
    }

    #[test]
    fn mesh_is_always_passive(die in any::<u64>(),
                              channels in 2usize..10,
                              depth in 1usize..10,
                              ring_density in 0.0f64..1.0) {
        let spec = MeshSpec {
            channels,
            depth,
            ring_density,
            ..MeshSpec::reference()
        };
        let mut sampler = DieSampler::new(DieId(die), ProcessVariation::typical_soi());
        let mut mesh = ScramblerMesh::build(spec, &mut sampler);
        let mut waveform = vec![Complex64::ZERO; 8];
        waveform[0] = Complex64::ONE;
        let energies = mesh.port_energies(&waveform, 48, &Environment::nominal());
        let total: f64 = energies.iter().sum();
        prop_assert!(total <= 1.0 + 1e-9, "passivity violated: {}", total);
        prop_assert!(energies.iter().all(|e| *e >= 0.0));
    }

    #[test]
    fn mesh_reproducibility(die in any::<u64>()) {
        let mut s1 = DieSampler::new(DieId(die), ProcessVariation::typical_soi());
        let mut s2 = DieSampler::new(DieId(die), ProcessVariation::typical_soi());
        let mut m1 = ScramblerMesh::build(MeshSpec::reference(), &mut s1);
        let mut m2 = ScramblerMesh::build(MeshSpec::reference(), &mut s2);
        let waveform = vec![Complex64::ONE; 4];
        let e1 = m1.port_energies(&waveform, 16, &Environment::nominal());
        let e2 = m2.port_energies(&waveform, 16, &Environment::nominal());
        prop_assert_eq!(e1, e2);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn x25519_diffie_hellman_agrees(a in prop::array::uniform32(any::<u8>()),
                                    b in prop::array::uniform32(any::<u8>())) {
        use neuropuls::crypto::x25519;
        let pub_a = x25519::public_key(&a);
        let pub_b = x25519::public_key(&b);
        let s1 = x25519::shared_secret(&a, &pub_b);
        let s2 = x25519::shared_secret(&b, &pub_a);
        match (s1, s2) {
            (Ok(k1), Ok(k2)) => prop_assert_eq!(k1, k2),
            // Low-order rejection must be symmetric.
            (Err(_), Err(_)) => {}
            (x, y) => prop_assert!(false, "asymmetric outcome: {:?} vs {:?}", x.is_ok(), y.is_ok()),
        }
    }

    #[test]
    fn bch_corrects_up_to_three_random_errors(msg in prop::collection::vec(0u8..2, 1..8),
                                              error_seed in any::<u64>()) {
        use neuropuls::crypto::bch::Bch15_5;
        let mut data = msg;
        while data.len() % 5 != 0 { data.push(0); }
        let code = Bch15_5::new();
        let mut coded = code.encode(&data).unwrap();
        // Up to 3 distinct error positions per 15-bit block.
        let blocks = coded.len() / 15;
        let mut s = error_seed;
        for b in 0..blocks {
            let mut positions = std::collections::HashSet::new();
            let count = (s % 4) as usize;
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            while positions.len() < count {
                positions.insert((s % 15) as usize);
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            }
            for p in positions {
                coded[b * 15 + p] ^= 1;
            }
        }
        prop_assert_eq!(code.decode(&coded).unwrap(), data);
    }

    #[test]
    fn secure_sketch_recovers_within_capacity(bits in prop::collection::vec(0u8..2, 1..6),
                                              flips in prop::collection::vec(any::<usize>(), 0..4)) {
        use neuropuls::crypto::ecc::ConcatenatedCode;
        use neuropuls::crypto::fuzzy::SecureSketch;
        use neuropuls::crypto::prng::CsPrng;
        // Build a 63-bit string (three 21-bit blocks).
        let mut data: Vec<u8> = bits.iter().cycle().take(63).cloned().collect();
        let sketch = SecureSketch::new(ConcatenatedCode::new(3));
        let mut rng = CsPrng::from_seed_bytes(b"prop-sketch");
        let helper = sketch.sketch(&data, &mut rng).unwrap();
        let original = data.clone();
        // One flip per distinct repetition group stays within capacity.
        let mut touched_groups = std::collections::HashSet::new();
        for f in flips {
            let group = f % 21;
            if touched_groups.insert(group) {
                data[group * 3 % 63] ^= 1;
            }
        }
        let _ = touched_groups;
        prop_assert_eq!(sketch.recover(&data, &helper).unwrap(), original);
    }

    #[test]
    fn event_queue_orders_any_schedule(ticks in prop::collection::vec(0u64..1000, 1..50)) {
        use neuropuls::system::event::EventQueue;
        let mut q = EventQueue::new();
        for (i, &t) in ticks.iter().enumerate() {
            q.schedule(t, i);
        }
        let mut last_tick = 0;
        let mut popped = 0;
        while let Some((tick, _)) = q.advance() {
            prop_assert!(tick >= last_tick, "time went backwards");
            last_tick = tick;
            popped += 1;
        }
        prop_assert_eq!(popped, ticks.len());
    }

    #[test]
    fn network_config_codec_roundtrip(widths in prop::collection::vec(1usize..6, 2..5),
                                      seed in any::<u64>()) {
        use neuropuls::accel::config::NetworkConfig;
        let config = NetworkConfig::mlp(&widths, |l, o, i| {
            ((l.wrapping_add(o).wrapping_add(i) as u64 ^ seed) % 97) as f32 * 0.01
        });
        let bytes = config.to_bytes();
        prop_assert_eq!(NetworkConfig::from_bytes(&bytes).unwrap(), config);
    }

    #[test]
    fn assembler_rejects_or_encodes_whole_words(imm in -2048i64..2048) {
        use neuropuls::system::asm::assemble;
        let src = format!("addi x5, x6, {imm}");
        let code = assemble(&src, 0).unwrap();
        prop_assert_eq!(code.len(), 4);
    }

    #[test]
    fn batched_inference_matches_sequential_at_any_thread_count(
        seed in any::<u64>(),
        batch in 0usize..12,
        noisy in any::<bool>(),
    ) {
        use neuropuls::accel::config::NetworkConfig;
        use neuropuls::accel::engine::{AnalogModel, PhotonicEngine};
        let model = if noisy { AnalogModel::reference() } else { AnalogModel::ideal() };
        let network = NetworkConfig::mlp(&[6, 9, 6], |l, o, i| {
            ((l * 31 + o * 7 + i * 3) % 19) as f32 / 9.0 - 1.0
        });
        let inputs: Vec<Vec<f64>> = (0..batch)
            .map(|n| {
                (0..6)
                    .map(|i| ((seed >> (i * 8)) & 0xFF) as f64 / 127.5 - 1.0 + n as f64 * 0.01)
                    .collect()
            })
            .collect();

        let mut per_thread_count: Vec<Vec<Vec<f64>>> = Vec::new();
        for threads in [1usize, 8] {
            let (batched, expected) = neuropuls_rt::pool::with_threads(threads, || {
                let mut engine = PhotonicEngine::new(model, seed);
                engine.load(network.clone()).unwrap();
                // The seeds the batch is about to consume, captured
                // before the epoch advances.
                let item_seeds: Vec<u64> =
                    (0..batch).map(|i| engine.batch_item_seed(i)).collect();
                let batched = engine.infer_batch(&inputs).unwrap();
                let mut twin = PhotonicEngine::new(model, seed);
                twin.load(network.clone()).unwrap();
                let expected: Vec<Vec<f64>> = inputs
                    .iter()
                    .zip(&item_seeds)
                    .map(|(input, &s)| twin.infer_seeded(input, s).unwrap())
                    .collect();
                (batched, expected)
            });
            prop_assert_eq!(&batched, &expected);
            per_thread_count.push(batched);
        }
        prop_assert_eq!(&per_thread_count[0], &per_thread_count[1]);
    }
}
