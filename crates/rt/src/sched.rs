//! Deterministic discrete-event scheduling: a hierarchical timer wheel
//! and a FIFO ready queue.
//!
//! The session gateway (`protocols::gateway`) historically stepped every
//! active session on every tick, so an idle session waiting out a 3-tick
//! ARQ timeout cost as much as one doing work. This module provides the
//! primitives for an event-driven loop whose per-tick work is
//! proportional to the number of *runnable* sessions:
//!
//! * [`TimerWheel`] — a hierarchical timing wheel (four levels of 64
//!   slots, entries beyond the horizon parked in an overflow list) with
//!   O(1) schedule/cancel and amortised O(1) per-tick advance. Timers
//!   that expire on the same tick fire in schedule order (global
//!   sequence numbers, not slot order, so cascading never perturbs
//!   FIFO stability).
//! * [`ReadyQueue`] — a duplicate-suppressing FIFO of runnable tokens.
//!
//! Everything here is driven by an explicit simulated tick counter and
//! contains no clocks, no hashing of addresses, and no randomness, so a
//! schedule of events replays byte-identically at any
//! `NEUROPULS_THREADS` setting.

use std::collections::{HashSet, VecDeque};

/// Number of slots per wheel level. 64 keeps slot indexing to a shift
/// and mask (`deadline >> (6 * level) & 63`).
const SLOTS: usize = 64;
/// Bits of tick covered by one level.
const SLOT_BITS: u32 = 6;
/// Number of hierarchical levels. Four levels cover `64^4` ≈ 16.7 M
/// ticks ahead of `now`; anything farther sits in the overflow list.
const LEVELS: usize = 4;
/// Horizon (in ticks ahead of `now`) covered by the wheel proper.
const HORIZON: u64 = 1 << (SLOT_BITS * LEVELS as u32);

/// Handle to a scheduled timer, returned by [`TimerWheel::schedule_at`].
///
/// Handles are generation-stamped: cancelling an already-cancelled or
/// already-fired timer is a detectable no-op, and a handle can never
/// accidentally cancel a later timer that reused the same slab slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimerId {
    index: u32,
    generation: u32,
}

#[derive(Debug, Clone)]
struct Entry {
    deadline: u64,
    token: u64,
    seq: u64,
    generation: u32,
    armed: bool,
}

/// A hierarchical timer wheel over an explicit simulated tick counter.
///
/// Deadlines are absolute ticks. Scheduling a deadline at or before
/// `now` clamps it to `now + 1` (the earliest tick a discrete-event
/// loop can still observe). Expired timers are delivered by
/// [`advance_to`](Self::advance_to) in `(deadline, schedule order)`
/// order.
#[derive(Debug)]
pub struct TimerWheel {
    now: u64,
    /// `LEVELS * SLOTS` buckets of slab indices, flattened row-major.
    slots: Vec<Vec<u32>>,
    /// Entries with `deadline - now >= HORIZON` at schedule time.
    overflow: Vec<u32>,
    entries: Vec<Entry>,
    free: Vec<u32>,
    next_seq: u64,
    armed: usize,
}

impl TimerWheel {
    /// New wheel with `now == 0`.
    pub fn new() -> Self {
        Self::with_start(0)
    }

    /// New wheel whose clock starts at `start` ticks.
    pub fn with_start(start: u64) -> Self {
        TimerWheel {
            now: start,
            slots: vec![Vec::new(); LEVELS * SLOTS],
            overflow: Vec::new(),
            entries: Vec::new(),
            free: Vec::new(),
            next_seq: 0,
            armed: 0,
        }
    }

    /// Current tick.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Number of armed (scheduled, not yet fired or cancelled) timers.
    pub fn len(&self) -> usize {
        self.armed
    }

    /// True when no timers are armed.
    pub fn is_empty(&self) -> bool {
        self.armed == 0
    }

    /// Schedule `token` to fire at absolute tick `deadline` (clamped to
    /// `now + 1` if already due) and return a cancellation handle.
    pub fn schedule_at(&mut self, deadline: u64, token: u64) -> TimerId {
        let deadline = deadline.max(self.now + 1);
        let seq = self.next_seq;
        self.next_seq += 1;
        let index = match self.free.pop() {
            Some(index) => {
                let entry = &mut self.entries[index as usize];
                entry.deadline = deadline;
                entry.token = token;
                entry.seq = seq;
                entry.armed = true;
                index
            }
            None => {
                let index = self.entries.len() as u32;
                self.entries.push(Entry {
                    deadline,
                    token,
                    seq,
                    generation: 0,
                    armed: true,
                });
                index
            }
        };
        self.armed += 1;
        let generation = self.entries[index as usize].generation;
        self.place(index);
        TimerId { index, generation }
    }

    /// Cancel a scheduled timer. Returns `true` if the timer was still
    /// armed; cancelling twice (or after the timer fired) returns
    /// `false` and changes nothing.
    pub fn cancel(&mut self, id: TimerId) -> bool {
        match self.entries.get_mut(id.index as usize) {
            Some(entry) if entry.armed && entry.generation == id.generation => {
                entry.armed = false;
                self.armed -= 1;
                true
            }
            _ => false,
        }
    }

    /// Earliest armed deadline, if any. Linear in the slab size; meant
    /// for idle-detection and tests, not the per-tick hot path.
    pub fn next_deadline(&self) -> Option<u64> {
        self.entries
            .iter()
            .filter(|e| e.armed)
            .map(|e| e.deadline)
            .min()
    }

    /// Advance the clock to `target`, appending every timer that fires
    /// in `(now, target]` to `out` as `(fire_tick, token)` pairs, in
    /// `(deadline, schedule order)` order.
    pub fn advance_to(&mut self, target: u64, out: &mut Vec<(u64, u64)>) {
        let mut due: Vec<u32> = Vec::new();
        while self.now < target {
            let tick = self.now + 1;
            self.now = tick;
            if tick.is_multiple_of(SLOTS as u64) {
                self.cascade_boundaries(tick);
            }
            let slot_index = (tick % SLOTS as u64) as usize;
            if !self.slots[slot_index].is_empty() {
                let bucket = std::mem::take(&mut self.slots[slot_index]);
                due.clear();
                for index in bucket {
                    let entry = &self.entries[index as usize];
                    if entry.armed {
                        debug_assert_eq!(entry.deadline, tick);
                        due.push(index);
                    } else {
                        self.recycle_if_cancelled(index);
                    }
                }
                due.sort_unstable_by_key(|&index| self.entries[index as usize].seq);
                for &index in &due {
                    let entry = &mut self.entries[index as usize];
                    entry.armed = false;
                    self.armed -= 1;
                    out.push((tick, entry.token));
                    entry.generation = entry.generation.wrapping_add(1);
                    self.free.push(index);
                }
            }
        }
    }

    /// Advance the clock by exactly one tick; see
    /// [`advance_to`](Self::advance_to).
    pub fn advance(&mut self, out: &mut Vec<(u64, u64)>) {
        let target = self.now + 1;
        self.advance_to(target, out);
    }

    /// Re-bucket entries whose covering level changes at this tick
    /// boundary. Called only when `tick % 64 == 0`.
    fn cascade_boundaries(&mut self, tick: u64) {
        let per_l3 = (SLOTS as u64).pow(3);
        if tick.is_multiple_of(per_l3) {
            // Pull overflow entries that are now within the horizon.
            let parked = std::mem::take(&mut self.overflow);
            for index in parked {
                let entry = &self.entries[index as usize];
                if !entry.armed {
                    self.recycle_if_cancelled(index);
                } else if entry.deadline - tick < HORIZON {
                    self.place(index);
                } else {
                    self.overflow.push(index);
                }
            }
            self.cascade_level(3, tick);
        }
        if tick.is_multiple_of((SLOTS as u64).pow(2)) {
            self.cascade_level(2, tick);
        }
        self.cascade_level(1, tick);
    }

    fn cascade_level(&mut self, level: usize, tick: u64) {
        let slot_index = ((tick >> (SLOT_BITS * level as u32)) % SLOTS as u64) as usize;
        let bucket = std::mem::take(&mut self.slots[level * SLOTS + slot_index]);
        for index in bucket {
            if self.entries[index as usize].armed {
                self.place(index);
            } else {
                self.recycle_if_cancelled(index);
            }
        }
    }

    /// Put an armed entry in the bucket for its deadline, relative to
    /// the current `now`. A cascaded entry whose deadline *is* the
    /// current tick (delta 0) lands in the level-0 slot that
    /// [`advance_to`](Self::advance_to) drains immediately after the
    /// cascade, so it still fires on time.
    fn place(&mut self, index: u32) {
        let entry = &self.entries[index as usize];
        let deadline = entry.deadline;
        debug_assert!(deadline >= self.now);
        let delta = deadline - self.now;
        if delta >= HORIZON {
            self.overflow.push(index);
            return;
        }
        let mut level = 0;
        while delta >= (SLOTS as u64).pow(level as u32 + 1) {
            level += 1;
        }
        let slot = ((deadline >> (SLOT_BITS * level as u32)) % SLOTS as u64) as usize;
        self.slots[level * SLOTS + slot].push(index);
    }

    fn recycle_if_cancelled(&mut self, index: u32) {
        let entry = &mut self.entries[index as usize];
        if !entry.armed {
            entry.generation = entry.generation.wrapping_add(1);
            self.free.push(index);
        }
    }
}

impl Default for TimerWheel {
    fn default() -> Self {
        TimerWheel::new()
    }
}

/// A FIFO queue of runnable tokens that suppresses duplicate enqueues.
///
/// The gateway uses one of these per tick phase: a token (slot/side
/// pair) may become runnable both because a frame arrived and because
/// its ARQ timer fired, but it must be stepped once, in the order it
/// first became runnable.
#[derive(Debug, Default)]
pub struct ReadyQueue {
    queue: VecDeque<u64>,
    queued: HashSet<u64>,
}

impl ReadyQueue {
    /// New empty queue.
    pub fn new() -> Self {
        ReadyQueue::default()
    }

    /// Enqueue `token` unless it is already queued. Returns `true` if
    /// the token was inserted.
    pub fn push(&mut self, token: u64) -> bool {
        if self.queued.insert(token) {
            self.queue.push_back(token);
            true
        } else {
            false
        }
    }

    /// Dequeue the oldest token.
    pub fn pop(&mut self) -> Option<u64> {
        let token = self.queue.pop_front()?;
        self.queued.remove(&token);
        Some(token)
    }

    /// True if `token` is currently queued.
    pub fn contains(&self, token: u64) -> bool {
        self.queued.contains(&token)
    }

    /// Number of queued tokens.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Drain every queued token, in FIFO order.
    pub fn drain(&mut self) -> Vec<u64> {
        self.queued.clear();
        self.queue.drain(..).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prelude::*;

    fn fire_all(wheel: &mut TimerWheel, horizon: u64) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        wheel.advance_to(horizon, &mut out);
        out
    }

    #[test]
    fn fires_in_deadline_order() {
        let mut wheel = TimerWheel::new();
        wheel.schedule_at(10, 1);
        wheel.schedule_at(3, 2);
        wheel.schedule_at(7, 3);
        let fired = fire_all(&mut wheel, 16);
        assert_eq!(fired, vec![(3, 2), (7, 3), (10, 1)]);
        assert!(wheel.is_empty());
    }

    #[test]
    fn past_deadline_clamps_to_next_tick() {
        let mut wheel = TimerWheel::with_start(100);
        wheel.schedule_at(5, 9);
        assert_eq!(wheel.next_deadline(), Some(101));
        let fired = fire_all(&mut wheel, 101);
        assert_eq!(fired, vec![(101, 9)]);
    }

    #[test]
    fn cancel_is_idempotent_and_rearm_fires_once() {
        let mut wheel = TimerWheel::new();
        let id = wheel.schedule_at(5, 7);
        assert!(wheel.cancel(id));
        assert!(!wheel.cancel(id), "second cancel must be a no-op");
        let rearmed = wheel.schedule_at(9, 7);
        let fired = fire_all(&mut wheel, 64);
        assert_eq!(fired, vec![(9, 7)]);
        assert!(!wheel.cancel(rearmed), "fired timer cannot be cancelled");
    }

    #[test]
    fn stale_handle_cannot_cancel_reused_slot() {
        let mut wheel = TimerWheel::new();
        let id = wheel.schedule_at(2, 1);
        assert_eq!(fire_all(&mut wheel, 4), vec![(2, 1)]);
        // The slab slot is recycled for a new timer; the old handle
        // must not be able to cancel it.
        let _fresh = wheel.schedule_at(8, 2);
        assert!(!wheel.cancel(id));
        assert_eq!(fire_all(&mut wheel, 8), vec![(8, 2)]);
    }

    #[test]
    fn overflow_entries_fire_at_their_deadline() {
        let mut wheel = TimerWheel::new();
        let deadline = HORIZON + 12_345;
        wheel.schedule_at(deadline, 42);
        assert_eq!(wheel.next_deadline(), Some(deadline));
        let mut out = Vec::new();
        wheel.advance_to(deadline - 1, &mut out);
        assert!(out.is_empty());
        wheel.advance_to(deadline, &mut out);
        assert_eq!(out, vec![(deadline, 42)]);
    }

    #[test]
    fn rearm_across_overflow_boundary_fires_once_at_each_deadline() {
        let mut wheel = TimerWheel::new();
        // Parked beyond the horizon, cancelled while still in the
        // overflow list, re-armed inside the wheel proper: only the
        // re-armed deadline may fire.
        let parked = wheel.schedule_at(HORIZON + 99, 7);
        assert!(wheel.cancel(parked));
        wheel.schedule_at(50, 7);
        assert_eq!(fire_all(&mut wheel, 60), vec![(50, 7)]);
        // And the other direction: an in-horizon timer re-armed out to
        // the overflow list must survive the level-3 boundary cascade
        // that pulls overflow entries back in, firing exactly once at
        // its deadline.
        let near = wheel.schedule_at(100, 8);
        assert!(wheel.cancel(near));
        let far = HORIZON + 2 * (SLOTS as u64).pow(3) + 5;
        wheel.schedule_at(far, 8);
        let mut out = Vec::new();
        wheel.advance_to(far - 1, &mut out);
        assert!(out.is_empty(), "{out:?}");
        wheel.advance_to(far + SLOTS as u64, &mut out);
        assert_eq!(out, vec![(far, 8)]);
        assert!(wheel.is_empty());
    }

    #[test]
    fn stale_cancel_of_fired_generation_cannot_touch_rearmed_slot() {
        let mut wheel = TimerWheel::new();
        let fired = wheel.schedule_at(3, 11);
        assert_eq!(fire_all(&mut wheel, 4), vec![(3, 11)]);
        // The re-arm reuses the freed slab slot under a new generation;
        // the fired handle must be inert against it.
        let rearmed = wheel.schedule_at(10, 11);
        assert_eq!(fired.index, rearmed.index, "slab slot is recycled");
        assert!(!wheel.cancel(fired), "fired generation must be dead");
        assert_eq!(wheel.len(), 1);
        assert!(wheel.cancel(rearmed), "live generation still cancels");
        assert_eq!(fire_all(&mut wheel, 64), vec![]);
        assert!(wheel.is_empty());
    }

    #[test]
    fn idle_jump_lands_exactly_on_wake_ticks() {
        // The event-driven drivers fast-forward across fleet-wide
        // silence with `advance_to(next_deadline())`: a jump whose
        // target *is* the deadline must deliver the wake on the landing
        // tick, including when that tick is also a cascade boundary.
        let level2 = (SLOTS as u64).pow(2);
        let level3 = (SLOTS as u64).pow(3);
        let deadlines = [
            SLOTS as u64,    // level-1 cascade tick
            3 * level2,      // level-2 cascade tick
            level3,          // level-3 cascade tick (overflow rescan)
            level3 + 12_345, // plain mid-slot tick after the big jump
        ];
        let mut wheel = TimerWheel::new();
        for (token, &deadline) in deadlines.iter().enumerate() {
            wheel.schedule_at(deadline, token as u64);
        }
        let mut fired = Vec::new();
        while let Some(next) = wheel.next_deadline() {
            let before = fired.len();
            wheel.advance_to(next, &mut fired);
            assert_eq!(fired.len(), before + 1, "jump to {next} missed its wake");
            assert_eq!(fired.last().copied(), Some((next, before as u64)));
            assert_eq!(wheel.now(), next);
        }
        let schedule: Vec<(u64, u64)> = deadlines
            .iter()
            .enumerate()
            .map(|(token, &deadline)| (deadline, token as u64))
            .collect();
        assert_eq!(fired, schedule);
        assert!(wheel.is_empty());
    }

    #[test]
    fn ready_queue_is_fifo_and_dedups() {
        let mut queue = ReadyQueue::new();
        assert!(queue.push(3));
        assert!(queue.push(1));
        assert!(!queue.push(3), "duplicate push must be suppressed");
        assert_eq!(queue.len(), 2);
        assert_eq!(queue.pop(), Some(3));
        assert!(queue.push(3), "popped token can be re-queued");
        assert_eq!(queue.drain(), vec![1, 3]);
        assert!(queue.is_empty());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn expiry_order_matches_deadline_then_schedule_order(
            deadlines in prop::collection::vec(1u64..5000, 1..64),
        ) {
            let mut wheel = TimerWheel::new();
            for (token, &deadline) in deadlines.iter().enumerate() {
                wheel.schedule_at(deadline, token as u64);
            }
            let fired = {
                let mut out = Vec::new();
                wheel.advance_to(5000, &mut out);
                out
            };
            prop_assert_eq!(fired.len(), deadlines.len());
            // Expected order: stable sort by deadline keeps equal
            // deadlines in schedule (= token) order.
            let mut expected: Vec<(u64, u64)> = deadlines
                .iter()
                .enumerate()
                .map(|(token, &deadline)| (deadline, token as u64))
                .collect();
            expected.sort_by_key(|&(deadline, _)| deadline);
            prop_assert_eq!(fired, expected);
        }

        #[test]
        fn same_tick_firing_is_fifo_stable(
            count in 2usize..48,
            deadline in 1u64..4096,
        ) {
            let mut wheel = TimerWheel::new();
            for token in 0..count as u64 {
                wheel.schedule_at(deadline, token);
            }
            let mut out = Vec::new();
            wheel.advance_to(deadline, &mut out);
            let tokens: Vec<u64> = out.iter().map(|&(_, token)| token).collect();
            prop_assert_eq!(tokens, (0..count as u64).collect::<Vec<u64>>());
        }

        #[test]
        fn cascade_is_transparent_to_expiry(
            // Deadlines straddling level-0 (64), level-1 (4096) and
            // level-2 (262144) boundaries so entries must cascade
            // down at least one level before firing.
            offsets in prop::collection::vec(1u64..600_000, 1..24),
            chunks in prop::collection::vec(1u64..100_000, 1..8),
        ) {
            let mut incremental = TimerWheel::new();
            let mut oneshot = TimerWheel::new();
            for (token, &offset) in offsets.iter().enumerate() {
                incremental.schedule_at(offset, token as u64);
                oneshot.schedule_at(offset, token as u64);
            }
            let horizon = offsets.iter().copied().max().unwrap_or(1);
            // Advance one wheel in arbitrary chunk sizes and the other
            // in a single jump: the fired sequences must be identical.
            let mut chunked = Vec::new();
            let mut target = 0u64;
            for &chunk in &chunks {
                target = (target + chunk).min(horizon);
                incremental.advance_to(target, &mut chunked);
            }
            incremental.advance_to(horizon, &mut chunked);
            let mut single = Vec::new();
            oneshot.advance_to(horizon, &mut single);
            prop_assert_eq!(chunked, single);
            prop_assert!(incremental.is_empty());
        }

        #[test]
        fn cancelled_timers_never_fire_and_rearm_is_exact(
            deadlines in prop::collection::vec(1u64..2000, 1..32),
            cancel_mask in prop::collection::vec(any::<bool>(), 32..33),
        ) {
            let mut wheel = TimerWheel::new();
            let ids: Vec<TimerId> = deadlines
                .iter()
                .enumerate()
                .map(|(token, &deadline)| wheel.schedule_at(deadline, token as u64))
                .collect();
            let mut expected: Vec<(u64, u64)> = Vec::new();
            for (token, (&deadline, &id)) in deadlines.iter().zip(&ids).enumerate() {
                if cancel_mask[token % cancel_mask.len()] {
                    prop_assert!(wheel.cancel(id));
                    prop_assert!(!wheel.cancel(id));
                    // Re-arm at a shifted deadline; it must fire there.
                    wheel.schedule_at(deadline + 2000, token as u64);
                    expected.push((deadline + 2000, token as u64));
                } else {
                    expected.push((deadline, token as u64));
                }
            }
            expected.sort_by_key(|&(deadline, _)| deadline);
            let mut fired = Vec::new();
            wheel.advance_to(4096, &mut fired);
            prop_assert_eq!(fired, expected);
            prop_assert!(wheel.is_empty());
        }
    }
}
